//! Concurrent session serving: the submit / handle API (PR 5).
//!
//! One CAESURA session serves many in-flight queries over one lake, one
//! retriever index, and one perception cache. This example shows the three
//! serving primitives:
//!
//! 1. **Concurrent submission** — several queries enqueued up front via
//!    `submit`, running on the session's scheduler pool while the main
//!    thread does other work.
//! 2. **Streamed trace events** — `subscribe` delivers one query's trace
//!    events live, as the planner works, instead of only after completion.
//! 3. **Cooperative cancellation** — `cancel` stops a query at its next
//!    checkpoint (between plan steps / before any LLM dispatch); a query
//!    cancelled while still queued never runs at all.
//!
//! Run with: `cargo run --example concurrent_serving`

use caesura::prelude::*;
use std::sync::Arc;

fn main() {
    let data = generate_artwork(&ArtworkConfig::default());
    // Four scheduler workers and a bounded submission queue. Without these
    // knobs the session uses `CAESURA_SESSION_WORKERS` / hardware
    // parallelism and a queue of 64.
    let config = CaesuraConfig {
        session_workers: Some(4),
        session_queue: Some(8),
        ..CaesuraConfig::default()
    };
    let caesura = Caesura::with_config(data.lake, Arc::new(SimulatedLlm::gpt4()), config);

    // -- 1. Concurrent submission -----------------------------------------
    let queries = [
        "How many paintings are in the museum?",
        "For each movement, how many paintings are there?",
        "How many paintings depict Madonna and Child?",
        "List the titles of all paintings that depict a horse.",
    ];
    let handles: Vec<QueryHandle> = queries.iter().map(|q| caesura.submit(q)).collect();
    let stats = caesura.serving_stats();
    println!(
        "submitted {} queries to {} workers (queue depth {})\n",
        queries.len(),
        stats.workers,
        stats.queue_depth
    );

    // -- 2. A live trace stream for one more query -------------------------
    let streamed = caesura
        .submit("Plot the number of paintings depicting Madonna and Child for each century!");
    let events = streamed.subscribe();
    let printer = std::thread::spawn(move || {
        // The channel disconnects when the query finishes, ending the loop.
        for event in events {
            let preview: String = event.detail.chars().take(60).collect();
            println!(
                "  [live {} / {}] {}",
                event.phase,
                event.label,
                preview.replace('\n', " ")
            );
        }
    });

    // -- 3. Cooperative cancellation ---------------------------------------
    let doomed = caesura.submit("For each genre, how many paintings depict a skull?");
    doomed.cancel();

    // Collect everything.
    for (query, handle) in queries.iter().zip(handles) {
        let run = handle.wait();
        match &run.output {
            Ok(output) => println!("{query}\n  -> {} in {:.1?}", output.kind(), run.latency()),
            Err(error) => println!("{query}\n  -> failed: {error}"),
        }
    }
    printer.join().expect("trace printer thread");
    let streamed = streamed.wait();
    println!(
        "\nstreamed query finished: {} ({} trace events)",
        if streamed.succeeded() { "ok" } else { "failed" },
        streamed.trace.events().len()
    );

    let doomed = streamed_or_cancelled(doomed.wait());
    println!("cancelled query outcome: {doomed}");

    let stats = caesura.serving_stats();
    println!(
        "\nserving stats: {} completed ({} cancelled), {} queued, {} in flight",
        stats.completed, stats.cancelled, stats.queued, stats.in_flight
    );
}

fn streamed_or_cancelled(run: QueryRun) -> &'static str {
    if run.cancelled() {
        "cancelled before completion (CoreError::Cancelled)"
    } else {
        // Cancellation raced completion and lost: the answer was already done.
        "completed before the cancel checkpoint"
    }
}
