//! Concurrent session serving: the submit / handle API (PR 5).
//!
//! One CAESURA session serves many in-flight queries over one lake, one
//! retriever index, and one perception cache. This example shows the three
//! serving primitives:
//!
//! 1. **Concurrent submission** — several queries enqueued up front via
//!    `submit`, running on the session's scheduler pool while the main
//!    thread does other work.
//! 2. **Streamed trace events** — `subscribe` delivers one query's trace
//!    events live, as the planner works, instead of only after completion.
//! 3. **Cooperative cancellation** — `cancel` stops a query at its next
//!    checkpoint (between plan steps / before any LLM dispatch, or mid-
//!    dispatch for cancellation-aware transports); a query cancelled while
//!    still queued never runs at all.
//! 4. **Multi-tenant scheduling** (PR 8) — `submit_with` tags submissions
//!    with a tenant and a priority tier; the weighted-fair scheduler
//!    dequeues interactive work ahead of a batch tenant's backlog, and
//!    `tenant_stats` breaks the serving counters out per tenant.
//!
//! Run with: `cargo run --example concurrent_serving`

use caesura::prelude::*;
use std::sync::Arc;

fn main() {
    let data = generate_artwork(&ArtworkConfig::default());
    // Four scheduler workers and a bounded submission queue. Without these
    // knobs the session uses `CAESURA_SESSION_WORKERS` / hardware
    // parallelism and a queue of 64.
    let config = CaesuraConfig {
        session_workers: Some(4),
        session_queue: Some(8),
        ..CaesuraConfig::default()
    };
    let caesura = Caesura::with_config(data.lake, Arc::new(SimulatedLlm::gpt4()), config);

    // -- 1. Concurrent submission -----------------------------------------
    let queries = [
        "How many paintings are in the museum?",
        "For each movement, how many paintings are there?",
        "How many paintings depict Madonna and Child?",
        "List the titles of all paintings that depict a horse.",
    ];
    let handles: Vec<QueryHandle> = queries.iter().map(|q| caesura.submit(q)).collect();
    let stats = caesura.serving_stats();
    println!(
        "submitted {} queries to {} workers (queue depth {})\n",
        queries.len(),
        stats.workers,
        stats.queue_depth
    );

    // -- 2. A live trace stream for one more query -------------------------
    let streamed = caesura
        .submit("Plot the number of paintings depicting Madonna and Child for each century!");
    let events = streamed.subscribe();
    let printer = std::thread::spawn(move || {
        // The channel disconnects when the query finishes, ending the loop.
        for event in events {
            let preview: String = event.detail.chars().take(60).collect();
            println!(
                "  [live {} / {}] {}",
                event.phase,
                event.label,
                preview.replace('\n', " ")
            );
        }
    });

    // -- 3. Cooperative cancellation ---------------------------------------
    let doomed = caesura.submit("For each genre, how many paintings depict a skull?");
    doomed.cancel();

    // Collect everything.
    for (query, handle) in queries.iter().zip(handles) {
        let run = handle.wait();
        match &run.output {
            Ok(output) => println!("{query}\n  -> {} in {:.1?}", output.kind(), run.latency()),
            Err(error) => println!("{query}\n  -> failed: {error}"),
        }
    }
    printer.join().expect("trace printer thread");
    let streamed = streamed.wait();
    println!(
        "\nstreamed query finished: {} ({} trace events)",
        if streamed.succeeded() { "ok" } else { "failed" },
        streamed.trace.events().len()
    );

    let doomed = streamed_or_cancelled(doomed.wait());
    println!("cancelled query outcome: {doomed}");

    let stats = caesura.serving_stats();
    println!(
        "\nserving stats: {} completed ({} cancelled), {} queued, {} in flight",
        stats.completed, stats.cancelled, stats.queued, stats.in_flight
    );

    // -- 4. Two tenants: interactive vs batch ------------------------------
    // A fresh single-worker session makes the scheduling decision visible:
    // tenant "nightly" floods six batch-priority reports, then tenant
    // "dashboard" submits one interactive query — which the fair scheduler
    // dequeues ahead of the entire remaining backlog.
    let config = CaesuraConfig {
        session_workers: Some(1),
        session_queue: Some(16),
        ..CaesuraConfig::default()
    };
    let caesura = Caesura::with_config(
        generate_artwork(&ArtworkConfig::default()).lake,
        Arc::new(SimulatedLlm::gpt4()),
        config,
    );
    let nightly: Vec<QueryHandle> = (0..6)
        .map(|_| {
            caesura
                .submit_with(
                    "For each movement, how many paintings are there?",
                    SubmitOptions::for_tenant("nightly").batch(),
                )
                .expect("queue sized for the whole batch")
        })
        .collect();
    let dashboard = caesura
        .submit_with(
            "How many paintings are in the museum?",
            SubmitOptions::for_tenant("dashboard"),
        )
        .expect("queue sized for the whole batch");

    let run = dashboard.wait();
    println!(
        "\ndashboard (interactive) answered in {:.1?} end to end, \
         jumping the nightly backlog",
        run.trace.timings().end_to_end()
    );
    if let Some(info) = run.trace.scheduling() {
        println!(
            "  scheduled as: tenant '{}', priority {}",
            info.tenant, info.priority
        );
    }
    for handle in nightly {
        handle.wait();
    }
    println!("\nper-tenant serving stats:");
    for tenant in caesura.tenant_stats() {
        println!(
            "  {:<10} {} completed, {} rejected, total queue wait {:.1?}",
            tenant.tenant, tenant.completed, tenant.rejected, tenant.total_queue_wait
        );
    }
}

fn streamed_or_cancelled(run: QueryRun) -> &'static str {
    if run.cancelled() {
        "cancelled before completion (CoreError::Cancelled)"
    } else {
        // Cancellation raced completion and lost: the answer was already done.
        "completed before the cancel checkpoint"
    }
}
