//! Error handling demo (§3.2 of the paper): runs a query with the weaker
//! ChatGPT-3.5 profile so that planning/mapping mistakes occur, and prints the
//! execution trace showing error-analysis prompts, argument retries, and
//! backtracking.
//!
//! Run with: `cargo run --example error_recovery`

use caesura::prelude::*;
use std::sync::Arc;

fn main() {
    let data = generate_artwork(&ArtworkConfig::default());

    // Sweep the benchmark queries with the weaker profile until we find a run
    // that needed error recovery, then show its trace.
    let caesura = Caesura::new(data.lake, Arc::new(SimulatedLlm::chatgpt35()));
    let queries = [
        "Plot the number of paintings depicting Madonna and Child for each century!",
        "How many paintings depict at least two swords?",
        "For each century, how many paintings depict Madonna and Child?",
        "List the titles of all paintings that depict a horse.",
        "Plot the average number of birds depicted in the paintings of each genre.",
        "How many paintings of the Baroque movement depict a skull?",
    ];
    let mut shown = false;
    for query in queries {
        let run = caesura.run(query);
        let recovered = run.trace.recovered();
        let errors = run.trace.error_count();
        println!(
            "{:<75} errors={errors} recovery={} outcome={}",
            query,
            if recovered { "yes" } else { "no " },
            if run.succeeded() { "ok" } else { "FAILED" }
        );
        if (recovered || errors > 0) && !shown {
            println!("\n--- execution trace of the first run that hit an error ---\n");
            println!("{}", run.trace.render(false));
            shown = true;
        }
    }
    if !shown {
        println!("\n(no errors occurred for this seed; try a different seed to see recovery)");
    }
}
