//! Artwork-lake analysis: a small "museum analyst" session issuing several
//! queries of increasing complexity against the artwork data lake, including
//! the Figure 4 Query 2 anecdote.
//!
//! Migrated to the concurrent serving API (PR 5): all queries are submitted
//! up front and run on the session's scheduler pool; results are collected in
//! submission order. See `examples/quickstart.rs` for the blocking
//! compatibility path (`Caesura::run` / `Caesura::query`).
//!
//! Run with: `cargo run --example artwork_analysis`

use caesura::prelude::*;
use std::sync::Arc;

fn main() {
    let data = generate_artwork(&ArtworkConfig::default());
    let caesura = Caesura::new(data.lake, Arc::new(SimulatedLlm::gpt4()));

    let queries = [
        "How many paintings are in the museum?",
        "For each movement, how many paintings are there?",
        "How many paintings depict Madonna and Child?",
        "List the titles of all paintings that depict a horse.",
        "Plot the maximum number of swords depicted on the paintings of each century.",
    ];
    // Enqueue everything first: the scheduler overlaps the queries across
    // its workers while we wait for the answers in order.
    let handles: Vec<QueryHandle> = queries.iter().map(|q| caesura.submit(q)).collect();
    for (query, handle) in queries.iter().zip(handles) {
        println!("==============================================================");
        println!("Query: {query}\n");
        let run = handle.wait();
        match &run.output {
            Ok(output) => println!("{output}"),
            Err(error) => println!("failed: {error}"),
        }
        println!("(answered in {:.1?})\n", run.latency());
    }
    let stats = caesura.serving_stats();
    println!(
        "served {} queries over one shared lake and perception cache",
        stats.completed
    );
}
