//! Artwork-lake analysis: a small "museum analyst" session issuing several
//! queries of increasing complexity against the artwork data lake, including
//! the Figure 4 Query 2 anecdote.
//!
//! Run with: `cargo run --example artwork_analysis`

use caesura::prelude::*;
use std::sync::Arc;

fn main() {
    let data = generate_artwork(&ArtworkConfig::default());
    let caesura = Caesura::new(data.lake, Arc::new(SimulatedLlm::gpt4()));

    let queries = [
        "How many paintings are in the museum?",
        "For each movement, how many paintings are there?",
        "How many paintings depict Madonna and Child?",
        "List the titles of all paintings that depict a horse.",
        "Plot the maximum number of swords depicted on the paintings of each century.",
    ];
    for query in queries {
        println!("==============================================================");
        println!("Query: {query}\n");
        match caesura.query(query) {
            Ok(output) => println!("{output}"),
            Err(error) => println!("failed: {error}"),
        }
        println!();
    }
}
