//! Fieldwork-lake analysis: multi-step multi-modal queries against the third
//! data lake — polar research stations with photographed camps (IMAGE),
//! textual expedition logs (TEXT) and relational region metadata. Every
//! query below chains three or more plan steps across at least two
//! modalities (join → perception → aggregate, sometimes → plot).
//!
//! The second half regenerates the lake with its adversarial knobs turned on
//! (`FieldworkConfig::adversarial`) and shows the typed per-row execution
//! errors that dirty cells and missing image bytes must surface instead of
//! silently becoming NULLs.
//!
//! Run with: `cargo run --example fieldwork_analysis`

use caesura::prelude::*;
use std::sync::Arc;

fn main() {
    let data = generate_fieldwork(&FieldworkConfig::default());
    let caesura = Caesura::new(data.lake, Arc::new(SimulatedLlm::gpt4()));

    let queries = [
        // join + VisualQA + aggregate
        "What is the maximum number of tents depicted in the station photos of each terrain?",
        // join + TextQA + aggregate
        "What is the maximum number of specimens collected by each station?",
        // join + VisualQA + filter-by-depiction + aggregate + plot
        "Plot the number of station photos depicting a penguin for each region!",
        // two joins (regions) + TextQA + aggregate
        "What is the average number of samples stored by each climate?",
        // join + VisualQA + TextQA + aggregate: both perception modalities
        "What is the maximum number of specimens collected by each station with photos depicting a husky?",
    ];
    let handles: Vec<QueryHandle> = queries.iter().map(|q| caesura.submit(q)).collect();
    for (query, handle) in queries.iter().zip(handles) {
        println!("==============================================================");
        println!("Query: {query}\n");
        let run = handle.wait();
        match &run.output {
            Ok(output) => println!("{output}"),
            Err(error) => println!("failed: {error}"),
        }
        println!("(answered in {:.1?})\n", run.latency());
    }

    // The adversarial tier: same schema, but two stations lost their photo
    // bytes and two expedition logs hold an integer where the TEXT document
    // belongs. Queries that touch the damaged rows fail loudly and typed.
    println!("==============================================================");
    println!("Adversarial lake: dirty cells fail loudly, never as NULL\n");
    let adversarial = generate_fieldwork(&FieldworkConfig::adversarial());
    let caesura = Caesura::new(adversarial.lake, Arc::new(SimulatedLlm::gpt4()));
    for query in [
        "What is the maximum number of penguins depicted in the station photos of each region?",
        "What is the minimum number of specimens collected by each station?",
    ] {
        println!("Query: {query}");
        match caesura.query(query) {
            Ok(output) => println!("unexpectedly succeeded: {output}"),
            Err(error) => println!("failed as designed: {error}\n"),
        }
    }
}
