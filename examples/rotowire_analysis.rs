//! Rotowire-lake analysis: queries over the basketball tables and the textual
//! game reports, including the Figure 4 Query 1 anecdote and the "hard query"
//! discussed in §4.3 of the paper.
//!
//! Migrated to the concurrent serving API (PR 5), demonstrating the
//! non-blocking side of a `QueryHandle`: results are collected by polling
//! whichever query finishes first instead of waiting in submission order.
//!
//! Run with: `cargo run --example rotowire_analysis`

use caesura::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let data = generate_rotowire(&RotowireConfig::default());
    let caesura = Caesura::new(data.lake.clone(), Arc::new(SimulatedLlm::gpt4()));

    let queries = [
        "How many teams are in the Eastern conference?",
        "What is the height of the tallest player?",
        "For every team, what is the highest number of points they scored in a game?",
        "Plot the number of games won by each team.",
        // The query both models struggled with in the paper (§4.3).
        "How many games did each team lose?",
    ];
    let mut pending: Vec<(usize, QueryHandle)> = queries
        .iter()
        .enumerate()
        .map(|(index, q)| (index, caesura.submit(q)))
        .collect();

    // Drain completions as they arrive (completion order, not submission
    // order — `poll` never blocks).
    while !pending.is_empty() {
        let mut still_pending = Vec::new();
        for (index, handle) in pending {
            match handle.poll() {
                Some(run) => {
                    println!("==============================================================");
                    println!("Query: {}\n", queries[index]);
                    match &run.output {
                        Ok(output) => println!("{output}"),
                        Err(error) => println!("failed: {error}"),
                    }
                    println!();
                }
                None => still_pending.push((index, handle)),
            }
        }
        pending = still_pending;
        if !pending.is_empty() {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    // Cross-check one answer against the generator's ground truth.
    if let Some(expected) = data.max_points_of("Heat") {
        println!("Ground truth: the Heat's best game was {expected} points.");
    }
}
