//! Rotowire-lake analysis: queries over the basketball tables and the textual
//! game reports, including the Figure 4 Query 1 anecdote and the "hard query"
//! discussed in §4.3 of the paper.
//!
//! Run with: `cargo run --example rotowire_analysis`

use caesura::prelude::*;
use std::sync::Arc;

fn main() {
    let data = generate_rotowire(&RotowireConfig::default());
    let caesura = Caesura::new(data.lake.clone(), Arc::new(SimulatedLlm::gpt4()));

    let queries = [
        "How many teams are in the Eastern conference?",
        "What is the height of the tallest player?",
        "For every team, what is the highest number of points they scored in a game?",
        "Plot the number of games won by each team.",
        // The query both models struggled with in the paper (§4.3).
        "How many games did each team lose?",
    ];
    for query in queries {
        println!("==============================================================");
        println!("Query: {query}\n");
        let run = caesura.run(query);
        match &run.output {
            Ok(output) => println!("{output}"),
            Err(error) => println!("failed: {error}"),
        }
        println!();
    }

    // Cross-check one answer against the generator's ground truth.
    if let Some(expected) = data.max_points_of("Heat") {
        println!("Ground truth: the Heat's best game was {expected} points.");
    }
}
