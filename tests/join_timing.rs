//! Ad-hoc timing breakdown for the 1M-row low-cardinality join (run manually
//! with `cargo test --release --test join_timing -- --ignored --nocapture`).

use caesura::engine::{dict, ops, DataType, Schema, Table, TableBuilder, Value};
use std::time::Instant;

fn keyed(rows: usize, card: usize) -> Table {
    let schema = Schema::from_pairs(&[
        ("id", DataType::Int),
        ("name", DataType::Str),
        ("points", DataType::Int),
    ]);
    let mut b = TableBuilder::new("keyed", schema);
    for i in 0..rows {
        b.push_row(vec![
            Value::Int(i as i64),
            Value::str(format!("key-{:06}", i % card)),
            Value::Int(60 + ((i * 37) % 90) as i64),
        ])
        .unwrap();
    }
    b.build()
}

fn side(card: usize) -> Table {
    let schema = Schema::from_pairs(&[("name", DataType::Str), ("bucket", DataType::Int)]);
    let mut b = TableBuilder::new("side", schema);
    for i in 0..card {
        b.push_row(vec![
            Value::str(format!("key-{i:06}")),
            Value::Int((i % 7) as i64),
        ])
        .unwrap();
    }
    b.build()
}

#[test]
#[ignore]
fn breakdown() {
    let rows = 1_000_000;
    let base = keyed(rows, 8);
    let encoded = dict::encode_table(&base);
    let plain = dict::decode_table(&base);
    let sd = dict::encode_table(&side(8));
    let sp = dict::decode_table(&side(8));

    for (label, t, s) in [("dict", &encoded, &sd), ("plain", &plain, &sp)] {
        for _ in 0..3 {
            let t0 = Instant::now();
            let out = ops::hash_join(t, s, "name", "name", ops::JoinType::Inner).unwrap();
            println!(
                "{label}: full join {:?} ({} rows)",
                t0.elapsed(),
                out.num_rows()
            );
        }
        // Gather-only cost: take the full identity index vector.
        let idx: Vec<usize> = (0..rows).collect();
        let t0 = Instant::now();
        let gathered = t.take(&idx);
        println!(
            "{label}: left take(identity) {:?} ({})",
            t0.elapsed(),
            gathered.num_rows()
        );
    }
}
