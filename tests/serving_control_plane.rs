//! The multi-tenant serving control plane (PR 8): typed admission, priority
//! tiers, deficit-round-robin fairness across tenants, and the guarantee
//! that none of it changes default-path behaviour.
//!
//! These tests pin:
//!
//! * **byte-identity**: default-tenant / default-priority submissions under
//!   the weighted-fair scheduler produce exactly the outputs *and traces* of
//!   the PR 5 FIFO scheduler, across worker counts {1, 4};
//! * **typed admission**: `submit_with` distinguishes `QueueFull`,
//!   `TenantOverQuota` (which wins when both apply), and
//!   `DeadlineUnmeetable`, and every decline is on the books as a rejection;
//! * **priority preemption**: an interactive submission is dequeued before
//!   batch work that was queued earlier;
//! * **weighted fairness**: a weight-2 tenant takes two consecutive turns
//!   per deficit-round-robin round against a weight-1 tenant;
//! * **`wait_timeout`**: returns `None` while the query runs, `Some(run)`
//!   once it finishes, and leaves the handle usable;
//! * **observability**: non-default submissions stamp their scheduling
//!   decision into the trace (and render it); default submissions do not.

use caesura::core::{AdmissionError, SubmitOptions};
use caesura::llm::{CancelToken, Conversation, GatedLlm, LlmClient, LlmResult};
use caesura::prelude::*;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const GATE_WAIT: Duration = Duration::from_secs(30);

/// Relational artwork queries (no perception calls): distinct texts, so the
/// plan cache never collapses their dispatches and each query's first LLM
/// round trip marks the moment a worker picked it up.
const SUITE: &[&str] = &[
    "How many paintings are in the museum?",
    "How many paintings belong to the Impressionism movement?",
    "What is the earliest inception year of any painting?",
    "How many paintings did Clara Moreau paint?",
    "For each movement, how many paintings are there?",
    "For each genre, how many paintings are there?",
];

/// Wraps the gated simulated model and records, in dispatch order, which
/// suite query each *first* LLM round trip belongs to — the scheduler's
/// dequeue order made observable.
struct RecordingLlm {
    inner: Arc<GatedLlm<SimulatedLlm>>,
    order: Mutex<Vec<usize>>,
}

impl RecordingLlm {
    fn new(inner: Arc<GatedLlm<SimulatedLlm>>) -> Self {
        RecordingLlm {
            inner,
            order: Mutex::new(Vec::new()),
        }
    }

    fn record(&self, conversation: &Conversation) {
        let text = conversation.human_text();
        if let Some(index) = SUITE.iter().position(|query| text.contains(query)) {
            let mut order = self.order.lock().unwrap();
            if !order.contains(&index) {
                order.push(index);
            }
        }
    }

    fn first_seen(&self) -> Vec<usize> {
        self.order.lock().unwrap().clone()
    }
}

impl LlmClient for RecordingLlm {
    fn complete(&self, conversation: &Conversation) -> LlmResult<String> {
        self.record(conversation);
        self.inner.complete(conversation)
    }

    fn complete_cancellable(
        &self,
        conversation: &Conversation,
        cancel: &CancelToken,
    ) -> LlmResult<String> {
        self.record(conversation);
        self.inner.complete_cancellable(conversation, cancel)
    }

    fn name(&self) -> &str {
        "recording-gated-gpt4"
    }
}

fn artwork_session_with(config: CaesuraConfig, llm: Arc<dyn LlmClient>) -> Caesura {
    let data = generate_artwork(&ArtworkConfig::small());
    Caesura::with_config(data.lake, llm, config)
}

#[test]
fn default_submissions_are_byte_identical_with_fair_scheduling_on_and_off() {
    // The acceptance property of the refactor: with the default tenant and
    // default priority, the weighted-fair scheduler must be indistinguishable
    // from the PR 5 FIFO — same outputs, same traces (trace equality covers
    // every event, phase sequence, and counter; timings and scheduling
    // metadata are excluded from `PartialEq` by design). Queries are
    // submitted serially (submit → wait) so worker count cannot reorder
    // cache warm-up between the two runs.
    for workers in [1usize, 4] {
        let run_suite = |fair: bool| -> Vec<QueryRun> {
            let config = CaesuraConfig {
                session_workers: Some(workers),
                fair_sched: Some(fair),
                ..CaesuraConfig::default()
            };
            let session = artwork_session_with(config, Arc::new(SimulatedLlm::gpt4()));
            SUITE
                .iter()
                .map(|query| session.submit(query).wait())
                .collect()
        };
        let fair = run_suite(true);
        let fifo = run_suite(false);
        for ((query, fair_run), fifo_run) in SUITE.iter().zip(&fair).zip(&fifo) {
            assert!(fair_run.succeeded(), "'{query}' failed under fair");
            assert!(fifo_run.succeeded(), "'{query}' failed under fifo");
            assert_eq!(
                fair_run.output.as_ref().unwrap(),
                fifo_run.output.as_ref().unwrap(),
                "workers={workers}: output diverged for '{query}'"
            );
            assert_eq!(
                fair_run.trace, fifo_run.trace,
                "workers={workers}: trace diverged for '{query}'"
            );
            // Default-path submissions carry no scheduling metadata at all.
            assert!(fair_run.trace.scheduling().is_none());
            assert!(fifo_run.trace.scheduling().is_none());
        }
    }
}

#[test]
fn typed_admission_distinguishes_queue_full_quota_and_deadline() {
    let gated = Arc::new(GatedLlm::new(SimulatedLlm::gpt4()));
    let config = CaesuraConfig {
        session_workers: Some(1),
        session_queue: Some(2),
        tenant_quota: Some(2),
        ..CaesuraConfig::default()
    };
    let session = artwork_session_with(config, Arc::clone(&gated) as Arc<dyn LlmClient>);

    // A zero deadline can never be met: rejected up front, before any queue
    // or quota accounting.
    let zero = session.submit_with(SUITE[0], SubmitOptions::new().with_deadline(Duration::ZERO));
    assert!(
        matches!(zero, Err(AdmissionError::DeadlineUnmeetable { .. })),
        "expected DeadlineUnmeetable, got {zero:?}"
    );

    // Tenant "flood" occupies the worker (held at the LLM gate) and one of
    // the two queue slots: its quota of 2 (queued + in flight) is exhausted.
    let running = session
        .submit_with(SUITE[0], SubmitOptions::for_tenant("flood"))
        .expect("empty session admits");
    gated.wait_entered(GATE_WAIT);
    let queued = session
        .submit_with(SUITE[1], SubmitOptions::for_tenant("flood"))
        .expect("one queue slot free, quota not yet reached");

    let over_quota = session.submit_with(SUITE[2], SubmitOptions::for_tenant("flood"));
    assert!(
        matches!(
            over_quota,
            Err(AdmissionError::TenantOverQuota { quota: 2, .. })
        ),
        "expected TenantOverQuota, got {over_quota:?}"
    );

    // Another tenant still fits: quota is per tenant, and one queue slot
    // remains.
    let other = session
        .submit_with(SUITE[2], SubmitOptions::for_tenant("other"))
        .expect("a fresh tenant has quota and the queue has space");

    // Now the queue is full. A third tenant gets the queue-full error…
    let full = session.submit_with(SUITE[3], SubmitOptions::for_tenant("third"));
    assert!(
        matches!(full, Err(AdmissionError::QueueFull { depth: 2 })),
        "expected QueueFull, got {full:?}"
    );
    // …while the flooding tenant — over quota *and* facing a full queue —
    // gets the more specific quota error.
    let both = session.submit_with(SUITE[3], SubmitOptions::for_tenant("flood"));
    assert!(
        matches!(both, Err(AdmissionError::TenantOverQuota { quota: 2, .. })),
        "expected TenantOverQuota to win over QueueFull, got {both:?}"
    );

    gated.release();
    for handle in [running, queued, other] {
        assert!(handle.wait().succeeded());
    }

    // Every decline above is on the books, globally and per tenant.
    let stats = session.serving_stats();
    assert_eq!(stats.rejected, 4);
    assert_eq!(stats.completed, 3);
    let tenants = session.tenant_stats();
    let rejected_of = |name: &str| {
        tenants
            .iter()
            .find(|t| t.tenant == name)
            .map(|t| t.rejected)
            .unwrap_or(0)
    };
    assert_eq!(rejected_of("default"), 1, "the zero-deadline submission");
    assert_eq!(rejected_of("flood"), 2);
    assert_eq!(rejected_of("third"), 1);
    assert_eq!(rejected_of("other"), 0);
}

#[test]
fn interactive_submissions_preempt_queued_batch_work_at_dequeue() {
    let gated = Arc::new(GatedLlm::new(SimulatedLlm::gpt4()));
    let recorder = Arc::new(RecordingLlm::new(Arc::clone(&gated)));
    let config = CaesuraConfig {
        session_workers: Some(1),
        session_queue: Some(16),
        // Pinned on: the CI row that forces `CAESURA_FAIR_SCHED=0` must not
        // turn this into a FIFO test.
        fair_sched: Some(true),
        ..CaesuraConfig::default()
    };
    let session = artwork_session_with(config, Arc::clone(&recorder) as Arc<dyn LlmClient>);

    // b1 occupies the single worker, held at the gate; b2 and b3 queue
    // behind it at batch priority, then i1 arrives at interactive priority.
    let batch = SubmitOptions::for_tenant("bulk").batch();
    let b1 = session.submit_with(SUITE[0], batch.clone()).unwrap();
    gated.wait_entered(GATE_WAIT);
    let b2 = session.submit_with(SUITE[1], batch.clone()).unwrap();
    let b3 = session.submit_with(SUITE[2], batch).unwrap();
    let i1 = session
        .submit_with(SUITE[3], SubmitOptions::for_tenant("dash"))
        .unwrap();
    gated.release();

    for handle in [b1, b2, b3, i1] {
        assert!(handle.wait().succeeded());
    }

    // The interactive tier drains first at every dequeue: i1 jumps the two
    // batch queries that were queued before it.
    assert_eq!(
        recorder.first_seen(),
        vec![0, 3, 1, 2],
        "expected b1, i1, b2, b3"
    );

    // The non-default submissions carried their scheduling decision into
    // the per-tenant stats.
    let tenants = session.tenant_stats();
    assert_eq!(tenants.len(), 2);
    assert!(tenants
        .iter()
        .any(|t| t.tenant == "bulk" && t.completed == 3));
    assert!(tenants
        .iter()
        .any(|t| t.tenant == "dash" && t.completed == 1));
}

#[test]
fn weighted_tenants_take_proportional_turns_within_a_tier() {
    let gated = Arc::new(GatedLlm::new(SimulatedLlm::gpt4()));
    let recorder = Arc::new(RecordingLlm::new(Arc::clone(&gated)));
    let config = CaesuraConfig {
        session_workers: Some(1),
        session_queue: Some(16),
        fair_sched: Some(true),
        tenant_weights: vec![("heavy".to_string(), 2)],
        ..CaesuraConfig::default()
    };
    let session = artwork_session_with(config, Arc::clone(&recorder) as Arc<dyn LlmClient>);

    // The blocker comes from the weight-1 tenant: popping it spends the
    // light lane's whole round while it is the only lane, so the cursor
    // wraps back onto it and the drain below starts a fresh round there.
    let blocker = session
        .submit_with(SUITE[5], SubmitOptions::for_tenant("light"))
        .unwrap();
    gated.wait_entered(GATE_WAIT);
    let a1 = session
        .submit_with(SUITE[0], SubmitOptions::for_tenant("heavy"))
        .unwrap();
    let a2 = session
        .submit_with(SUITE[1], SubmitOptions::for_tenant("heavy"))
        .unwrap();
    let a3 = session
        .submit_with(SUITE[2], SubmitOptions::for_tenant("heavy"))
        .unwrap();
    let b1 = session
        .submit_with(SUITE[3], SubmitOptions::for_tenant("light"))
        .unwrap();
    let b2 = session
        .submit_with(SUITE[4], SubmitOptions::for_tenant("light"))
        .unwrap();
    gated.release();

    for handle in [blocker, a1, a2, a3, b1, b2] {
        assert!(handle.wait().succeeded());
    }

    // Deficit round robin at weight 2 vs 1: per round the light tenant gets
    // one pop and the heavy tenant two consecutive pops — after the blocker
    // the backlog drains b1 | a1 a2 | b2 | a3, never three heavy pops in a
    // row and never two light pops in a row.
    assert_eq!(
        recorder.first_seen(),
        vec![5, 3, 0, 1, 4, 2],
        "expected blocker, b1, a1, a2, b2, a3"
    );
}

/// Fieldwork-lake queries whose plans chain 3+ steps across modalities:
/// join + perception (image or text extraction) + aggregation, one with a
/// plot stage on top. The heavyweight shape multi-tenant serving must keep
/// deterministic.
const FIELDWORK_SUITE: &[&str] = &[
    "What is the maximum number of specimens collected by each station?",
    "What is the maximum number of tents depicted in the station photos of each terrain?",
    "Plot the number of station photos depicting a penguin for each region!",
    "What is the average number of flags depicted in the station photos of each region?",
];

#[test]
fn tenants_racing_fieldwork_queries_match_serial_baselines_and_balance_counters() {
    // Serial ground truth: one query at a time on a single worker, plan
    // cache off so every run plans live and its trace is deterministic.
    let serial_config = || CaesuraConfig {
        session_workers: Some(1),
        plan_cache: Some(caesura::llm::PlanCacheConfig::off()),
        ..CaesuraConfig::default()
    };
    let fieldwork_session = |config: CaesuraConfig| {
        let data = generate_fieldwork(&FieldworkConfig::small());
        Caesura::with_config(
            data.lake,
            Arc::new(SimulatedLlm::gpt4()) as Arc<dyn LlmClient>,
            config,
        )
    };
    let baseline: Vec<QueryRun> = {
        let session = fieldwork_session(serial_config());
        FIELDWORK_SUITE
            .iter()
            .map(|query| session.run(query))
            .collect()
    };
    for (query, run) in FIELDWORK_SUITE.iter().zip(&baseline) {
        assert!(
            run.succeeded(),
            "baseline '{query}' failed: {:?}",
            run.output
        );
    }

    // Two tenants race disjoint halves of the multi-step suite through one
    // shared session: interleaved submissions, 4 workers, shared scheduler.
    // The halves are disjoint because the perception cache is shared — two
    // tenants running the *same* query would let one warm the other's
    // perception rows, and its trace could no longer match a cold serial
    // baseline.
    let session = fieldwork_session(CaesuraConfig {
        session_workers: Some(4),
        plan_cache: Some(caesura::llm::PlanCacheConfig::off()),
        fair_sched: Some(true),
        ..CaesuraConfig::default()
    });
    let tenant_of = |index: usize| {
        if index.is_multiple_of(2) {
            "alpha"
        } else {
            "beta"
        }
    };
    let handles: Vec<(&str, usize, QueryHandle)> = FIELDWORK_SUITE
        .iter()
        .enumerate()
        .map(|(index, query)| {
            let tenant = tenant_of(index);
            let handle = session
                .submit_with(query, SubmitOptions::for_tenant(tenant))
                .expect("admission with default quotas");
            (tenant, index, handle)
        })
        .collect();

    for (tenant, index, handle) in handles {
        let run = handle.wait();
        let query = FIELDWORK_SUITE[index];
        assert!(
            run.succeeded(),
            "tenant {tenant} failed '{query}': {:?}",
            run.output
        );
        assert_eq!(
            run.output.as_ref().unwrap(),
            baseline[index].output.as_ref().unwrap(),
            "tenant {tenant}: output diverged from serial baseline for '{query}'"
        );
        // Trace equality covers events, LLM-call counters, perception
        // counters, and plan source; scheduling metadata and timings are
        // excluded by design, so a racing tenant run must reproduce the
        // serial trace exactly.
        assert_eq!(
            run.trace, baseline[index].trace,
            "tenant {tenant}: trace diverged from serial baseline for '{query}'"
        );
        assert_eq!(
            run.trace.scheduling().map(|s| s.tenant.as_str()),
            Some(tenant)
        );
    }

    // The books balance, globally and per tenant.
    let stats = session.serving_stats();
    assert_eq!(stats.completed, FIELDWORK_SUITE.len());
    assert_eq!(stats.rejected, 0);
    let tenants = session.tenant_stats();
    assert_eq!(tenants.len(), 2);
    for tenant in tenants {
        assert_eq!(tenant.completed, FIELDWORK_SUITE.len() / 2);
        assert_eq!(tenant.rejected, 0);
        assert!(tenant.tenant == "alpha" || tenant.tenant == "beta");
    }
}

#[test]
fn wait_timeout_expires_while_running_and_returns_the_run_after() {
    let gated = Arc::new(GatedLlm::new(SimulatedLlm::gpt4()));
    let config = CaesuraConfig {
        session_workers: Some(1),
        ..CaesuraConfig::default()
    };
    let session = artwork_session_with(config, Arc::clone(&gated) as Arc<dyn LlmClient>);

    let handle = session.submit(SUITE[0]);
    gated.wait_entered(GATE_WAIT);
    // Held at the gate: the bounded wait must give up, not block.
    assert!(handle.wait_timeout(Duration::from_millis(50)).is_none());
    assert_eq!(handle.status(), QueryStatus::Running);

    gated.release();
    let run = handle
        .wait_timeout(Duration::from_secs(30))
        .expect("released query finishes well within the bound");
    assert!(run.succeeded());
    // The handle stays usable after a successful bounded wait.
    assert_eq!(handle.status(), QueryStatus::Finished);
    assert!(handle.poll().is_some());
}

#[test]
fn non_default_submissions_stamp_their_scheduling_decision_into_the_trace() {
    let session = artwork_session_with(
        CaesuraConfig::default(),
        Arc::new(SimulatedLlm::gpt4()) as Arc<dyn LlmClient>,
    );

    let options = SubmitOptions::for_tenant("reporting")
        .batch()
        .with_deadline(Duration::from_secs(600));
    let run = session.submit_with(SUITE[0], options).unwrap().wait();
    assert!(run.succeeded(), "failed: {:?}", run.output);
    let info = run
        .trace
        .scheduling()
        .expect("non-default submission carries scheduling metadata");
    assert_eq!(info.tenant, "reporting");
    let rendered = run.trace.render(false);
    assert!(
        rendered.contains("tenant 'reporting'") && rendered.contains("priority batch"),
        "scheduling line missing from the rendered trace:\n{rendered}"
    );

    // The default path stays clean.
    let default_run = session.submit(SUITE[0]).wait();
    assert!(default_run.trace.scheduling().is_none());
    assert!(!default_run.trace.render(false).contains("== Scheduling"));
}
