//! Equivalence properties for dictionary-encoded columns and the compiled
//! expression evaluator (`caesura_engine::dict` / `caesura_engine::expr`).
//!
//! Two families of properties:
//!
//! 1. **Dict ≡ plain.** Every relational operator is run twice over the same
//!    logical data — once with eligible string columns dictionary-encoded
//!    ([`dict::encode_table`]) and once fully decoded ([`dict::decode_table`])
//!    — under `threads ∈ {1, 4} × morsel_rows ∈ {1, 7, 1024}`. After
//!    normalizing the outputs back to plain representation, they must be
//!    **byte-identical** (validity bitmap words and NULL placeholders
//!    included), and errors must be identical too. This pins the code-native
//!    join/group-by/sort/filter kernels to the exact semantics of the string
//!    paths they replace.
//!
//! 2. **Compiled ≡ interpreted.** Randomized expression trees — including
//!    NULL-heavy inputs, per-row type errors, division by zero, unknown
//!    columns, lazy `CASE` branches and `IN` items — are evaluated through
//!    both `Expr::evaluate_batch` (the compiled pipeline) and
//!    `Expr::evaluate_batch_interpreted` (the retained reference
//!    interpreter), over plain and dict-encoded inputs. Outputs must be
//!    byte-identical and errors equal, for selection vectors as well.

use caesura::engine::parallel::{self, ExecConfig};
use caesura::engine::{
    dict, ops, BinaryOp, DataType, EngineError, Expr, ScalarFunc, Schema, Table, TableBuilder,
    UnaryOp, Value,
};
use rand::{Rng, SeedableRng, StdRng};

/// `threads ∈ {1, 4} × morsel_rows ∈ {1, 7, 1024}` (threads = 1 ignores the
/// morsel size, so it appears once).
fn configs() -> Vec<ExecConfig> {
    vec![
        ExecConfig::sequential(),
        ExecConfig::new(4, 1),
        ExecConfig::new(4, 7),
        ExecConfig::new(4, 1024),
    ]
}

/// Byte-level table equality after normalizing any dict columns to plain.
fn assert_normalized_identical(expected: &Table, actual: &Table, context: &str) {
    assert_eq!(expected.name(), actual.name(), "name differs: {context}");
    assert_eq!(
        expected.schema(),
        actual.schema(),
        "schema differs: {context}"
    );
    assert_eq!(
        expected.num_rows(),
        actual.num_rows(),
        "row count differs: {context}"
    );
    for (i, (a, b)) in expected.columns().iter().zip(actual.columns()).enumerate() {
        assert_eq!(
            a.as_ref(),
            b.as_ref(),
            "column {i} ('{}') differs byte-for-byte: {context}",
            expected.schema().names()[i]
        );
    }
}

/// Run the same operator over plain and dict-encoded inputs under every
/// config; decoded outputs (and errors) must match exactly.
fn check_dict_vs_plain(
    context: &str,
    plain_run: impl Fn() -> Result<Table, EngineError>,
    dict_run: impl Fn() -> Result<Table, EngineError>,
) {
    for config in configs() {
        let label = format!(
            "{context} [threads={}, morsel_rows={}]",
            config.threads, config.morsel_rows
        );
        let plain = parallel::with_config(config, &plain_run).map(|t| dict::decode_table(&t));
        let encoded = parallel::with_config(config, &dict_run).map(|t| dict::decode_table(&t));
        match (&plain, &encoded) {
            (Ok(expected), Ok(actual)) => assert_normalized_identical(expected, actual, &label),
            (Err(expected), Err(actual)) => assert_eq!(expected, actual, "errors differ: {label}"),
            (expected, actual) => panic!(
                "plain and dict outcomes disagree: {label}\n  plain: {expected:?}\n  dict: {actual:?}"
            ),
        }
    }
}

/// A deterministic pseudo-random table: an int key with NULLs, a dyadic
/// float score with NULLs, a low-cardinality team string with NULLs, and a
/// 13-value label string — both string columns are dict-eligible.
fn random_table(rng: &mut StdRng, rows: usize, name: &str) -> Table {
    let schema = Schema::from_pairs(&[
        ("k", DataType::Int),
        ("score", DataType::Float),
        ("team", DataType::Str),
        ("label", DataType::Str),
    ]);
    let teams = ["Heat", "Spurs", "Bulls", "Lakers", "Celtics"];
    let mut builder = TableBuilder::new(name, schema);
    for i in 0..rows {
        let k = if rng.gen_bool(0.12) {
            Value::Null
        } else {
            Value::Int(rng.gen_range(-25i64..25))
        };
        let score = if rng.gen_bool(0.08) {
            Value::Null
        } else {
            Value::Float(rng.gen_range(-2000i64..2000) as f64 / 4.0)
        };
        let team = if rng.gen_bool(0.1) {
            Value::Null
        } else {
            Value::str(teams[rng.gen_range(0..teams.len())])
        };
        builder
            .push_row(vec![k, score, team, Value::str(format!("row-{}", i % 13))])
            .unwrap();
    }
    builder.build()
}

/// Plain + dict-encoded versions of the same table, independent of the
/// `CAESURA_DICT_ENCODE` process knob.
fn both_representations(rng: &mut StdRng, rows: usize, name: &str) -> (Table, Table) {
    let base = random_table(rng, rows, name);
    let plain = dict::decode_table(&base);
    let encoded = dict::encode_table(&base);
    if rows >= 80 {
        let team = plain.schema().resolve("team").unwrap();
        assert!(
            encoded.columns()[team].as_dict().is_some(),
            "low-cardinality team column must dictionary-encode"
        );
    }
    (plain, encoded)
}

// ---------------------------------------------------------------------------
// Family 1: dict ≡ plain per operator.
// ---------------------------------------------------------------------------

#[test]
fn filter_dict_matches_plain() {
    let mut rng = StdRng::seed_from_u64(0xD1C7F117);
    let predicates = [
        Expr::binary(Expr::col("team"), BinaryOp::Eq, Expr::lit("Heat")),
        Expr::binary(Expr::col("team"), BinaryOp::NotEq, Expr::lit("Spurs")),
        Expr::binary(Expr::col("team"), BinaryOp::Lt, Expr::lit("Lakers")),
        Expr::binary(Expr::col("team"), BinaryOp::Like, Expr::lit("%s")),
        Expr::InList {
            expr: Box::new(Expr::col("team")),
            list: vec![Expr::lit("Heat"), Expr::lit("Bulls"), Expr::lit("Nets")],
            negated: false,
        },
        Expr::InList {
            expr: Box::new(Expr::col("team")),
            list: vec![Expr::lit("Celtics")],
            negated: true,
        },
        // Dict column against dict column (same entry table → code compare).
        Expr::binary(Expr::col("team"), BinaryOp::Eq, Expr::col("team")),
        // Dict column against a differently encoded column.
        Expr::binary(Expr::col("team"), BinaryOp::Eq, Expr::col("label")),
        // Everything / nothing survives.
        Expr::lit(true),
        Expr::lit(false),
    ];
    for rows in [0usize, 1, 40, 400] {
        let (plain, encoded) = both_representations(&mut rng, rows, "t");
        for (i, predicate) in predicates.iter().enumerate() {
            check_dict_vs_plain(
                &format!("filter #{i} over {rows} rows"),
                || ops::filter(&plain, predicate),
                || ops::filter(&encoded, predicate),
            );
        }
    }
}

#[test]
fn project_dict_matches_plain() {
    let mut rng = StdRng::seed_from_u64(0xD1C79801);
    let projections = [
        ops::Projection::column("team"),
        ops::Projection::new(
            Expr::Func {
                func: ScalarFunc::Upper,
                args: vec![Expr::col("team")],
            },
            "team_uc",
        ),
        ops::Projection::new(
            Expr::Func {
                func: ScalarFunc::Concat,
                args: vec![Expr::col("team"), Expr::lit("-"), Expr::col("label")],
            },
            "tag",
        ),
        ops::Projection::new(
            Expr::Case {
                branches: vec![(
                    Expr::binary(Expr::col("team"), BinaryOp::Eq, Expr::lit("Heat")),
                    Expr::lit("hot"),
                )],
                otherwise: Some(Box::new(Expr::lit("cold"))),
            },
            "temp",
        ),
    ];
    for rows in [0usize, 25, 300] {
        let (plain, encoded) = both_representations(&mut rng, rows, "t");
        check_dict_vs_plain(
            &format!("project over {rows} rows"),
            || ops::project(&plain, &projections),
            || ops::project(&encoded, &projections),
        );
    }
}

#[test]
fn fused_filter_project_dict_matches_plain_and_unfused() {
    let mut rng = StdRng::seed_from_u64(0xD1C700F0);
    let predicate = Expr::binary(Expr::col("team"), BinaryOp::Eq, Expr::lit("Spurs"));
    let projections = [
        ops::Projection::column("team"),
        ops::Projection::new(
            Expr::binary(Expr::col("k"), BinaryOp::Mul, Expr::lit(2)),
            "k2",
        ),
    ];
    for rows in [0usize, 60, 500] {
        let (plain, encoded) = both_representations(&mut rng, rows, "t");
        check_dict_vs_plain(
            &format!("fused filter_project over {rows} rows"),
            || ops::filter_project(&plain, &predicate, &projections),
            || ops::filter_project(&encoded, &predicate, &projections),
        );
        // The fused operator must also match the unfused pipeline exactly.
        for config in configs() {
            parallel::with_config(config, || {
                let fused = ops::filter_project(&encoded, &predicate, &projections).unwrap();
                let unfused =
                    ops::project(&ops::filter(&encoded, &predicate).unwrap(), &projections)
                        .unwrap();
                assert_normalized_identical(
                    &dict::decode_table(&unfused),
                    &dict::decode_table(&fused),
                    &format!("fused vs unfused over {rows} rows"),
                );
            });
        }
    }
}

#[test]
fn hash_join_dict_matches_plain_in_every_combination() {
    let mut rng = StdRng::seed_from_u64(0xD1C71011);
    for rows in [0usize, 30, 350] {
        let (lplain, ldict) = both_representations(&mut rng, rows, "l");
        let (rplain, rdict) = both_representations(&mut rng, (rows / 2).max(20), "r");
        for join_type in [ops::JoinType::Inner, ops::JoinType::Left] {
            // Dict ⋈ dict with distinct entry tables (the remap path).
            check_dict_vs_plain(
                &format!("dict⋈dict {join_type:?} over {rows} rows"),
                || ops::hash_join(&lplain, &rplain, "team", "team", join_type),
                || ops::hash_join(&ldict, &rdict, "team", "team", join_type),
            );
            // Self-join: both sides share one entry table `Arc` (no remap).
            check_dict_vs_plain(
                &format!("self dict⋈dict {join_type:?} over {rows} rows"),
                || ops::hash_join(&lplain, &lplain, "team", "team", join_type),
                || ops::hash_join(&ldict, &ldict, "team", "team", join_type),
            );
            // Mixed representations on either side.
            check_dict_vs_plain(
                &format!("dict⋈plain {join_type:?} over {rows} rows"),
                || ops::hash_join(&lplain, &rplain, "team", "team", join_type),
                || ops::hash_join(&ldict, &rplain, "team", "team", join_type),
            );
            check_dict_vs_plain(
                &format!("plain⋈dict {join_type:?} over {rows} rows"),
                || ops::hash_join(&lplain, &rplain, "team", "team", join_type),
                || ops::hash_join(&lplain, &rdict, "team", "team", join_type),
            );
        }
    }
}

#[test]
fn aggregate_dict_matches_plain() {
    let mut rng = StdRng::seed_from_u64(0xD1C70A66);
    let aggs = [
        ops::AggCall::count_star("n"),
        ops::AggCall::new(ops::AggFunc::Sum, Some(Expr::col("score")), "total"),
        ops::AggCall::new(ops::AggFunc::Min, Some(Expr::col("k")), "min_k"),
        ops::AggCall::new(ops::AggFunc::Max, Some(Expr::col("team")), "max_team"),
    ];
    for rows in [0usize, 18, 320, 1200] {
        let (plain, encoded) = both_representations(&mut rng, rows, "t");
        // Single dict key (the dense code path, including a NULL group).
        check_dict_vs_plain(
            &format!("aggregate by team over {rows} rows"),
            || ops::aggregate(&plain, &[(Expr::col("team"), "team".to_string())], &aggs),
            || ops::aggregate(&encoded, &[(Expr::col("team"), "team".to_string())], &aggs),
        );
        // Composite key with a dict member (the rendered-key path).
        let composite = [
            (Expr::col("team"), "team".to_string()),
            (Expr::col("k"), "k".to_string()),
        ];
        check_dict_vs_plain(
            &format!("aggregate by (team, k) over {rows} rows"),
            || ops::aggregate(&plain, &composite, &aggs),
            || ops::aggregate(&encoded, &composite, &aggs),
        );
    }
}

#[test]
fn sort_dict_matches_plain() {
    let mut rng = StdRng::seed_from_u64(0xD1C75017);
    for rows in [0usize, 1, 45, 600] {
        let (plain, encoded) = both_representations(&mut rng, rows, "t");
        let key_sets: Vec<(&str, Vec<ops::SortKey>)> = vec![
            // The rank fast path, NULLs first ascending / last descending.
            ("team asc", vec![ops::SortKey::asc(Expr::col("team"))]),
            ("team desc", vec![ops::SortKey::desc(Expr::col("team"))]),
            // Two keys force the decorate path through `Column::get`.
            (
                "team asc, k desc",
                vec![
                    ops::SortKey::asc(Expr::col("team")),
                    ops::SortKey::desc(Expr::col("k")),
                ],
            ),
        ];
        for (label, keys) in &key_sets {
            check_dict_vs_plain(
                &format!("sort by {label} over {rows} rows"),
                || ops::sort(&plain, keys),
                || ops::sort(&encoded, keys),
            );
        }
    }
}

#[test]
fn distinct_union_limit_dict_match_plain() {
    let mut rng = StdRng::seed_from_u64(0xD1C705E7);
    let (aplain, adict) = both_representations(&mut rng, 500, "t");
    let (bplain, bdict) = both_representations(&mut rng, 300, "t");
    check_dict_vs_plain(
        "distinct",
        || ops::distinct(&aplain),
        || ops::distinct(&adict),
    );
    // Same entry table on both sides: the concatenated column stays dict.
    check_dict_vs_plain(
        "union_all with itself",
        || ops::union_all(&aplain, &aplain),
        || ops::union_all(&adict, &adict),
    );
    // Distinct entry tables: concat degrades to plain values, same bytes.
    check_dict_vs_plain(
        "union_all across tables",
        || ops::union_all(&aplain, &bplain),
        || ops::union_all(&adict, &bdict),
    );
    check_dict_vs_plain(
        "limit",
        || ops::limit(&aplain, 123),
        || ops::limit(&adict, 123),
    );
}

// ---------------------------------------------------------------------------
// Family 2: compiled ≡ interpreted on randomized expression trees.
// ---------------------------------------------------------------------------

/// A random expression tree over the `random_table` schema. Leaves are
/// column references (occasionally unknown) and literals (occasionally
/// NULL); interior nodes cover every operator family, deliberately mixing
/// types so per-row type errors, division by zero, and lazily skipped
/// erroring branches all occur.
fn random_expr(rng: &mut StdRng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.3) {
        return match rng.gen_range(0..8) {
            0 => Expr::col("k"),
            1 => Expr::col("score"),
            2 => Expr::col("team"),
            3 => Expr::col("label"),
            4 => Expr::lit(rng.gen_range(-3i64..4)),
            5 => Expr::lit(rng.gen_range(-16i64..16) as f64 / 4.0),
            6 => Expr::lit(["Heat", "row-1", "%s", ""][rng.gen_range(0..4usize)]),
            _ => Expr::Literal(Value::Null),
        };
    }
    match rng.gen_range(0..10) {
        0..=3 => {
            let ops = [
                BinaryOp::Add,
                BinaryOp::Sub,
                BinaryOp::Mul,
                BinaryOp::Div,
                BinaryOp::Mod,
                BinaryOp::Eq,
                BinaryOp::NotEq,
                BinaryOp::Lt,
                BinaryOp::LtEq,
                BinaryOp::Gt,
                BinaryOp::GtEq,
                BinaryOp::And,
                BinaryOp::Or,
                BinaryOp::Like,
            ];
            Expr::binary(
                random_expr(rng, depth - 1),
                ops[rng.gen_range(0..ops.len())],
                random_expr(rng, depth - 1),
            )
        }
        4 => Expr::Unary {
            op: [
                UnaryOp::Neg,
                UnaryOp::Not,
                UnaryOp::IsNull,
                UnaryOp::IsNotNull,
            ][rng.gen_range(0..4usize)],
            operand: Box::new(random_expr(rng, depth - 1)),
        },
        5 | 6 => {
            let funcs = [
                ScalarFunc::Upper,
                ScalarFunc::Lower,
                ScalarFunc::Length,
                ScalarFunc::Abs,
                ScalarFunc::Coalesce,
                ScalarFunc::CastStr,
                ScalarFunc::Min2,
            ];
            let func = funcs[rng.gen_range(0..funcs.len())];
            let arity = match func {
                ScalarFunc::Coalesce | ScalarFunc::Min2 => 2,
                _ => 1,
            };
            Expr::Func {
                func,
                args: (0..arity).map(|_| random_expr(rng, depth - 1)).collect(),
            }
        }
        7 | 8 => Expr::InList {
            expr: Box::new(random_expr(rng, depth - 1)),
            list: (0..rng.gen_range(0..4))
                .map(|_| random_expr(rng, depth - 1))
                .collect(),
            negated: rng.gen_bool(0.5),
        },
        _ => Expr::Case {
            branches: (0..rng.gen_range(1..3))
                .map(|_| (random_expr(rng, depth - 1), random_expr(rng, depth - 1)))
                .collect(),
            otherwise: if rng.gen_bool(0.6) {
                Some(Box::new(random_expr(rng, depth - 1)))
            } else {
                None
            },
        },
    }
}

/// Compiled and interpreted evaluation of `expr` over `table` must agree on
/// bytes and on errors — for full batch results and for selection vectors.
fn assert_compiled_matches_interpreted(expr: &Expr, table: &Table, context: &str) {
    let schema = table.schema();
    let (columns, rows) = (table.columns(), table.num_rows());
    let compiled = expr.evaluate_batch(schema, columns, rows);
    let interpreted = expr.evaluate_batch_interpreted(schema, columns, rows);
    match (&interpreted, &compiled) {
        (Ok(expected), Ok(actual)) => assert_eq!(
            expected.as_ref(),
            actual.as_ref(),
            "evaluate_batch differs: {context} (expr: {expr})"
        ),
        (Err(expected), Err(actual)) => assert_eq!(
            expected, actual,
            "evaluate_batch errors differ: {context} (expr: {expr})"
        ),
        (expected, actual) => panic!(
            "compiled and interpreted outcomes disagree: {context} (expr: {expr})\n  \
             interpreted: {expected:?}\n  compiled: {actual:?}"
        ),
    }
    let compiled_sel = expr.selection_vector(schema, columns, rows);
    let interpreted_sel = expr.selection_vector_interpreted(schema, columns, rows);
    match (&interpreted_sel, &compiled_sel) {
        (Ok(expected), Ok(actual)) => assert_eq!(
            expected, actual,
            "selection_vector differs: {context} (expr: {expr})"
        ),
        (Err(expected), Err(actual)) => assert_eq!(expected, actual),
        (expected, actual) => panic!(
            "selection outcomes disagree: {context} (expr: {expr})\n  \
             interpreted: {expected:?}\n  compiled: {actual:?}"
        ),
    }
}

#[test]
fn compiled_matches_interpreted_on_random_trees() {
    let mut rng = StdRng::seed_from_u64(0xC0DEEB57);
    for rows in [0usize, 1, 230] {
        let (plain, encoded) = both_representations(&mut rng, rows, "t");
        for case in 0..60 {
            let expr = random_expr(&mut rng, 3);
            for config in configs() {
                parallel::with_config(config, || {
                    let label = format!(
                        "case {case}, {rows} rows [threads={}, morsel_rows={}]",
                        config.threads, config.morsel_rows
                    );
                    assert_compiled_matches_interpreted(&expr, &plain, &format!("plain {label}"));
                    assert_compiled_matches_interpreted(&expr, &encoded, &format!("dict {label}"));
                    // Dict transparency at the expression level: compiled
                    // results over encoded inputs decode to the plain bytes.
                    let on_plain =
                        expr.evaluate_batch(plain.schema(), plain.columns(), plain.num_rows());
                    let on_dict = expr.evaluate_batch(
                        encoded.schema(),
                        encoded.columns(),
                        encoded.num_rows(),
                    );
                    match (&on_plain, &on_dict) {
                        (Ok(p), Ok(d)) => assert_eq!(
                            dict::decode_column(p),
                            dict::decode_column(d),
                            "dict-input result differs from plain-input result: {label} (expr: {expr})"
                        ),
                        (Err(p), Err(d)) => assert_eq!(p, d),
                        (p, d) => panic!(
                            "plain/dict outcomes disagree: {label} (expr: {expr})\n  \
                             plain: {p:?}\n  dict: {d:?}"
                        ),
                    }
                });
            }
        }
    }
}

#[test]
fn division_by_zero_and_type_errors_are_identical() {
    let mut rng = StdRng::seed_from_u64(0xC0DE0BAD);
    let (plain, encoded) = both_representations(&mut rng, 150, "t");
    let exprs = [
        // Division by zero on every valid row.
        Expr::binary(Expr::col("k"), BinaryOp::Div, Expr::lit(0)),
        Expr::binary(Expr::col("score"), BinaryOp::Mod, Expr::lit(0)),
        // Constant-folded division by zero: the error is pre-computed but
        // must still surface per evaluation.
        Expr::binary(
            Expr::col("k"),
            BinaryOp::Add,
            Expr::binary(Expr::lit(1), BinaryOp::Div, Expr::lit(0)),
        ),
        // Per-row type errors (string vs number arithmetic/order).
        Expr::binary(Expr::col("team"), BinaryOp::Add, Expr::lit(1)),
        Expr::binary(Expr::col("team"), BinaryOp::Gt, Expr::lit(3)),
        // Unknown columns, bare and nested inside lazy constructs.
        Expr::binary(Expr::col("missing"), BinaryOp::Eq, Expr::lit(1)),
        Expr::InList {
            expr: Box::new(Expr::col("team")),
            list: vec![Expr::lit("Heat"), Expr::col("missing")],
            negated: false,
        },
    ];
    for (i, expr) in exprs.iter().enumerate() {
        for config in configs() {
            parallel::with_config(config, || {
                assert_compiled_matches_interpreted(expr, &plain, &format!("error expr #{i}"));
                assert_compiled_matches_interpreted(
                    expr,
                    &encoded,
                    &format!("error expr #{i} (dict)"),
                );
            });
        }
    }
}

#[test]
fn lazy_branches_never_evaluate_their_errors() {
    let mut rng = StdRng::seed_from_u64(0xC0DE01A2);
    let (plain, encoded) = both_representations(&mut rng, 120, "t");
    let div_zero = Expr::binary(Expr::lit(1), BinaryOp::Div, Expr::lit(0));
    // The untaken CASE branch contains a constant-folded error.
    let case = Expr::Case {
        branches: vec![(Expr::lit(false), div_zero.clone())],
        otherwise: Some(Box::new(Expr::lit(2))),
    };
    // The IN list short-circuits on the first match, before the error item;
    // on the dict fast path the scan is memoized per entry.
    let in_list = Expr::InList {
        expr: Box::new(Expr::col("team")),
        list: vec![
            Expr::lit("Heat"),
            Expr::lit("Spurs"),
            Expr::lit("Bulls"),
            Expr::lit("Lakers"),
            Expr::lit("Celtics"),
            div_zero,
        ],
        negated: false,
    };
    for table in [&plain, &encoded] {
        for config in configs() {
            parallel::with_config(config, || {
                case.evaluate_batch(table.schema(), table.columns(), table.num_rows())
                    .expect("untaken CASE branch must stay unevaluated");
                in_list
                    .evaluate_batch(table.schema(), table.columns(), table.num_rows())
                    .expect("IN must short-circuit before the erroring item");
                assert_compiled_matches_interpreted(&case, table, "lazy case");
                assert_compiled_matches_interpreted(&in_list, table, "lazy in-list");
            });
        }
    }
}
