//! The concurrent serving surface (PR 5): `Caesura::submit` returning
//! `QueryHandle`s, the blocking-wrapper equivalence guarantee, bounded
//! submission queues, handle-drop detach semantics, and live trace streams.
//!
//! The central invariant pinned here: **`run(q)` is byte-identical to
//! `submit(q).wait()`** — outputs, trace event sequences, and perception
//! stats — across the full artwork and Rotowire benchmark suites. `run` *is*
//! implemented as `submit(q).wait()`, but this test drives both call forms
//! through fresh sessions so the equivalence is proven against independent
//! scheduler/cache state, not by construction alone.

use caesura::eval::{benchmark_queries, fieldwork_queries, Dataset};
use caesura::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn wait_for(mut condition: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !condition() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn run_is_byte_identical_to_submit_wait_on_all_suites() {
    for dataset in [Dataset::Artwork, Dataset::Rotowire, Dataset::Fieldwork] {
        // Two fresh sessions with identical configuration and seeds: one
        // driven through the blocking wrapper, one through the serving API.
        // Fresh sessions keep the perception caches aligned query by query,
        // so even the cache-hit counters must match exactly.
        let (blocking, serving) = match dataset {
            Dataset::Artwork => {
                let data = generate_artwork(&ArtworkConfig::small());
                (
                    Caesura::new(data.lake.clone(), Arc::new(SimulatedLlm::gpt4())),
                    Caesura::new(data.lake.clone(), Arc::new(SimulatedLlm::gpt4())),
                )
            }
            Dataset::Rotowire => {
                let data = generate_rotowire(&RotowireConfig::small());
                (
                    Caesura::new(data.lake.clone(), Arc::new(SimulatedLlm::gpt4())),
                    Caesura::new(data.lake.clone(), Arc::new(SimulatedLlm::gpt4())),
                )
            }
            Dataset::Fieldwork => {
                let data = generate_fieldwork(&FieldworkConfig::small());
                (
                    Caesura::new(data.lake.clone(), Arc::new(SimulatedLlm::gpt4())),
                    Caesura::new(data.lake.clone(), Arc::new(SimulatedLlm::gpt4())),
                )
            }
        };
        // The fieldwork suite runs on the *clean* small lake here — the
        // equivalence is about byte-identity of the two call forms, and it
        // must hold for the adversarial phrasings' error paths too.
        let suite = match dataset {
            Dataset::Fieldwork => fieldwork_queries(),
            _ => benchmark_queries(),
        };
        for query in suite.iter().filter(|q| q.dataset == dataset) {
            let via_run = blocking.run(query.text);
            let via_submit = serving.submit(query.text).wait();
            assert_eq!(
                via_run.output, via_submit.output,
                "output diverged for {}",
                query.id
            );
            // Trace equality covers the full event sequence, LLM-call and
            // prompt-token counters, and the perception accounting
            // (timings are measurement metadata, excluded by design).
            assert_eq!(
                via_run.trace, via_submit.trace,
                "trace diverged for {}",
                query.id
            );
            assert_eq!(
                via_run.trace.perception_calls(),
                via_submit.trace.perception_calls(),
                "perception stats diverged for {}",
                query.id
            );
            assert_eq!(
                via_run.logical_plan, via_submit.logical_plan,
                "plan diverged for {}",
                query.id
            );
            assert_eq!(
                via_run.decisions, via_submit.decisions,
                "decisions diverged for {}",
                query.id
            );
        }
    }
}

#[test]
fn handles_report_lifecycle_and_stats_track_completion() {
    let data = generate_artwork(&ArtworkConfig::small());
    let config = CaesuraConfig {
        session_workers: Some(2),
        session_queue: Some(4),
        ..CaesuraConfig::default()
    };
    let session = Caesura::with_config(data.lake, Arc::new(SimulatedLlm::gpt4()), config);
    let stats = session.serving_stats();
    assert_eq!((stats.workers, stats.queue_depth), (2, 4));

    let queries = [
        "How many paintings are in the museum?",
        "How many paintings depict a horse?",
        "For each movement, how many paintings are there?",
    ];
    let handles: Vec<QueryHandle> = queries.iter().map(|q| session.submit(q)).collect();
    for (handle, query) in handles.iter().zip(queries) {
        assert_eq!(handle.query(), query);
    }
    let runs: Vec<QueryRun> = handles.into_iter().map(|h| h.wait()).collect();
    assert!(runs.iter().all(|r| r.succeeded()));
    assert!(runs.iter().all(|r| r.latency() > Duration::ZERO));

    let stats = session.serving_stats();
    assert_eq!(stats.completed, queries.len());
    assert_eq!(stats.cancelled, 0);
    assert_eq!(stats.queued, 0);
    assert_eq!(stats.in_flight, 0);
}

#[test]
fn dropped_handles_detach_and_the_query_still_completes() {
    use caesura::llm::CountingLlm;
    let data = generate_artwork(&ArtworkConfig::small());
    let llm = Arc::new(CountingLlm::new(SimulatedLlm::gpt4()));
    let config = CaesuraConfig {
        session_workers: Some(1),
        ..CaesuraConfig::default()
    };
    let session = Caesura::with_config(data.lake, llm.clone(), config);

    // Submit and immediately drop the handle: the query must still run to
    // completion and free its scheduler slot.
    drop(session.submit("How many paintings are in the museum?"));
    wait_for(
        || session.serving_stats().completed == 1,
        "the detached query to complete",
    );
    let stats = session.serving_stats();
    assert_eq!(stats.queued, 0);
    assert_eq!(stats.in_flight, 0);
    assert!(
        llm.usage().calls > 0,
        "the detached query must actually have run"
    );
}

#[test]
fn a_panicking_query_reports_internal_error_and_the_worker_survives() {
    use caesura::llm::{Conversation, LlmResult};
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Panics on the first completion, then behaves normally — simulating a
    /// bug in a model client or operator.
    struct PanicOnceLlm {
        inner: SimulatedLlm,
        armed: AtomicBool,
    }
    impl LlmClient for PanicOnceLlm {
        fn complete(&self, conversation: &Conversation) -> LlmResult<String> {
            if self.armed.swap(false, Ordering::AcqRel) {
                panic!("injected model panic");
            }
            self.inner.complete(conversation)
        }
        fn name(&self) -> &str {
            "panic-once"
        }
    }

    let data = generate_artwork(&ArtworkConfig::small());
    let config = CaesuraConfig {
        // One worker: if the panic killed it, the second query could never
        // run and this test would hang instead of passing.
        session_workers: Some(1),
        ..CaesuraConfig::default()
    };
    let llm = Arc::new(PanicOnceLlm {
        inner: SimulatedLlm::gpt4(),
        armed: AtomicBool::new(true),
    });
    let session = Caesura::with_config(data.lake, llm, config);

    let poisoned = session
        .submit("How many paintings are in the museum?")
        .wait();
    match &poisoned.output {
        Err(CoreError::Internal { message }) => {
            assert!(message.contains("injected model panic"), "got: {message}")
        }
        other => panic!("expected CoreError::Internal, got {other:?}"),
    }
    // The pool survived the unwind: the next query runs on the same worker.
    let recovered = session
        .submit("How many paintings are in the museum?")
        .wait();
    assert!(
        recovered.succeeded(),
        "failed: {:?}",
        recovered.output.err()
    );
    let stats = session.serving_stats();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.in_flight, 0);
}

#[test]
fn concurrent_submissions_share_one_perception_cache() {
    // Eight copies of one multi-modal query submitted concurrently: the
    // session's shared cache must collapse repeated backend work, and every
    // result must match the serial reference.
    let data = generate_rotowire(&RotowireConfig::small());
    let reference_session = Caesura::new(data.lake.clone(), Arc::new(SimulatedLlm::gpt4()));
    let query = "For every team, what is the highest number of points they scored in a game?";
    let expected = reference_session.query(query).expect("reference failed");

    let config = CaesuraConfig {
        session_workers: Some(4),
        session_queue: Some(8),
        // Pinned (not the env default) so the test is meaningful under the
        // CAESURA_PERCEPTION_CACHE=0 CI matrix row too.
        perception_cache: Some(caesura::modal::CacheConfig::new(4096)),
        ..CaesuraConfig::default()
    };
    let session = Caesura::with_config(data.lake, Arc::new(SimulatedLlm::gpt4()), config);
    let handles: Vec<_> = (0..8).map(|_| session.submit(query)).collect();
    for handle in handles {
        let run = handle.wait();
        assert_eq!(run.output.expect("concurrent run failed"), expected);
    }
    let cache = session.perception_cache().expect("cache pinned on");
    assert!(
        cache.stats().hits > 0,
        "eight identical queries must share cached perception answers"
    );
}
