//! Concurrency stress: many threads issuing `Caesura::query` against one
//! shared catalog of `Arc`-shared tables, with the morsel-driven parallel
//! operators enabled, must produce exactly the results of serial sequential
//! execution — no data races (the columns are immutable behind `Arc`; the
//! scoped worker pools never outlive an operator call) and no
//! cross-query interference (execution configuration is pinned per thread
//! via a scoped override, not global mutation).

use caesura::engine::parallel::{self, ExecConfig};
use caesura::prelude::*;
use std::sync::Arc;
use std::thread;

const QUERIES: &[&str] = &[
    "For every team, what is the highest number of points they scored in a game?",
    "For each conference, how many teams are there?",
];

#[test]
fn concurrent_queries_over_one_shared_catalog_match_serial_results() {
    let data = generate_rotowire(&RotowireConfig::small());

    // Serial reference under the sequential configuration.
    let reference_session = Caesura::new(data.lake.clone(), Arc::new(SimulatedLlm::gpt4()));
    let expected: Vec<QueryOutput> = parallel::with_config(ExecConfig::sequential(), || {
        QUERIES
            .iter()
            .map(|q| reference_session.query(q).expect("serial query failed"))
            .collect()
    });

    // One session (and therefore one catalog of Arc-shared tables) shared by
    // every thread; small morsels + several workers per query maximise
    // interleaving inside each operator while the queries race each other.
    let config = CaesuraConfig {
        exec: Some(ExecConfig::new(4, 16)),
        ..CaesuraConfig::default()
    };
    let session = Caesura::with_config(data.lake.clone(), Arc::new(SimulatedLlm::gpt4()), config);

    // The shared lake really is shared: the session's catalog holds the same
    // Arc-backed tables as the reference session's.
    for name in data.lake.catalog().table_names() {
        assert!(Arc::ptr_eq(
            session.lake().catalog().table(&name).unwrap(),
            reference_session.lake().catalog().table(&name).unwrap(),
        ));
    }

    thread::scope(|scope| {
        for _ in 0..8 {
            let session = &session;
            let expected = &expected;
            scope.spawn(move || {
                for round in 0..3 {
                    for (query, expected_output) in QUERIES.iter().zip(expected) {
                        let output = session
                            .query(query)
                            .unwrap_or_else(|e| panic!("query '{query}' failed: {e}"));
                        assert_eq!(
                            &output, expected_output,
                            "round {round}: concurrent result diverged for '{query}'"
                        );
                    }
                }
            });
        }
    });
}

#[test]
fn concurrent_queries_through_a_shared_perception_cache_match_serial_results() {
    // The session-scoped perception answer cache is shared by every query of
    // one session — here 8 threads race the same multi-modal query through
    // it, including a tiny capacity that forces constant concurrent eviction.
    // Answers are a deterministic function of the (input, question) key, so
    // no interleaving of hits, inserts, and evictions may change a result.
    use caesura::modal::CacheConfig;

    let data = generate_rotowire(&RotowireConfig::small());
    let query = QUERIES[0];
    let reference_session = Caesura::new(data.lake.clone(), Arc::new(SimulatedLlm::gpt4()));
    let expected = parallel::with_config(ExecConfig::sequential(), || {
        reference_session.query(query).expect("serial query failed")
    });

    for capacity in [2usize, 4096] {
        let config = CaesuraConfig {
            exec: Some(ExecConfig::new(4, 16)),
            perception_cache: Some(CacheConfig::new(capacity)),
            ..CaesuraConfig::default()
        };
        let session =
            Caesura::with_config(data.lake.clone(), Arc::new(SimulatedLlm::gpt4()), config);
        thread::scope(|scope| {
            for _ in 0..8 {
                let (session, expected) = (&session, &expected);
                scope.spawn(move || {
                    for round in 0..3 {
                        let output = session
                            .query(query)
                            .unwrap_or_else(|e| panic!("query failed: {e}"));
                        assert_eq!(
                            &output, expected,
                            "capacity {capacity}, round {round}: cached result diverged"
                        );
                    }
                });
            }
        });
        let cache = session.perception_cache().expect("cache is enabled");
        assert!(
            cache.len() <= capacity,
            "capacity bound violated under concurrency: {} > {capacity}",
            cache.len()
        );
        let stats = cache.stats();
        assert!(
            stats.hits > 0,
            "24 identical queries must hit the shared cache"
        );
        if capacity == 2 {
            assert!(stats.evictions > 0, "a tiny cache must evict under load");
        }
    }
}

#[test]
fn racing_submitters_and_cancellers_at_queue_capacity_stay_consistent() {
    // The serving scheduler under adversarial load: 8 threads hammer one
    // session through `submit` (blocking backpressure at a tiny queue bound)
    // while half the submissions are cancelled immediately. Invariants:
    // no deadlock, every handle resolves, cancelled handles resolve to
    // either `CoreError::Cancelled` (with the Recovery trace event) or a
    // normal completion that raced the flag, non-cancelled handles are
    // byte-identical to the serial reference, and the counters balance.
    use caesura::core::Phase;

    let data = generate_rotowire(&RotowireConfig::small());
    let reference_session = Caesura::new(data.lake.clone(), Arc::new(SimulatedLlm::gpt4()));
    let expected: Vec<QueryOutput> = parallel::with_config(ExecConfig::sequential(), || {
        QUERIES
            .iter()
            .map(|q| reference_session.query(q).expect("serial query failed"))
            .collect()
    });

    let config = CaesuraConfig {
        exec: Some(ExecConfig::new(2, 16)),
        session_workers: Some(2),
        session_queue: Some(4),
        ..CaesuraConfig::default()
    };
    let session = Caesura::with_config(data.lake.clone(), Arc::new(SimulatedLlm::gpt4()), config);

    const SUBMITTERS: usize = 8;
    const ROUNDS: usize = 3;
    thread::scope(|scope| {
        for submitter in 0..SUBMITTERS {
            let (session, expected) = (&session, &expected);
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    for (index, (query, expected_output)) in
                        QUERIES.iter().zip(expected).enumerate()
                    {
                        let handle = session.submit(query);
                        let cancel = (submitter + round + index) % 2 == 0;
                        if cancel {
                            handle.cancel();
                        }
                        let run = handle.wait();
                        if run.cancelled() {
                            assert!(cancel, "only cancelled submissions may be cancelled");
                            assert!(
                                run.trace
                                    .events_of(Phase::Recovery)
                                    .iter()
                                    .any(|e| e.label == "cancelled"),
                                "cancelled run lacks its Recovery trace event"
                            );
                        } else {
                            let output = run
                                .output
                                .unwrap_or_else(|e| panic!("query '{query}' failed: {e}"));
                            assert_eq!(
                                &output, expected_output,
                                "round {round}: concurrent result diverged for '{query}'"
                            );
                        }
                    }
                }
            });
        }
    });

    let stats = session.serving_stats();
    assert_eq!(stats.completed, SUBMITTERS * ROUNDS * QUERIES.len());
    assert_eq!(stats.queued, 0);
    assert_eq!(stats.in_flight, 0);
    assert!(stats.cancelled <= stats.completed);
}

#[test]
fn tenant_submitters_with_typed_admission_keep_per_tenant_counters_balanced() {
    // The PR 8 control plane under the same adversarial load: 8 threads each
    // submit under their own tenant through the non-blocking `submit_with`
    // (retrying typed `QueueFull` declines at a tiny queue bound) while half
    // the submissions are cancelled immediately. Invariants: no deadlock,
    // every admitted handle resolves, every decline observed by a submitter
    // is on the books as a rejection, and the per-tenant counters balance —
    // each tenant's completed count equals its admissions, nothing remains
    // queued or in flight, and the per-tenant breakdown sums to the global
    // [`ServingStats`].
    use caesura::core::{AdmissionError, Phase, SubmitOptions};
    use std::sync::atomic::{AtomicUsize, Ordering};

    let data = generate_rotowire(&RotowireConfig::small());
    let reference_session = Caesura::new(data.lake.clone(), Arc::new(SimulatedLlm::gpt4()));
    let expected: Vec<QueryOutput> = parallel::with_config(ExecConfig::sequential(), || {
        QUERIES
            .iter()
            .map(|q| reference_session.query(q).expect("serial query failed"))
            .collect()
    });

    let config = CaesuraConfig {
        exec: Some(ExecConfig::new(2, 16)),
        session_workers: Some(2),
        session_queue: Some(2),
        ..CaesuraConfig::default()
    };
    let session = Caesura::with_config(data.lake.clone(), Arc::new(SimulatedLlm::gpt4()), config);

    const SUBMITTERS: usize = 8;
    const ROUNDS: usize = 3;
    let declines_seen = AtomicUsize::new(0);
    thread::scope(|scope| {
        for submitter in 0..SUBMITTERS {
            let (session, expected, declines_seen) = (&session, &expected, &declines_seen);
            scope.spawn(move || {
                let tenant = format!("tenant-{submitter}");
                // Half the tenants submit at batch priority: tier membership
                // must not affect any balance invariant.
                let options = if submitter % 2 == 0 {
                    SubmitOptions::for_tenant(&tenant)
                } else {
                    SubmitOptions::for_tenant(&tenant).batch()
                };
                for round in 0..ROUNDS {
                    for (index, (query, expected_output)) in
                        QUERIES.iter().zip(expected).enumerate()
                    {
                        let handle = loop {
                            match session.submit_with(query, options.clone()) {
                                Ok(handle) => break handle,
                                Err(AdmissionError::QueueFull { .. }) => {
                                    declines_seen.fetch_add(1, Ordering::Relaxed);
                                    thread::yield_now();
                                }
                                Err(other) => panic!("unexpected admission error: {other}"),
                            }
                        };
                        let cancel = (submitter + round + index) % 2 == 0;
                        if cancel {
                            handle.cancel();
                        }
                        let run = handle.wait();
                        if run.cancelled() {
                            assert!(cancel, "only cancelled submissions may be cancelled");
                            assert!(
                                run.trace
                                    .events_of(Phase::Recovery)
                                    .iter()
                                    .any(|e| e.label == "cancelled"),
                                "cancelled run lacks its Recovery trace event"
                            );
                        } else {
                            let output = run
                                .output
                                .unwrap_or_else(|e| panic!("query '{query}' failed: {e}"));
                            assert_eq!(
                                &output, expected_output,
                                "round {round}: concurrent result diverged for '{query}'"
                            );
                        }
                    }
                }
            });
        }
    });

    let stats = session.serving_stats();
    assert_eq!(stats.completed, SUBMITTERS * ROUNDS * QUERIES.len());
    assert_eq!(stats.queued, 0);
    assert_eq!(stats.in_flight, 0);
    assert_eq!(stats.rejected, declines_seen.load(Ordering::Relaxed));
    assert!(stats.cancelled <= stats.completed);

    let tenants = session.tenant_stats();
    assert_eq!(tenants.len(), SUBMITTERS, "one stats row per tenant");
    for tenant in &tenants {
        assert_eq!(
            tenant.completed,
            ROUNDS * QUERIES.len(),
            "tenant {} lost or duplicated a completion",
            tenant.tenant
        );
        assert_eq!(tenant.queued, 0);
        assert_eq!(tenant.in_flight, 0);
        assert!(tenant.cancelled <= tenant.completed);
    }
    assert_eq!(
        tenants.iter().map(|t| t.completed).sum::<usize>(),
        stats.completed
    );
    assert_eq!(
        tenants.iter().map(|t| t.cancelled).sum::<usize>(),
        stats.cancelled
    );
    assert_eq!(
        tenants.iter().map(|t| t.rejected).sum::<usize>(),
        stats.rejected
    );
}

#[test]
fn per_thread_exec_overrides_do_not_leak_across_threads() {
    // Two threads pin different configurations simultaneously; each must see
    // its own, and the spawning thread's default must be untouched.
    let before = parallel::exec_config();
    thread::scope(|scope| {
        for threads in [2usize, 8] {
            scope.spawn(move || {
                let pinned = ExecConfig::new(threads, 7);
                parallel::with_config(pinned, || {
                    for _ in 0..50 {
                        assert_eq!(parallel::exec_config(), pinned);
                        std::thread::yield_now();
                    }
                });
            });
        }
    });
    assert_eq!(parallel::exec_config(), before);
}
