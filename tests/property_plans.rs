//! Property-based tests of the plan grammar and the simulated-planner
//! plumbing: whatever the planner synthesizes must survive the render → parse
//! round trip through text, exactly as it would with a remote LLM.
//!
//! Runs over deterministic pseudo-random inputs from the in-repo `rand` shim
//! (the build environment has no network access for proptest).

use caesura::llm::{plan::split_arguments, LogicalPlan, LogicalStep, OperatorDecision};
use caesura::modal::OperatorKind;
use rand::{Rng, SeedableRng, StdRng};

const CASES: usize = 300;

fn identifier(rng: &mut StdRng) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    let mut out = String::new();
    out.push(FIRST[rng.gen_range(0..FIRST.len())] as char);
    for _ in 0..rng.gen_range(0..14usize) {
        out.push(REST[rng.gen_range(0..REST.len())] as char);
    }
    out
}

fn description(rng: &mut StdRng) -> String {
    const CHARSET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ,'";
    let len = rng.gen_range(1..60usize);
    let text: String = (0..len)
        .map(|_| CHARSET[rng.gen_range(0..CHARSET.len())] as char)
        .collect();
    let text = text.trim().to_string();
    if text.is_empty() {
        "do something".to_string()
    } else {
        text
    }
}

fn identifiers(rng: &mut StdRng, max: usize) -> Vec<String> {
    (0..rng.gen_range(0..max))
        .map(|_| identifier(rng))
        .collect()
}

fn logical_step(rng: &mut StdRng, number: usize) -> LogicalStep {
    LogicalStep::new(
        number,
        description(rng),
        identifiers(rng, 3),
        identifier(rng),
        identifiers(rng, 3),
    )
}

fn operator_kind(rng: &mut StdRng) -> OperatorKind {
    let all = OperatorKind::all();
    all[rng.gen_range(0..all.len())]
}

/// Logical plans survive the text round trip: the parsed plan has the same
/// number of steps, the same inputs/outputs/new columns.
#[test]
fn logical_plans_round_trip_through_text() {
    let mut rng = StdRng::seed_from_u64(100);
    for _ in 0..CASES {
        let steps: Vec<LogicalStep> = (0..rng.gen_range(1..6usize))
            .map(|i| logical_step(&mut rng, i + 1))
            .collect();
        let plan = LogicalPlan {
            thought: description(&mut rng),
            steps,
        };
        let text = plan.render();
        let parsed = LogicalPlan::parse(&text).unwrap();
        assert_eq!(parsed.steps.len(), plan.steps.len());
        for (parsed_step, original) in parsed.steps.iter().zip(plan.steps.iter()) {
            assert_eq!(&parsed_step.inputs, &original.inputs);
            assert_eq!(&parsed_step.output, &original.output);
            assert_eq!(&parsed_step.new_columns, &original.new_columns);
            assert!(parsed_step
                .description
                .starts_with(original.description.trim()));
        }
    }
}

/// Operator decisions survive the text round trip for every operator kind.
#[test]
fn operator_decisions_round_trip_through_text() {
    let mut rng = StdRng::seed_from_u64(101);
    const ARG_CHARSET: &[u8] =
        b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_ =<>";
    for _ in 0..CASES {
        let operator = operator_kind(&mut rng);
        let step_number = rng.gen_range(1..9usize);
        // Arguments must not contain the separator or parentheses that the
        // grammar uses.
        let arguments: Vec<String> = (0..rng.gen_range(1..5usize))
            .map(|_| {
                let len = rng.gen_range(1..30usize);
                (0..len)
                    .map(|_| ARG_CHARSET[rng.gen_range(0..ARG_CHARSET.len())] as char)
                    .collect::<String>()
                    .trim()
                    .to_string()
            })
            .filter(|a| !a.is_empty())
            .collect();
        if arguments.is_empty() {
            continue;
        }
        let decision = OperatorDecision {
            step_number,
            reasoning: description(&mut rng),
            operator,
            arguments: arguments.clone(),
        };
        let text = decision.render("some step");
        let parsed = OperatorDecision::parse(&text).unwrap();
        assert_eq!(parsed.operator, operator);
        assert_eq!(parsed.step_number, step_number);
        assert_eq!(parsed.arguments, arguments);
    }
}

/// Argument splitting is the inverse of joining with "; " for separator-free
/// arguments.
#[test]
fn argument_splitting_inverts_joining() {
    let mut rng = StdRng::seed_from_u64(102);
    const ARG_CHARSET: &[u8] =
        b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_ =<>";
    for _ in 0..CASES {
        let arguments: Vec<String> = (0..rng.gen_range(1..6usize))
            .map(|_| {
                let len = rng.gen_range(1..20usize);
                (0..len)
                    .map(|_| ARG_CHARSET[rng.gen_range(0..ARG_CHARSET.len())] as char)
                    .collect::<String>()
                    .trim()
                    .to_string()
            })
            .filter(|a| !a.is_empty())
            .collect();
        if arguments.is_empty() {
            continue;
        }
        let joined = format!("({})", arguments.join("; "));
        assert_eq!(split_arguments(&joined), arguments);
    }
}

/// Operator names round trip through the prompt vocabulary.
#[test]
fn operator_names_round_trip() {
    for operator in OperatorKind::all() {
        assert_eq!(OperatorKind::from_name(operator.name()), Some(*operator));
    }
}
