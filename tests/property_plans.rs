//! Property-based tests of the plan grammar and the simulated-planner
//! plumbing: whatever the planner synthesizes must survive the render → parse
//! round trip through text, exactly as it would with a remote LLM.
//!
//! Runs over deterministic pseudo-random inputs from the in-repo `rand` shim
//! (the build environment has no network access for proptest).

use caesura::core::{Caesura, CaesuraConfig, PlanSource, QueryRun};
use caesura::data::{generate_artwork, generate_fieldwork, ArtworkConfig, FieldworkConfig};
use caesura::llm::{plan::split_arguments, LogicalPlan, LogicalStep, OperatorDecision};
use caesura::llm::{CountingLlm, PlanCacheConfig, SimulatedLlm};
use caesura::modal::OperatorKind;
use rand::{Rng, SeedableRng, StdRng};
use std::sync::Arc;

const CASES: usize = 300;

fn identifier(rng: &mut StdRng) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    let mut out = String::new();
    out.push(FIRST[rng.gen_range(0..FIRST.len())] as char);
    for _ in 0..rng.gen_range(0..14usize) {
        out.push(REST[rng.gen_range(0..REST.len())] as char);
    }
    out
}

fn description(rng: &mut StdRng) -> String {
    const CHARSET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ,'";
    let len = rng.gen_range(1..60usize);
    let text: String = (0..len)
        .map(|_| CHARSET[rng.gen_range(0..CHARSET.len())] as char)
        .collect();
    let text = text.trim().to_string();
    if text.is_empty() {
        "do something".to_string()
    } else {
        text
    }
}

fn identifiers(rng: &mut StdRng, max: usize) -> Vec<String> {
    (0..rng.gen_range(0..max))
        .map(|_| identifier(rng))
        .collect()
}

fn logical_step(rng: &mut StdRng, number: usize) -> LogicalStep {
    LogicalStep::new(
        number,
        description(rng),
        identifiers(rng, 3),
        identifier(rng),
        identifiers(rng, 3),
    )
}

fn operator_kind(rng: &mut StdRng) -> OperatorKind {
    let all = OperatorKind::all();
    all[rng.gen_range(0..all.len())]
}

/// Logical plans survive the text round trip: the parsed plan has the same
/// number of steps, the same inputs/outputs/new columns.
#[test]
fn logical_plans_round_trip_through_text() {
    let mut rng = StdRng::seed_from_u64(100);
    for _ in 0..CASES {
        let steps: Vec<LogicalStep> = (0..rng.gen_range(1..6usize))
            .map(|i| logical_step(&mut rng, i + 1))
            .collect();
        let plan = LogicalPlan {
            thought: description(&mut rng),
            steps,
        };
        let text = plan.render();
        let parsed = LogicalPlan::parse(&text).unwrap();
        assert_eq!(parsed.steps.len(), plan.steps.len());
        for (parsed_step, original) in parsed.steps.iter().zip(plan.steps.iter()) {
            assert_eq!(&parsed_step.inputs, &original.inputs);
            assert_eq!(&parsed_step.output, &original.output);
            assert_eq!(&parsed_step.new_columns, &original.new_columns);
            assert!(parsed_step
                .description
                .starts_with(original.description.trim()));
        }
    }
}

/// Operator decisions survive the text round trip for every operator kind.
#[test]
fn operator_decisions_round_trip_through_text() {
    let mut rng = StdRng::seed_from_u64(101);
    const ARG_CHARSET: &[u8] =
        b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_ =<>";
    for _ in 0..CASES {
        let operator = operator_kind(&mut rng);
        let step_number = rng.gen_range(1..9usize);
        // Arguments must not contain the separator or parentheses that the
        // grammar uses.
        let arguments: Vec<String> = (0..rng.gen_range(1..5usize))
            .map(|_| {
                let len = rng.gen_range(1..30usize);
                (0..len)
                    .map(|_| ARG_CHARSET[rng.gen_range(0..ARG_CHARSET.len())] as char)
                    .collect::<String>()
                    .trim()
                    .to_string()
            })
            .filter(|a| !a.is_empty())
            .collect();
        if arguments.is_empty() {
            continue;
        }
        let decision = OperatorDecision {
            step_number,
            reasoning: description(&mut rng),
            operator,
            arguments: arguments.clone(),
        };
        let text = decision.render("some step");
        let parsed = OperatorDecision::parse(&text).unwrap();
        assert_eq!(parsed.operator, operator);
        assert_eq!(parsed.step_number, step_number);
        assert_eq!(parsed.arguments, arguments);
    }
}

/// Argument splitting is the inverse of joining with "; " for separator-free
/// arguments.
#[test]
fn argument_splitting_inverts_joining() {
    let mut rng = StdRng::seed_from_u64(102);
    const ARG_CHARSET: &[u8] =
        b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_ =<>";
    for _ in 0..CASES {
        let arguments: Vec<String> = (0..rng.gen_range(1..6usize))
            .map(|_| {
                let len = rng.gen_range(1..20usize);
                (0..len)
                    .map(|_| ARG_CHARSET[rng.gen_range(0..ARG_CHARSET.len())] as char)
                    .collect::<String>()
                    .trim()
                    .to_string()
            })
            .filter(|a| !a.is_empty())
            .collect();
        if arguments.is_empty() {
            continue;
        }
        let joined = format!("({})", arguments.join("; "));
        assert_eq!(split_arguments(&joined), arguments);
    }
}

/// Operator names round trip through the prompt vocabulary.
#[test]
fn operator_names_round_trip() {
    for operator in OperatorKind::all() {
        assert_eq!(OperatorKind::from_name(operator.name()), Some(*operator));
    }
}

// ---------------------------------------------------------------------------
// Plan-parsing regressions
// ---------------------------------------------------------------------------

/// A `;` inside a quoted string is argument *content*, not a separator.
#[test]
fn split_arguments_keeps_semicolons_inside_quoted_strings() {
    assert_eq!(
        split_arguments("('Filter rows'; SELECT * FROM t WHERE note = 'a; b')"),
        vec![
            "Filter rows".to_string(),
            "SELECT * FROM t WHERE note = 'a; b'".to_string(),
        ]
    );
}

/// Surrounding quotes are stripped only when the leading quote's closing
/// partner is the final character — a coincidental first/last quote pair
/// (`'yes' OR status = 'no'`) must survive intact.
#[test]
fn strip_only_removes_quotes_that_wrap_the_whole_argument() {
    assert_eq!(
        split_arguments("(SELECT * FROM t WHERE status = 'yes' OR status = 'no')"),
        vec!["SELECT * FROM t WHERE status = 'yes' OR status = 'no'".to_string()]
    );
    assert_eq!(
        split_arguments("('yes' OR status = 'no')"),
        vec!["'yes' OR status = 'no'".to_string()]
    );
    // A genuinely wrapped argument still sheds its quotes.
    assert_eq!(
        split_arguments("('num_swords')"),
        vec!["num_swords".to_string()]
    );
}

// ---------------------------------------------------------------------------
// Plan-cache equivalence: cached replay must be indistinguishable from live
// planning at the output level, across cache configurations and scheduler
// widths.
// ---------------------------------------------------------------------------

/// Three artwork-lake queries with known-good simulated plans; each round
/// repeats all of them, so every round after the first is repeat traffic.
const REPEAT_WORKLOAD: [&str; 3] = [
    "How many paintings are in the museum?",
    "List the titles of all paintings that depict a horse.",
    "Plot the number of paintings depicting Madonna and Child for each century!",
];
const ROUNDS: usize = 3;

fn cache_session(plan_cache: Option<PlanCacheConfig>, workers: usize) -> Caesura {
    // `generate_artwork` is deterministic per config, so every session built
    // here serves the identical lake.
    let data = generate_artwork(&ArtworkConfig::small());
    let config = CaesuraConfig {
        plan_cache,
        session_workers: Some(workers),
        ..CaesuraConfig::default()
    };
    Caesura::with_config(data.lake, Arc::new(SimulatedLlm::gpt4()), config)
}

fn run_workload_serially(session: &Caesura) -> Vec<QueryRun> {
    (0..ROUNDS)
        .flat_map(|_| REPEAT_WORKLOAD)
        .map(|query| session.run(query))
        .collect()
}

/// Trace events minus the plan-cache bookkeeping events ("plan-source" from
/// the probe, "plan-cache" from invalidation) — what must match between a
/// cache-off run and a cold cache-on run.
fn comparable_events(run: &QueryRun) -> Vec<(String, String)> {
    run.trace
        .events()
        .iter()
        .filter(|e| e.label != "plan-source" && e.label != "plan-cache")
        .map(|e| (e.label.clone(), e.detail.clone()))
        .collect()
}

fn output_repr(run: &QueryRun) -> String {
    format!("{:?}", run.output)
}

/// The central equivalence property: for every cache configuration —
/// disabled, capacity 2 (smaller than the 3-query working set, so entries
/// evict continuously), and the default capacity — the workload produces
/// identical outputs; and a cold cache-on run differs from the cache-off
/// baseline only by the plan-cache bookkeeping events.
#[test]
fn plan_cache_configurations_never_change_outputs() {
    let baseline = run_workload_serially(&cache_session(Some(PlanCacheConfig::off()), 1));

    // Cache off: the trace carries no plan-cache marks at all — the
    // `CAESURA_PLAN_CACHE=0` tree is indistinguishable from a build without
    // the cache. Full-trace equality (it includes the counters and the plan
    // source) across two identically configured sessions proves the off
    // path stays deterministic.
    let baseline_again = run_workload_serially(&cache_session(Some(PlanCacheConfig::off()), 1));
    for (run, again) in baseline.iter().zip(&baseline_again) {
        assert!(run.trace.plan_source().is_none());
        assert_eq!(run.trace.plan_cache_calls(), Default::default());
        assert_eq!(run.trace, again.trace);
        assert_eq!(output_repr(run), output_repr(again));
    }

    // Capacities are pinned explicitly (not `None` = read the environment),
    // so this property holds under every `CAESURA_PLAN_CACHE` CI matrix row.
    for capacity in [
        Some(PlanCacheConfig::new(2)),
        Some(PlanCacheConfig::new(PlanCacheConfig::DEFAULT_CAPACITY)),
    ] {
        let session = cache_session(capacity, 1);
        let runs = run_workload_serially(&session);
        for (index, (run, reference)) in runs.iter().zip(&baseline).enumerate() {
            assert_eq!(
                output_repr(run),
                output_repr(reference),
                "output diverged for run {index} under {capacity:?}"
            );
            assert!(run.trace.plan_source().is_some());
            match run.trace.plan_source() {
                // A live-planned run must look exactly like the baseline
                // modulo the bookkeeping events.
                Some(PlanSource::Planned) => {
                    assert_eq!(comparable_events(run), comparable_events(reference));
                    assert_eq!(run.trace.llm_calls(), reference.trace.llm_calls());
                }
                // A replayed run re-executes the same decisions without the
                // planning/mapping prompts: no LLM calls at all (discovery
                // is lexical), and the identical observations.
                Some(PlanSource::Cached) => {
                    assert_eq!(run.trace.llm_calls(), 0);
                }
                None => unreachable!(),
            }
            assert_eq!(
                run.trace.perception_calls(),
                reference.trace.perception_calls(),
                "perception accounting diverged for run {index} under {capacity:?}"
            );
        }
        // Capacity 2 cannot hold the 3-query round-robin working set: with
        // nearest-in-round LRU eviction every probe misses, so the cache
        // degrades to the live path instead of serving stale plans.
        if capacity == Some(PlanCacheConfig::new(2)) {
            assert!(runs
                .iter()
                .all(|r| r.trace.plan_source() == Some(PlanSource::Planned)));
            let stats = session.plan_cache().expect("cache is on").stats();
            assert!(stats.evictions > 0, "capacity 2 must evict");
            assert_eq!(stats.hits, 0);
        } else {
            // Default capacity: every run after round one replays.
            assert!(runs[REPEAT_WORKLOAD.len()..]
                .iter()
                .all(|r| r.trace.plan_source() == Some(PlanSource::Cached)));
        }
    }
}

/// Warm repeats make **zero** LLM calls with the cache on: the planner and
/// mapper are skipped entirely, observed at the client level by
/// [`CountingLlm`].
#[test]
fn warm_repeats_skip_planner_and_mapping_llm_calls() {
    let data = generate_artwork(&ArtworkConfig::small());
    let counting = Arc::new(CountingLlm::new(SimulatedLlm::gpt4()));
    let session = Caesura::with_config(
        data.lake,
        counting.clone(),
        CaesuraConfig {
            plan_cache: Some(PlanCacheConfig::new(1024)),
            session_workers: Some(1),
            ..CaesuraConfig::default()
        },
    );

    let cold: Vec<QueryRun> = REPEAT_WORKLOAD.iter().map(|q| session.run(q)).collect();
    assert!(cold.iter().all(|r| r.succeeded()));
    let cold_usage = counting.usage();
    assert!(cold_usage.calls > 0);

    let warm: Vec<QueryRun> = REPEAT_WORKLOAD.iter().map(|q| session.run(q)).collect();
    let warm_usage = counting.usage();
    assert_eq!(
        warm_usage.calls, cold_usage.calls,
        "warm repeats must not reach the LLM client"
    );
    for (run, cold_run) in warm.iter().zip(&cold) {
        assert!(run.succeeded());
        assert_eq!(run.trace.plan_source(), Some(PlanSource::Cached));
        assert_eq!(run.trace.plan_cache_calls().hits, 1);
        assert_eq!(run.trace.llm_calls(), 0);
        assert_eq!(output_repr(run), output_repr(cold_run));
        assert_eq!(run.logical_plan, cold_run.logical_plan);
        assert_eq!(run.decisions, cold_run.decisions);
    }
}

/// Three fieldwork-lake queries whose plans chain 3+ steps across two or
/// three modalities — the multi-step shape the plan cache must replay
/// faithfully (image chain, text chain, image + plot chain).
const FIELDWORK_REPEAT_WORKLOAD: [&str; 3] = [
    "What is the maximum number of specimens collected by each station?",
    "What is the maximum number of tents depicted in the station photos of each terrain?",
    "Plot the number of station photos depicting a penguin for each region!",
];

fn fieldwork_session(plan_cache: Option<PlanCacheConfig>, workers: usize) -> Caesura {
    let data = generate_fieldwork(&FieldworkConfig::small());
    let config = CaesuraConfig {
        plan_cache,
        session_workers: Some(workers),
        ..CaesuraConfig::default()
    };
    Caesura::with_config(data.lake, Arc::new(SimulatedLlm::gpt4()), config)
}

/// Cached-vs-live equivalence on the fieldwork lake, across the full
/// configuration matrix: plan cache {off, tiny (evicting), default} ×
/// scheduler workers {1, 4}. Every combination must produce the cache-off
/// serial baseline's outputs, and cached replays must skip the LLM.
#[test]
fn fieldwork_plan_cache_matrix_never_changes_outputs() {
    let baseline: Vec<QueryRun> = (0..ROUNDS)
        .flat_map(|_| FIELDWORK_REPEAT_WORKLOAD)
        .map(|query| fieldwork_session(Some(PlanCacheConfig::off()), 1).run(query))
        .collect();
    assert!(baseline.iter().all(|r| r.succeeded()));
    let expected: std::collections::BTreeMap<&str, String> = FIELDWORK_REPEAT_WORKLOAD
        .iter()
        .zip(&baseline)
        .map(|(q, run)| (*q, output_repr(run)))
        .collect();

    for plan_cache in [
        Some(PlanCacheConfig::off()),
        Some(PlanCacheConfig::new(2)),
        Some(PlanCacheConfig::new(PlanCacheConfig::DEFAULT_CAPACITY)),
    ] {
        for workers in [1usize, 4] {
            let session = fieldwork_session(plan_cache, workers);
            let runs: Vec<(&str, QueryRun)> = if workers == 1 {
                (0..ROUNDS)
                    .flat_map(|_| FIELDWORK_REPEAT_WORKLOAD)
                    .map(|query| (query, session.run(query)))
                    .collect()
            } else {
                let handles: Vec<_> = (0..ROUNDS)
                    .flat_map(|_| FIELDWORK_REPEAT_WORKLOAD)
                    .map(|query| (query, session.submit(query)))
                    .collect();
                handles
                    .into_iter()
                    .map(|(query, handle)| (query, handle.wait()))
                    .collect()
            };
            for (query, run) in &runs {
                assert!(run.succeeded(), "{query:?} failed under {plan_cache:?}");
                assert_eq!(
                    output_repr(run),
                    expected[query],
                    "output diverged for {query:?} under workers={workers}, {plan_cache:?}"
                );
                match run.trace.plan_source() {
                    // Replays must skip planning and mapping entirely.
                    Some(PlanSource::Cached) => assert_eq!(run.trace.llm_calls(), 0),
                    Some(PlanSource::Planned) => assert!(run.trace.llm_calls() > 0),
                    None => assert_eq!(plan_cache, Some(PlanCacheConfig::off())),
                }
            }
            // Under the serial driver the cache behaviour is deterministic:
            // default capacity replays every round after the first; the
            // 2-entry cache cannot hold the 3-query working set and stays
            // live; off never probes.
            if workers == 1 {
                let sources: Vec<_> = runs
                    .iter()
                    .map(|(_, run)| run.trace.plan_source())
                    .collect();
                if plan_cache == Some(PlanCacheConfig::off()) {
                    assert!(sources.iter().all(|s| s.is_none()));
                } else if plan_cache == Some(PlanCacheConfig::new(2)) {
                    assert!(sources.iter().all(|s| *s == Some(PlanSource::Planned)));
                } else {
                    assert!(sources[FIELDWORK_REPEAT_WORKLOAD.len()..]
                        .iter()
                        .all(|s| *s == Some(PlanSource::Cached)));
                }
            }
        }
    }
}

/// The equivalence holds under concurrent serving too: with 4 scheduler
/// workers racing on one shared cache, every query still returns the
/// serial-baseline output (hit/miss *patterns* race; answers cannot).
#[test]
fn plan_cache_outputs_are_stable_under_concurrent_serving() {
    let baseline = run_workload_serially(&cache_session(Some(PlanCacheConfig::off()), 1));
    let expected: std::collections::BTreeMap<&str, String> = REPEAT_WORKLOAD
        .iter()
        .zip(&baseline)
        .map(|(q, run)| (*q, output_repr(run)))
        .collect();

    for plan_cache in [
        Some(PlanCacheConfig::off()),
        Some(PlanCacheConfig::new(2)),
        Some(PlanCacheConfig::new(PlanCacheConfig::DEFAULT_CAPACITY)),
    ] {
        let session = cache_session(plan_cache, 4);
        let handles: Vec<_> = (0..ROUNDS)
            .flat_map(|_| REPEAT_WORKLOAD)
            .map(|query| (query, session.submit(query)))
            .collect();
        for (query, handle) in handles {
            let run = handle.wait();
            assert_eq!(
                output_repr(&run),
                expected[query],
                "output diverged for {query:?} under workers=4, {plan_cache:?}"
            );
        }
    }
}
