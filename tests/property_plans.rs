//! Property-based tests of the plan grammar and the simulated-planner
//! plumbing: whatever the planner synthesizes must survive the render → parse
//! round trip through text, exactly as it would with a remote LLM.

use caesura::llm::{plan::split_arguments, LogicalPlan, LogicalStep, OperatorDecision};
use caesura::modal::OperatorKind;
use proptest::prelude::*;

fn identifier() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,14}".prop_map(|s| s)
}

fn description() -> impl Strategy<Value = String> {
    "[A-Za-z0-9 ,']{1,60}".prop_map(|s| s.trim().replace('\n', " "))
}

fn logical_step(number: usize) -> impl Strategy<Value = LogicalStep> {
    (
        description(),
        prop::collection::vec(identifier(), 0..3),
        identifier(),
        prop::collection::vec(identifier(), 0..3),
    )
        .prop_map(move |(description, inputs, output, new_columns)| {
            // Descriptions must not be empty or start with a field keyword that
            // the grammar treats specially.
            let description = if description.is_empty() {
                "do something".to_string()
            } else {
                description
            };
            LogicalStep::new(number, description, inputs, output, new_columns)
        })
}

fn operator_kind() -> impl Strategy<Value = OperatorKind> {
    prop::sample::select(OperatorKind::all().to_vec())
}

proptest! {
    /// Logical plans survive the text round trip: the parsed plan has the same
    /// number of steps, the same inputs/outputs/new columns.
    #[test]
    fn logical_plans_round_trip_through_text(steps in prop::collection::vec(logical_step(1), 1..6), thought in description()) {
        let plan = LogicalPlan {
            thought,
            steps: steps
                .into_iter()
                .enumerate()
                .map(|(i, mut s)| {
                    s.number = i + 1;
                    s
                })
                .collect(),
        };
        let text = plan.render();
        let parsed = LogicalPlan::parse(&text).unwrap();
        prop_assert_eq!(parsed.steps.len(), plan.steps.len());
        for (parsed_step, original) in parsed.steps.iter().zip(plan.steps.iter()) {
            prop_assert_eq!(&parsed_step.inputs, &original.inputs);
            prop_assert_eq!(&parsed_step.output, &original.output);
            prop_assert_eq!(&parsed_step.new_columns, &original.new_columns);
            prop_assert!(parsed_step.description.starts_with(original.description.trim()));
        }
    }

    /// Operator decisions survive the text round trip for every operator kind.
    #[test]
    fn operator_decisions_round_trip_through_text(
        operator in operator_kind(),
        step_number in 1usize..9,
        arguments in prop::collection::vec("[A-Za-z0-9_ =<>]{1,30}", 1..5),
        reasoning in description(),
    ) {
        // Arguments must not contain the separator or parentheses that the
        // grammar uses.
        let arguments: Vec<String> = arguments
            .into_iter()
            .map(|a| a.replace([';', '(', ')'], " ").trim().to_string())
            .filter(|a| !a.is_empty())
            .collect();
        prop_assume!(!arguments.is_empty());
        let decision = OperatorDecision {
            step_number,
            reasoning,
            operator,
            arguments: arguments.clone(),
        };
        let text = decision.render("some step");
        let parsed = OperatorDecision::parse(&text).unwrap();
        prop_assert_eq!(parsed.operator, operator);
        prop_assert_eq!(parsed.step_number, step_number);
        prop_assert_eq!(parsed.arguments, arguments);
    }

    /// Argument splitting is the inverse of joining with "; " for
    /// separator-free arguments.
    #[test]
    fn argument_splitting_inverts_joining(arguments in prop::collection::vec("[A-Za-z0-9_ =<>]{1,20}", 1..6)) {
        let arguments: Vec<String> = arguments
            .into_iter()
            .map(|a| a.trim().to_string())
            .filter(|a| !a.is_empty())
            .collect();
        prop_assume!(!arguments.is_empty());
        let joined = format!("({})", arguments.join("; "));
        prop_assert_eq!(split_arguments(&joined), arguments);
    }

    /// Operator names round trip through the prompt vocabulary.
    #[test]
    fn operator_names_round_trip(operator in operator_kind()) {
        prop_assert_eq!(OperatorKind::from_name(operator.name()), Some(operator));
    }
}
