//! Cooperative cancellation semantics of the serving API (PR 5, extended by
//! PR 8 with a cancellable transport).
//!
//! Cancellation is checked between plan steps and before every LLM /
//! perception dispatch, and — since the transport accepts a cancel token —
//! a cancellation-aware client aborts *mid-dispatch* instead of serving the
//! full round trip. These tests pin:
//!
//! * a query cancelled **mid-plan** (while its planning round trip is in
//!   flight) returns `CoreError::Cancelled` promptly — asserted with a
//!   deadline, not by inspection — and records the `Phase::Recovery`
//!   "cancelled" trace event;
//! * a cancel raised while a [`GatedLlm`] holds the dispatch open returns in
//!   bounded time **without the gate ever being released** — the transport
//!   itself was interrupted, not merely the next checkpoint;
//! * a `submit_with` deadline expires mid-dispatch with the same bounded-time
//!   guarantee;
//! * a query cancelled **while still queued** never runs at all (zero LLM
//!   calls);
//! * dropping the session joins all scheduler workers (no leaked threads) —
//!   asserted by the bounded-time return of `drop` itself, via a watchdog.

use caesura::core::{AdmissionError, Phase, SubmitOptions};
use caesura::llm::GatedLlm;
use caesura::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const GATE_WAIT: Duration = Duration::from_secs(30);

fn gated_llm() -> Arc<GatedLlm<SimulatedLlm>> {
    Arc::new(GatedLlm::new(SimulatedLlm::gpt4()))
}

fn gated_artwork_session(llm: &Arc<GatedLlm<SimulatedLlm>>, queue: usize) -> Caesura {
    let data = generate_artwork(&ArtworkConfig::small());
    let config = CaesuraConfig {
        session_workers: Some(1),
        session_queue: Some(queue),
        ..CaesuraConfig::default()
    };
    Caesura::with_config(data.lake, Arc::clone(llm) as Arc<dyn LlmClient>, config)
}

#[test]
fn cancel_mid_plan_returns_cancelled_in_bounded_time_without_leaking_threads() {
    let llm = gated_llm();
    let session = gated_artwork_session(&llm, 4);

    let handle = session.submit("How many paintings are in the museum?");
    // The single worker is now blocked inside the planning round trip.
    llm.wait_entered(GATE_WAIT);
    handle.cancel();
    assert!(handle.is_cancelled());

    // The cancel token interrupts the held dispatch itself: the run must
    // come back without the gate ever being released — bounded time,
    // asserted against a generous deadline.
    let started = Instant::now();
    let run = handle.wait();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "cancellation did not take effect in bounded time"
    );
    assert!(run.cancelled(), "expected Cancelled, got {:?}", run.output);
    assert!(matches!(run.output, Err(CoreError::Cancelled)));
    // The cancellation surfaces as a Phase::Recovery trace event.
    let recovery = run.trace.events_of(Phase::Recovery);
    assert!(
        recovery
            .iter()
            .any(|e| e.label == "cancelled" && e.detail.contains("cancellation")),
        "missing the Recovery 'cancelled' event: {:?}",
        recovery
    );
    assert_eq!(session.serving_stats().cancelled, 1);
    assert_eq!(session.serving_stats().completed, 1);

    // Dropping the session joins the scheduler workers. A leaked or hung
    // worker would block forever — fail loudly instead via a watchdog.
    let dropped = Arc::new(AtomicBool::new(false));
    let watchdog_flag = Arc::clone(&dropped);
    let watchdog = std::thread::spawn(move || {
        let deadline = Instant::now() + Duration::from_secs(30);
        while !watchdog_flag.load(Ordering::Acquire) {
            assert!(
                Instant::now() < deadline,
                "session drop did not join its scheduler workers"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    });
    drop(session);
    dropped.store(true, Ordering::Release);
    watchdog.join().unwrap();
}

#[test]
fn deadline_expiry_interrupts_a_held_dispatch_in_bounded_time() {
    let llm = gated_llm();
    let session = gated_artwork_session(&llm, 4);

    // A short deadline budget: generous enough that admission and worker
    // pickup always beat it (the gate is reached within milliseconds), short
    // enough that the test stays fast once the worker is parked inside the
    // gated dispatch.
    let options = SubmitOptions::new().with_deadline(Duration::from_secs(2));
    let handle = session
        .submit_with("How many paintings are in the museum?", options)
        .expect("queue empty: admission succeeds");
    llm.wait_entered(GATE_WAIT);

    // Never release the gate: only the expiring deadline can bring the
    // dispatch back.
    let started = Instant::now();
    let run = handle.wait();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "deadline expiry did not interrupt the dispatch in bounded time"
    );
    assert!(run.cancelled(), "expected Cancelled, got {:?}", run.output);
    let recovery = run.trace.events_of(Phase::Recovery);
    assert!(
        recovery
            .iter()
            .any(|e| e.label == "cancelled" && e.detail.contains("cancellation")),
        "missing the Recovery 'cancelled' event: {:?}",
        recovery
    );
    assert_eq!(session.serving_stats().cancelled, 1);
}

#[test]
fn cancel_while_queued_never_runs_the_query() {
    let llm = gated_llm();
    let session = gated_artwork_session(&llm, 4);

    // q1 occupies the only worker (blocked at the gate); q2 sits queued.
    let first = session.submit("How many paintings are in the museum?");
    llm.wait_entered(GATE_WAIT);
    let second = session.submit("How many paintings depict a horse?");
    second.cancel();
    llm.release();

    let first = first.wait();
    assert!(first.succeeded(), "failed: {:?}", first.output.err());
    let second = second.wait();
    assert!(second.cancelled());
    // Cancelled before it started: no LLM round trip, no phases beyond the
    // cancellation event itself.
    assert_eq!(second.trace.llm_calls(), 0);
    assert!(second
        .trace
        .events_of(Phase::Recovery)
        .iter()
        .any(|e| e.label == "cancelled"));
    assert!(second.logical_plan.is_none());
    assert!(second.decisions.is_empty());

    let stats = session.serving_stats();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.cancelled, 1);
}

#[test]
fn subscribe_streams_every_trace_event_of_a_queued_query() {
    let llm = gated_llm();
    let session = gated_artwork_session(&llm, 4);

    // Hold the single worker inside q1's planning call so q2 cannot start
    // before its subscription is registered — the stream then observes q2's
    // trace events from the very first one.
    let first = session.submit("How many paintings are in the museum?");
    llm.wait_entered(GATE_WAIT);
    let second = session.submit("How many paintings depict a horse?");
    let stream = second.subscribe();
    llm.release();

    assert!(first.wait().succeeded());
    let run = second.wait();
    assert!(run.succeeded(), "failed: {:?}", run.output.err());
    // The stream disconnects on completion, so collecting terminates; the
    // live events must be exactly the final trace's event sequence.
    let streamed: Vec<_> = stream.iter().collect();
    assert_eq!(streamed, run.trace.events());
    assert!(!streamed.is_empty());
}

#[test]
fn full_submission_queues_apply_backpressure_and_try_submit_declines() {
    let llm = gated_llm();
    // One worker, one queue slot.
    let session = gated_artwork_session(&llm, 1);

    let running = session.submit("How many paintings are in the museum?");
    llm.wait_entered(GATE_WAIT);
    // The worker holds q1; this submission fills the single queue slot.
    let queued = session.submit("How many paintings depict a horse?");
    let stats = session.serving_stats();
    assert_eq!(stats.in_flight, 1);
    assert_eq!(stats.queued, 1);
    // Queue full: the non-blocking variant must decline with the typed
    // admission error rather than wait (PR 5 returned a bare `None` here,
    // indistinguishable from shutdown).
    let declined = session.try_submit("For each movement, how many paintings are there?");
    assert!(
        matches!(declined, Err(AdmissionError::QueueFull { depth: 1 })),
        "expected QueueFull, got {declined:?}"
    );
    assert_eq!(session.serving_stats().rejected, 1);

    llm.release();
    assert!(running.wait().succeeded());
    assert!(queued.wait().succeeded());
    // With the queue drained, try_submit accepts again.
    let third = session
        .try_submit("For each movement, how many paintings are there?")
        .expect("queue has space again");
    assert!(third.wait().succeeded());
    assert_eq!(session.serving_stats().completed, 3);
    // The earlier decline is still on the books; nothing else was rejected.
    assert_eq!(session.serving_stats().rejected, 1);
}

#[test]
fn cancel_after_completion_is_a_no_op() {
    let data = generate_artwork(&ArtworkConfig::small());
    let session = Caesura::new(data.lake, Arc::new(SimulatedLlm::gpt4()));
    let handle = session.submit("How many paintings are in the museum?");
    // Wait for the result via poll, then cancel: the finished run must be
    // unaffected.
    let deadline = Instant::now() + Duration::from_secs(30);
    while handle.poll().is_none() {
        assert!(Instant::now() < deadline, "query did not finish");
        std::thread::sleep(Duration::from_millis(2));
    }
    handle.cancel();
    let run = handle.wait();
    assert!(run.succeeded());
    assert_eq!(session.serving_stats().cancelled, 0);
}
