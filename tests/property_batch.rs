//! Property tests of the batched, deduplicated perception-call layer
//! (`caesura_modal::batch`): the gather → dedup → batch → scatter pipeline
//! must be **byte-identical** to the row-at-a-time reference — answers,
//! coercions, NULL placeholders, validity bitmaps, and the first error in
//! row order — for every batch size and thread count, and duplicate rows
//! must never add model calls.
//!
//! The reference implementations below are the pre-batching row-at-a-time
//! operator loops (one model call per row via `with_new_column` /
//! `filter_rows`), re-stated locally so the comparison target stays fixed
//! while the production path evolves.

use caesura::engine::{
    parallel, DataType, EngineError, ExecConfig, Schema, Table, TableBuilder, Value,
};
use caesura::llm::{CountingLlm, LlmClient, LlmResult, PerceptionLlm};
use caesura::modal::operators::{
    apply_image_select_with, apply_text_qa_with, apply_visual_qa_with, template_placeholders,
};
use caesura::modal::{
    BatchConfig, ImageObject, ImageSelectModel, ImageStore, ModalError, ModalResult, NoiseModel,
    TextQaModel, VisualQaModel,
};
use rand::{Rng, SeedableRng, StdRng};

const BATCH_SIZES: &[usize] = &[1, 7, 64];
const THREADS: &[usize] = &[1, 4];

// ---------------------------------------------------------------------------
// Row-at-a-time reference implementations (the pre-batching operator loops).
// ---------------------------------------------------------------------------

/// The operator layer's answer coercion (kept in sync with
/// `operators::coerce`; unparseable answers become NULL).
fn coerce_ref(value: Value, target: DataType) -> Value {
    match (target, &value) {
        (DataType::Int, Value::Str(s)) => s
            .trim()
            .parse::<i64>()
            .map(Value::Int)
            .unwrap_or(Value::Null),
        (DataType::Int, Value::Float(f))
            if f.fract() == 0.0
                && *f >= -9_223_372_036_854_775_808.0
                && *f < 9_223_372_036_854_775_808.0 =>
        {
            Value::Int(*f as i64)
        }
        (DataType::Int, Value::Float(_)) => Value::Null,
        (DataType::Float, Value::Int(i)) => Value::Float(*i as f64),
        (DataType::Float, Value::Str(s)) => s
            .trim()
            .parse::<f64>()
            .map(Value::Float)
            .unwrap_or(Value::Null),
        (DataType::Bool, Value::Str(s)) => {
            match s.trim().trim_end_matches('.').to_lowercase().as_str() {
                "yes" | "true" => Value::Bool(true),
                "no" | "false" => Value::Bool(false),
                _ => Value::Null,
            }
        }
        (DataType::Str, Value::Int(i)) => Value::str(i.to_string()),
        (DataType::Str, Value::Float(f)) => Value::str(f.to_string()),
        (DataType::Str, Value::Bool(b)) => Value::str(if *b { "yes" } else { "no" }),
        _ => {
            if value.is_null() || value.data_type() == target {
                value
            } else {
                Value::Null
            }
        }
    }
}

fn reference_text_qa(
    table: &Table,
    model: &TextQaModel,
    text_column: &str,
    new_column: &str,
    template: &str,
    result_type: DataType,
) -> ModalResult<Table> {
    let schema = table.schema().clone();
    let idx = schema.resolve(text_column).map_err(ModalError::Engine)?;
    table
        .with_new_column(new_column, result_type, |row_idx, row| {
            let document = match row.get(idx) {
                Value::Text(text) => text.to_string(),
                Value::Null => return Ok(Value::Null),
                other => {
                    return Err(EngineError::execution(format!(
                        "row {row_idx} of column '{text_column}' holds the {} value {} where a \
                         TEXT document was expected",
                        other.data_type().prompt_name(),
                        other.preview(40),
                    )))
                }
            };
            let mut question = template.to_string();
            for placeholder in template_placeholders(template) {
                let col = schema.resolve(&placeholder)?;
                question = question.replace(&format!("<{placeholder}>"), &row.get(col).to_string());
            }
            let answer = model
                .answer(&document, &question)
                .map_err(|e| EngineError::execution(e.to_string()))?;
            Ok(coerce_ref(answer, result_type))
        })
        .map_err(ModalError::Engine)
}

fn reference_visual_qa(
    table: &Table,
    store: &ImageStore,
    model: &VisualQaModel,
    image_column: &str,
    new_column: &str,
    question: &str,
    result_type: DataType,
) -> ModalResult<Table> {
    let schema = table.schema().clone();
    let idx = schema.resolve(image_column).map_err(ModalError::Engine)?;
    table
        .with_new_column(new_column, result_type, |row_idx, row| {
            let key = match row.get(idx) {
                Value::Image(key) => key.to_string(),
                Value::Null => return Ok(Value::Null),
                other => {
                    return Err(EngineError::execution(format!(
                        "row {row_idx} of column '{image_column}' holds the {} value {} where an \
                         IMAGE reference was expected",
                        other.data_type().prompt_name(),
                        other.preview(40),
                    )))
                }
            };
            let image = store.get(&key).ok_or_else(|| {
                EngineError::execution(format!("image '{key}' was not found in the image store"))
            })?;
            let answer = model
                .answer(image, question)
                .map_err(|e| EngineError::execution(e.to_string()))?;
            Ok(coerce_ref(answer, result_type))
        })
        .map_err(ModalError::Engine)
}

fn reference_image_select(
    table: &Table,
    store: &ImageStore,
    model: &ImageSelectModel,
    image_column: &str,
    description: &str,
) -> ModalResult<Table> {
    let schema = table.schema().clone();
    let idx = schema.resolve(image_column).map_err(ModalError::Engine)?;
    table
        .filter_rows(|row| {
            let key = match row.get(idx) {
                Value::Image(key) => key.to_string(),
                Value::Null => return Ok(false),
                other => {
                    return Err(EngineError::execution(format!(
                        "row {} of column '{image_column}' holds the {} value {} where an IMAGE \
                         reference was expected",
                        row.index(),
                        other.data_type().prompt_name(),
                        other.preview(40),
                    )))
                }
            };
            let image = store.get(&key).ok_or_else(|| {
                EngineError::execution(format!("image '{key}' was not found in the image store"))
            })?;
            Ok(model.matches(image, description))
        })
        .map_err(ModalError::Engine)
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

fn assert_tables_byte_identical(expected: &Table, actual: &Table, context: &str) {
    assert_eq!(
        expected.name(),
        actual.name(),
        "table name differs: {context}"
    );
    assert_eq!(
        expected.schema(),
        actual.schema(),
        "schema differs: {context}"
    );
    assert_eq!(
        expected.num_rows(),
        actual.num_rows(),
        "row count differs: {context}"
    );
    for (i, (a, b)) in expected.columns().iter().zip(actual.columns()).enumerate() {
        assert_eq!(
            a.as_ref(),
            b.as_ref(),
            "column {i} ('{}') differs byte-for-byte: {context}",
            expected.schema().names()[i]
        );
    }
}

/// Run `batched` under every batch-size × thread configuration and compare
/// against `reference` (tables byte-identical, errors stringly identical).
fn assert_equivalent(
    reference: ModalResult<Table>,
    label: &str,
    batched: impl Fn(&BatchConfig) -> ModalResult<Table>,
) {
    for &batch_size in BATCH_SIZES {
        for &threads in THREADS {
            let config = ExecConfig::new(threads, 4096);
            let context = format!("{label} [batch={batch_size}, threads={threads}]");
            let actual = parallel::with_config(config, || batched(&BatchConfig::new(batch_size)));
            match (&reference, &actual) {
                (Ok(expected), Ok(actual)) => {
                    assert_tables_byte_identical(expected, actual, &context)
                }
                (Err(expected), Err(actual)) => assert_eq!(
                    expected.to_string(),
                    actual.to_string(),
                    "error differs: {context}"
                ),
                (expected, actual) => panic!(
                    "outcome kind differs: {context}\n reference: {expected:?}\n batched: {actual:?}"
                ),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Duplicate-heavy synthetic data
// ---------------------------------------------------------------------------

const TEAMS: &[&str] = &["Heat", "Spurs", "Bulls", "Lakers"];

fn report(home: &str, away: &str, home_points: i64, away_points: i64) -> String {
    format!(
        "The {home} defeated the {away} {home_points}-{away_points}. The {home} scored \
         {home_points} points while the {away} scored {away_points} points."
    )
}

/// A Rotowire-style joined table: every report appears once per team, with a
/// sprinkling of NULL documents and NULL names.
fn reports_table(rng: &mut StdRng, rows: usize, with_nulls: bool) -> Table {
    let schema = Schema::from_pairs(&[("name", DataType::Str), ("report", DataType::Text)]);
    let mut builder = TableBuilder::new("joined_reports", schema);
    let mut games = Vec::new();
    for _ in 0..4 {
        let home = TEAMS[rng.gen_range(0..TEAMS.len())];
        let mut away = TEAMS[rng.gen_range(0..TEAMS.len())];
        while away == home {
            away = TEAMS[rng.gen_range(0..TEAMS.len())];
        }
        games.push(report(
            home,
            away,
            rng.gen_range(90..130),
            rng.gen_range(80..125),
        ));
    }
    for _ in 0..rows {
        let name = if with_nulls && rng.gen_range(0..10usize) == 0 {
            Value::Null
        } else {
            Value::str(TEAMS[rng.gen_range(0..TEAMS.len())])
        };
        let doc = if with_nulls && rng.gen_range(0..7usize) == 0 {
            Value::Null
        } else {
            Value::text(games[rng.gen_range(0..games.len())].clone())
        };
        builder.push_row(vec![name, doc]).unwrap();
    }
    builder.build()
}

/// A small gallery with heavy key repetition in the table.
fn gallery(rng: &mut StdRng, rows: usize, with_nulls: bool) -> (Table, ImageStore) {
    let mut store = ImageStore::new();
    let entities = ["sword", "madonna", "child", "horse", "iris"];
    for i in 0..6 {
        let mut image = ImageObject::new(format!("img/{i}.png"));
        for entity in entities {
            if rng.gen_range(0..2usize) == 1 {
                image = image.with_object(entity, rng.gen_range(1..4) as u32);
            }
        }
        store
            .insert(image.with_attribute("style", ["baroque", "gothic"][rng.gen_range(0..2usize)]));
    }
    let schema = Schema::from_pairs(&[("title", DataType::Str), ("image", DataType::Image)]);
    let mut builder = TableBuilder::new("gallery", schema);
    for r in 0..rows {
        let image = if with_nulls && rng.gen_range(0..8usize) == 0 {
            Value::Null
        } else {
            Value::image(format!("img/{}.png", rng.gen_range(0..6usize)))
        };
        builder
            .push_row(vec![Value::str(format!("painting {r}")), image])
            .unwrap();
    }
    (builder.build(), store)
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

#[test]
fn text_qa_batched_is_byte_identical_to_the_reference() {
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    for case in 0..12 {
        let rows = rng.gen_range(1..40usize);
        let table = reports_table(&mut rng, rows, true);
        for (template, dtype) in [
            ("How many points did <name> score?", DataType::Int),
            ("Did <name> win?", DataType::Str),
            ("Who won the game?", DataType::Str),
            ("Did <name> win?", DataType::Bool),
        ] {
            let model = TextQaModel::new();
            let reference = reference_text_qa(&table, &model, "report", "answer", template, dtype);
            assert_equivalent(
                reference,
                &format!("text_qa case {case} template '{template}'"),
                |batch| {
                    apply_text_qa_with(
                        &table, &model, "report", "answer", template, dtype, batch, None,
                    )
                    .1
                },
            );
        }
    }
}

#[test]
fn noisy_text_qa_stays_identical_under_dedup() {
    // The noise models key on (input, question) — exactly the dedup key — so
    // reusing one answer for duplicates must not change any output.
    let mut rng = StdRng::seed_from_u64(0x9015E);
    let table = reports_table(&mut rng, 30, true);
    let model = TextQaModel::with_noise(NoiseModel::with_rate(0.5, 7));
    let reference = reference_text_qa(
        &table,
        &model,
        "report",
        "points",
        "How many points did <name> score?",
        DataType::Int,
    );
    assert_equivalent(reference, "noisy text_qa", |batch| {
        apply_text_qa_with(
            &table,
            &model,
            "report",
            "points",
            "How many points did <name> score?",
            DataType::Int,
            batch,
            None,
        )
        .1
    });
}

#[test]
fn visual_qa_batched_is_byte_identical_to_the_reference() {
    let mut rng = StdRng::seed_from_u64(0x715);
    for case in 0..12 {
        let rows = rng.gen_range(1..50usize);
        let (table, store) = gallery(&mut rng, rows, true);
        for (question, dtype) in [
            ("How many swords are depicted?", DataType::Int),
            ("Is Madonna and Child depicted?", DataType::Str),
            ("What is the style?", DataType::Str),
            ("Is a horse depicted?", DataType::Bool),
        ] {
            let model = VisualQaModel::new();
            let reference =
                reference_visual_qa(&table, &store, &model, "image", "answer", question, dtype);
            assert_equivalent(
                reference,
                &format!("visual_qa case {case} question '{question}'"),
                |batch| {
                    apply_visual_qa_with(
                        &table, &store, &model, "image", "answer", question, dtype, batch, None,
                    )
                    .1
                },
            );
        }
    }
}

#[test]
fn image_select_batched_is_byte_identical_to_the_reference() {
    let mut rng = StdRng::seed_from_u64(0x5E1EC7);
    for case in 0..12 {
        let rows = rng.gen_range(1..50usize);
        let (table, store) = gallery(&mut rng, rows, true);
        for description in [
            "paintings depicting a sword",
            "paintings depicting Madonna and Child",
            "baroque paintings",
            "all the paintings",
        ] {
            let model = ImageSelectModel::new();
            let reference = reference_image_select(&table, &store, &model, "image", description);
            assert_equivalent(
                reference,
                &format!("image_select case {case} '{description}'"),
                |batch| {
                    apply_image_select_with(
                        &table,
                        &store,
                        &model,
                        "image",
                        description,
                        batch,
                        None,
                    )
                    .1
                },
            );
        }
    }
}

#[test]
fn unanswerable_questions_propagate_the_same_error() {
    let mut rng = StdRng::seed_from_u64(0xE4404);
    let table = reports_table(&mut rng, 12, false);
    let model = TextQaModel::new();
    let template = "Summarize the report for <name>";
    let reference = reference_text_qa(&table, &model, "report", "x", template, DataType::Str);
    assert!(reference.is_err());
    assert_equivalent(reference, "unanswerable text question", |batch| {
        apply_text_qa_with(
            &table,
            &model,
            "report",
            "x",
            template,
            DataType::Str,
            batch,
            None,
        )
        .1
    });
}

#[test]
fn missing_images_propagate_the_same_error() {
    let mut rng = StdRng::seed_from_u64(0x0D0);
    let (table, store) = gallery(&mut rng, 20, true);
    // Re-key half the store so some references dangle.
    let mut broken = ImageStore::new();
    for i in 0..3 {
        if let Some(image) = store.get(&format!("img/{i}.png")) {
            broken.insert(image.clone());
        }
    }
    let model = VisualQaModel::new();
    let question = "How many swords are depicted?";
    let reference = reference_visual_qa(
        &table,
        &broken,
        &model,
        "image",
        "n",
        question,
        DataType::Int,
    );
    assert_equivalent(reference, "missing image", |batch| {
        apply_visual_qa_with(
            &table,
            &broken,
            &model,
            "image",
            "n",
            question,
            DataType::Int,
            batch,
            None,
        )
        .1
    });

    let select_model = ImageSelectModel::new();
    let reference = reference_image_select(&table, &broken, &select_model, "image", "swords");
    assert_equivalent(reference, "missing image (select)", |batch| {
        apply_image_select_with(
            &table,
            &broken,
            &select_model,
            "image",
            "swords",
            batch,
            None,
        )
        .1
    });
}

#[test]
fn mistyped_cells_propagate_the_same_error() {
    // A TEXT column holding a stray Int (dynamic-typing escape hatch) errors
    // with the offending row index on both paths.
    let schema = Schema::from_pairs(&[("name", DataType::Str), ("report", DataType::Text)]);
    let mut builder = TableBuilder::new("t", schema);
    builder
        .push_row(vec![
            Value::str("Heat"),
            Value::text(report("Spurs", "Heat", 110, 102)),
        ])
        .unwrap();
    builder
        .push_row(vec![Value::str("Spurs"), Value::Int(3)])
        .unwrap();
    builder
        .push_row(vec![
            Value::str("Bulls"),
            Value::text(report("Bulls", "Lakers", 99, 95)),
        ])
        .unwrap();
    let table = builder.build();
    let model = TextQaModel::new();
    let reference = reference_text_qa(
        &table,
        &model,
        "report",
        "won",
        "Did <name> win?",
        DataType::Str,
    );
    let message = reference.as_ref().unwrap_err().to_string();
    assert!(message.contains("row 1"), "got: {message}");
    assert_equivalent(reference, "mistyped text cell", |batch| {
        apply_text_qa_with(
            &table,
            &model,
            "report",
            "won",
            "Did <name> win?",
            DataType::Str,
            batch,
            None,
        )
        .1
    });
}

// ---------------------------------------------------------------------------
// Dedup: duplicate rows must not add model calls (CountingLlm evidence)
// ---------------------------------------------------------------------------

/// A trivial deterministic LLM answering every perception prompt with "42".
struct ConstLlm;

impl LlmClient for ConstLlm {
    fn complete(&self, _conversation: &caesura::llm::Conversation) -> LlmResult<String> {
        Ok("42".to_string())
    }
    fn name(&self) -> &str {
        "const"
    }
}

#[test]
fn duplicate_rows_do_not_add_llm_calls() {
    // 36 rows over 4 teams × 3 reports: at most 12 unique (doc, question)
    // pairs, far fewer calls than rows.
    let mut rng = StdRng::seed_from_u64(0xDED0);
    let table = reports_table(&mut rng, 36, false);
    let backend = PerceptionLlm::new(CountingLlm::new(ConstLlm));
    let (stats, out) = apply_text_qa_with(
        &table,
        &backend,
        "report",
        "points",
        "How many points did <name> score?",
        DataType::Int,
        &BatchConfig::new(8),
        None,
    );
    let out = out.unwrap();
    let usage = backend.inner().usage();
    assert_eq!(usage.calls, stats.unique_requests);
    assert!(
        usage.calls < table.num_rows(),
        "dedup must issue strictly fewer calls ({}) than rows ({})",
        usage.calls,
        table.num_rows()
    );
    assert_eq!(stats.rows, table.num_rows());
    assert_eq!(stats.saved_calls, table.num_rows() - usage.calls);
    assert_eq!(usage.batches, stats.unique_requests.div_ceil(8));
    // Every answer came back and was coerced into the declared Int type.
    for row in 0..out.num_rows() {
        assert_eq!(out.value(row, "points").unwrap(), Value::Int(42));
    }

    // Re-running with batch size 1 issues the same number of *calls* (dedup
    // is batch-size independent), one batch each.
    let backend = PerceptionLlm::new(CountingLlm::new(ConstLlm));
    let (stats1, out1) = apply_text_qa_with(
        &table,
        &backend,
        "report",
        "points",
        "How many points did <name> score?",
        DataType::Int,
        &BatchConfig::new(1),
        None,
    );
    out1.unwrap();
    assert_eq!(stats1.unique_requests, stats.unique_requests);
    assert_eq!(backend.inner().usage().calls, stats.unique_requests);
    assert_eq!(backend.inner().usage().batches, stats.unique_requests);
}

#[test]
fn dedup_counts_with_the_simulated_models_match_distinct_inputs() {
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let (table, store) = gallery(&mut rng, 40, false);
    let model = VisualQaModel::new();
    let (stats, out) = apply_visual_qa_with(
        &table,
        &store,
        &model,
        "image",
        "n",
        "How many swords are depicted?",
        DataType::Int,
        &BatchConfig::new(16),
        None,
    );
    out.unwrap();
    // 6 distinct images at most, regardless of 40 rows.
    assert!(stats.unique_requests <= 6);
    assert_eq!(stats.rows, 40);
    assert_eq!(
        stats.saved_calls,
        stats.rows - stats.null_rows - stats.unique_requests
    );
    assert!(stats.saved_calls > 0, "expected duplicate-heavy input");
}
