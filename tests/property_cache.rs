//! Property tests of the session-scoped perception answer cache
//! (`caesura_modal::cache`): execution through a cache — of any capacity,
//! including tiny ones that force eviction — must be **byte-identical** to
//! the uncached path for every operator, across thread counts and batch
//! sizes, on cold *and* warm caches, with NULL inputs, noise models, and
//! error propagation. Error rows must never be cached.
//!
//! The reference for every comparison is the uncached dispatch
//! (`cache = None`), which `tests/property_batch.rs` already proves
//! byte-identical to the pre-batching row-at-a-time loops — so transitively
//! the cached path reproduces the original sequential semantics.

use caesura::engine::{parallel, DataType, ExecConfig, Schema, Table, TableBuilder, Value};
use caesura::modal::operators::{
    apply_image_select_with, apply_text_qa_with, apply_visual_qa_with,
};
use caesura::modal::{
    BatchConfig, ImageObject, ImageSelectModel, ImageStore, ModalResult, NoiseModel,
    PerceptionCache, TextQaModel, VisualQaModel,
};
use rand::{Rng, SeedableRng, StdRng};

const BATCH_SIZES: &[usize] = &[1, 64];
const THREADS: &[usize] = &[1, 4];

/// The cache capacities under test: `None` is the uncached reference
/// configuration, `2` forces constant eviction, `4096` never evicts.
const CACHE_CAPACITIES: &[Option<usize>] = &[None, Some(2), Some(4096)];

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

fn assert_tables_byte_identical(expected: &Table, actual: &Table, context: &str) {
    assert_eq!(expected.name(), actual.name(), "table name: {context}");
    assert_eq!(expected.schema(), actual.schema(), "schema: {context}");
    assert_eq!(expected.num_rows(), actual.num_rows(), "rows: {context}");
    for (i, (a, b)) in expected.columns().iter().zip(actual.columns()).enumerate() {
        assert_eq!(
            a.as_ref(),
            b.as_ref(),
            "column {i} ('{}') differs byte-for-byte: {context}",
            expected.schema().names()[i]
        );
    }
}

fn assert_same_outcome(reference: &ModalResult<Table>, actual: &ModalResult<Table>, context: &str) {
    match (reference, actual) {
        (Ok(expected), Ok(actual)) => assert_tables_byte_identical(expected, actual, context),
        (Err(expected), Err(actual)) => assert_eq!(
            expected.to_string(),
            actual.to_string(),
            "error differs: {context}"
        ),
        (expected, actual) => {
            panic!("outcome kind differs: {context}\n reference: {expected:?}\n cached: {actual:?}")
        }
    }
}

/// Run `operator` once uncached as the reference, then — for every cache
/// capacity × thread count × batch size — twice through one shared cache
/// (cold, then warm), asserting every run is byte-identical to the
/// reference. The warm run must be served without new backend dispatches
/// when the cache is large enough to still hold every answer.
fn assert_cache_transparent(
    label: &str,
    operator: impl Fn(&BatchConfig, Option<&PerceptionCache>) -> ModalResult<Table>,
) {
    let reference = operator(&BatchConfig::new(8), None);
    for &capacity in CACHE_CAPACITIES {
        for &threads in THREADS {
            for &batch_size in BATCH_SIZES {
                let config = ExecConfig::new(threads, 4096);
                let batch = BatchConfig::new(batch_size);
                let cache = capacity.map(PerceptionCache::with_capacity);
                let context =
                    format!("{label} [cache={capacity:?}, threads={threads}, batch={batch_size}]");
                parallel::with_config(config, || {
                    let cold = operator(&batch, cache.as_ref());
                    assert_same_outcome(&reference, &cold, &format!("{context} (cold)"));
                    let warm = operator(&batch, cache.as_ref());
                    assert_same_outcome(&reference, &warm, &format!("{context} (warm)"));
                });
                if let Some(cache) = &cache {
                    assert!(
                        cache.len() <= cache.capacity(),
                        "capacity bound violated: {context}"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Duplicate-heavy synthetic data (Rotowire-style repetition)
// ---------------------------------------------------------------------------

const TEAMS: &[&str] = &["Heat", "Spurs", "Bulls", "Lakers"];

fn report(home: &str, away: &str, home_points: i64, away_points: i64) -> String {
    format!(
        "The {home} defeated the {away} {home_points}-{away_points}. The {home} scored \
         {home_points} points while the {away} scored {away_points} points."
    )
}

fn reports_table(rng: &mut StdRng, rows: usize, with_nulls: bool) -> Table {
    let schema = Schema::from_pairs(&[("name", DataType::Str), ("report", DataType::Text)]);
    let mut builder = TableBuilder::new("joined_reports", schema);
    let mut games = Vec::new();
    for _ in 0..4 {
        let home = TEAMS[rng.gen_range(0..TEAMS.len())];
        let mut away = TEAMS[rng.gen_range(0..TEAMS.len())];
        while away == home {
            away = TEAMS[rng.gen_range(0..TEAMS.len())];
        }
        games.push(report(
            home,
            away,
            rng.gen_range(90..130),
            rng.gen_range(80..125),
        ));
    }
    for _ in 0..rows {
        let name = if with_nulls && rng.gen_range(0..10usize) == 0 {
            Value::Null
        } else {
            Value::str(TEAMS[rng.gen_range(0..TEAMS.len())])
        };
        let doc = if with_nulls && rng.gen_range(0..7usize) == 0 {
            Value::Null
        } else {
            Value::text(games[rng.gen_range(0..games.len())].clone())
        };
        builder.push_row(vec![name, doc]).unwrap();
    }
    builder.build()
}

fn gallery(rng: &mut StdRng, rows: usize, with_nulls: bool) -> (Table, ImageStore) {
    let mut store = ImageStore::new();
    let entities = ["sword", "madonna", "child", "horse", "iris"];
    for i in 0..6 {
        let mut image = ImageObject::new(format!("img/{i}.png"));
        for entity in entities {
            if rng.gen_range(0..2usize) == 1 {
                image = image.with_object(entity, rng.gen_range(1..4) as u32);
            }
        }
        store
            .insert(image.with_attribute("style", ["baroque", "gothic"][rng.gen_range(0..2usize)]));
    }
    let schema = Schema::from_pairs(&[("title", DataType::Str), ("image", DataType::Image)]);
    let mut builder = TableBuilder::new("gallery", schema);
    for r in 0..rows {
        let image = if with_nulls && rng.gen_range(0..8usize) == 0 {
            Value::Null
        } else {
            Value::image(format!("img/{}.png", rng.gen_range(0..6usize)))
        };
        builder
            .push_row(vec![Value::str(format!("painting {r}")), image])
            .unwrap();
    }
    (builder.build(), store)
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

#[test]
fn text_qa_cached_is_byte_identical_to_uncached() {
    let mut rng = StdRng::seed_from_u64(0xCAC4E);
    for case in 0..6 {
        let rows = rng.gen_range(1..40usize);
        let table = reports_table(&mut rng, rows, true);
        for (template, dtype) in [
            ("How many points did <name> score?", DataType::Int),
            ("Who won the game?", DataType::Str),
            ("Did <name> win?", DataType::Bool),
        ] {
            let model = TextQaModel::new();
            assert_cache_transparent(
                &format!("text_qa case {case} template '{template}'"),
                |batch, cache| {
                    apply_text_qa_with(
                        &table, &model, "report", "answer", template, dtype, batch, cache,
                    )
                    .1
                },
            );
        }
    }
}

#[test]
fn noisy_text_qa_stays_identical_through_the_cache() {
    // The noise models derive their corruption from the (input, question)
    // pair — the cache key — so serving a repeat from the cache returns
    // exactly the (possibly corrupted) answer the model would recompute.
    let mut rng = StdRng::seed_from_u64(0x9015E);
    let table = reports_table(&mut rng, 30, true);
    let model = TextQaModel::with_noise(NoiseModel::with_rate(0.5, 7));
    assert_cache_transparent("noisy text_qa", |batch, cache| {
        apply_text_qa_with(
            &table,
            &model,
            "report",
            "points",
            "How many points did <name> score?",
            DataType::Int,
            batch,
            cache,
        )
        .1
    });
}

#[test]
fn visual_qa_cached_is_byte_identical_to_uncached() {
    let mut rng = StdRng::seed_from_u64(0x71C5);
    for case in 0..6 {
        let rows = rng.gen_range(1..50usize);
        let (table, store) = gallery(&mut rng, rows, true);
        for (question, dtype) in [
            ("How many swords are depicted?", DataType::Int),
            ("What is the style?", DataType::Str),
            ("Is a horse depicted?", DataType::Bool),
        ] {
            let model = VisualQaModel::new();
            assert_cache_transparent(
                &format!("visual_qa case {case} question '{question}'"),
                |batch, cache| {
                    apply_visual_qa_with(
                        &table, &store, &model, "image", "answer", question, dtype, batch, cache,
                    )
                    .1
                },
            );
        }
    }
}

#[test]
fn noisy_visual_qa_stays_identical_through_the_cache() {
    let mut rng = StdRng::seed_from_u64(0xAB1E);
    let (table, store) = gallery(&mut rng, 40, true);
    let model = VisualQaModel::with_noise(NoiseModel::with_rate(0.4, 3));
    assert_cache_transparent("noisy visual_qa", |batch, cache| {
        apply_visual_qa_with(
            &table,
            &store,
            &model,
            "image",
            "n",
            "How many swords are depicted?",
            DataType::Int,
            batch,
            cache,
        )
        .1
    });
}

#[test]
fn image_select_cached_is_byte_identical_to_uncached() {
    let mut rng = StdRng::seed_from_u64(0x5E1EC7);
    for case in 0..6 {
        let rows = rng.gen_range(1..50usize);
        let (table, store) = gallery(&mut rng, rows, true);
        for description in [
            "paintings depicting a sword",
            "baroque paintings",
            "all the paintings",
        ] {
            let model = ImageSelectModel::new();
            assert_cache_transparent(
                &format!("image_select case {case} '{description}'"),
                |batch, cache| {
                    apply_image_select_with(
                        &table,
                        &store,
                        &model,
                        "image",
                        description,
                        batch,
                        cache,
                    )
                    .1
                },
            );
        }
    }
}

#[test]
fn errors_propagate_identically_and_are_never_cached() {
    // The question is unanswerable for every row: the cached path must
    // return the identical error on every (cold and warm) run, and the
    // cache must stay empty — errors are never stored.
    let mut rng = StdRng::seed_from_u64(0xE4404);
    let table = reports_table(&mut rng, 12, false);
    let model = TextQaModel::new();
    let template = "Summarize the report for <name>";
    assert_cache_transparent("unanswerable text question", |batch, cache| {
        let result = apply_text_qa_with(
            &table,
            &model,
            "report",
            "x",
            template,
            DataType::Str,
            batch,
            cache,
        )
        .1;
        if let Some(cache) = cache {
            assert!(cache.is_empty(), "failed requests must never be cached");
        }
        result
    });

    // Dangling image references error identically through the cache too.
    let mut rng = StdRng::seed_from_u64(0x0D0);
    let (table, store) = gallery(&mut rng, 20, true);
    let mut broken = ImageStore::new();
    for i in 0..3 {
        if let Some(image) = store.get(&format!("img/{i}.png")) {
            broken.insert(image.clone());
        }
    }
    let model = VisualQaModel::new();
    assert_cache_transparent("missing image", |batch, cache| {
        apply_visual_qa_with(
            &table,
            &broken,
            &model,
            "image",
            "n",
            "How many swords are depicted?",
            DataType::Int,
            batch,
            cache,
        )
        .1
    });
}

#[test]
fn tiny_caches_evict_but_large_caches_serve_warm_runs_without_dispatch() {
    let mut rng = StdRng::seed_from_u64(0xE51C7);
    let table = reports_table(&mut rng, 32, false);
    let model = TextQaModel::new();
    let template = "How many points did <name> score?";

    // Large cache: the warm run dispatches nothing.
    let cache = PerceptionCache::with_capacity(4096);
    let (cold, out) = apply_text_qa_with(
        &table,
        &model,
        "report",
        "points",
        template,
        DataType::Int,
        &BatchConfig::new(8),
        Some(&cache),
    );
    out.unwrap();
    assert!(cold.cache_misses > 0);
    assert_eq!(cold.cache_evictions, 0);
    let (warm, out) = apply_text_qa_with(
        &table,
        &model,
        "report",
        "points",
        template,
        DataType::Int,
        &BatchConfig::new(8),
        Some(&cache),
    );
    out.unwrap();
    assert_eq!(warm.cache_hits, warm.unique_requests);
    assert_eq!(warm.dispatched_requests(), 0);
    assert_eq!(warm.batches, 0);

    // Tiny cache under sequential dispatch: evictions must actually happen
    // (more unique requests than capacity), and the warm run re-dispatches
    // at least the evicted share.
    parallel::with_config(ExecConfig::new(1, 4096), || {
        let tiny = PerceptionCache::with_capacity(2);
        let (cold, out) = apply_text_qa_with(
            &table,
            &model,
            "report",
            "points",
            template,
            DataType::Int,
            &BatchConfig::new(8),
            Some(&tiny),
        );
        out.unwrap();
        assert!(cold.unique_requests > 2, "workload must overflow the cache");
        assert!(cold.cache_evictions > 0, "a tiny cache must evict");
        assert!(tiny.len() <= 2);
        let (warm, out) = apply_text_qa_with(
            &table,
            &model,
            "report",
            "points",
            template,
            DataType::Int,
            &BatchConfig::new(8),
            Some(&tiny),
        );
        out.unwrap();
        assert!(
            warm.cache_misses >= warm.unique_requests - 2,
            "evicted answers must be re-dispatched"
        );
    });
}
