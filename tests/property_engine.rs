//! Property-based tests of the relational-engine invariants.
//!
//! The build environment has no network access, so instead of `proptest`
//! these properties run over deterministic pseudo-random inputs drawn from
//! the in-repo `rand` shim: every property is checked for a few hundred
//! random cases per run, with stable seeds for reproducibility.
//!
//! Two families of properties cover the columnar refactor specifically:
//!
//! * **row ↔ columnar round trips** — materializing a columnar table to rows
//!   and rebuilding it yields a logically identical table;
//! * **operator equivalence** — every vectorized operator (filter, project,
//!   join, aggregate, sort, distinct/limit/union) produces exactly the rows a
//!   naive row-at-a-time reference implementation produces on random tables.

use caesura::engine::{
    ops, sql, BinaryOp, Catalog, DataType, Expr, Schema, Table, TableBuilder, UnaryOp, Value,
};
use rand::{Rng, SeedableRng, StdRng};
use std::cmp::Ordering;

const CASES: usize = 250;

/// A random value mirroring the old proptest strategy: NULL, bool, int,
/// float, or a short alphanumeric string.
fn random_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..5u32) {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_bool(0.5)),
        2 => Value::Int(rng.gen_range(-1_000_000i64..1_000_000)),
        3 => Value::Float(rng.gen_range(-1_000_000i64..1_000_000) as f64 / 7.0),
        _ => Value::str(random_string(rng, 12)),
    }
}

fn random_string(rng: &mut StdRng, max_len: usize) -> String {
    const CHARSET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| CHARSET[rng.gen_range(0..CHARSET.len())] as char)
        .collect()
}

fn int_table(values: &[i64]) -> Table {
    let schema = Schema::from_pairs(&[("x", DataType::Int)]);
    let mut builder = TableBuilder::new("numbers", schema);
    for v in values {
        builder.push_row(vec![Value::Int(*v)]).unwrap();
    }
    builder.build()
}

/// A random mixed-type table: an int column with NULLs, a float column, and a
/// low-cardinality string column — the shapes the operators see in practice.
fn random_table(rng: &mut StdRng, max_rows: usize) -> Table {
    let schema = Schema::from_pairs(&[
        ("k", DataType::Int),
        ("score", DataType::Float),
        ("team", DataType::Str),
    ]);
    let teams = ["Heat", "Spurs", "Bulls", "Lakers"];
    let rows = rng.gen_range(0..=max_rows);
    let mut builder = TableBuilder::new("random_t", schema);
    for _ in 0..rows {
        let k = if rng.gen_bool(0.1) {
            Value::Null
        } else {
            Value::Int(rng.gen_range(-20i64..20))
        };
        builder
            .push_row(vec![
                k,
                Value::Float(rng.gen_range(0i64..1000) as f64 / 10.0),
                Value::str(teams[rng.gen_range(0..teams.len())]),
            ])
            .unwrap();
    }
    builder.build()
}

fn assert_tables_equal_rows(actual: &Table, expected: &[Vec<Value>], context: &str) {
    assert_eq!(actual.num_rows(), expected.len(), "{context}: row count");
    for (i, (row, expected_row)) in actual.rows().zip(expected.iter()).enumerate() {
        let materialized = row.to_vec();
        assert_eq!(&materialized, expected_row, "{context}: row {i}");
    }
}

// ---------------------------------------------------------------------------
// Columnar-specific properties
// ---------------------------------------------------------------------------

/// Materializing a columnar table to rows and rebuilding it from those rows
/// yields a logically identical table (same schema, same cells).
#[test]
fn row_columnar_round_trip() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for _ in 0..CASES {
        let table = random_table(&mut rng, 40);
        let rows = table.to_rows();
        let rebuilt = Table::new(table.name(), table.schema().clone(), rows.clone()).unwrap();
        assert_eq!(rebuilt.num_rows(), table.num_rows());
        assert_eq!(rebuilt.schema(), table.schema());
        assert_tables_equal_rows(&rebuilt, &rows, "round trip");
        // And cell-level access agrees with row-level access.
        for (i, row) in rows.iter().enumerate() {
            for (c, expected) in row.iter().enumerate() {
                assert_eq!(&table.cell(i, c).unwrap(), expected);
            }
        }
    }
}

/// Vectorized filter returns exactly the rows the row-at-a-time reference
/// (scalar predicate evaluation per materialized row) selects.
#[test]
fn filter_matches_row_at_a_time_reference() {
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..CASES {
        let table = random_table(&mut rng, 40);
        let threshold = rng.gen_range(-20i64..20);
        let predicate = Expr::binary(Expr::col("k"), BinaryOp::Gt, Expr::lit(threshold));
        let expected: Vec<Vec<Value>> = table
            .to_rows()
            .into_iter()
            .filter(|row| predicate.evaluate_predicate(table.schema(), row).unwrap())
            .collect();
        let actual = ops::filter(&table, &predicate).unwrap();
        assert_tables_equal_rows(&actual, &expected, "filter");
    }
}

/// Vectorized projection (zero-copy column selects plus computed columns)
/// equals scalar per-row expression evaluation.
#[test]
fn project_matches_row_at_a_time_reference() {
    let mut rng = StdRng::seed_from_u64(2);
    let projections = [
        ops::Projection::column("team"),
        ops::Projection::new(
            Expr::binary(Expr::col("k"), BinaryOp::Mul, Expr::lit(3)),
            "k3",
        ),
        ops::Projection::new(
            Expr::binary(Expr::col("score"), BinaryOp::Add, Expr::col("score")),
            "double_score",
        ),
    ];
    for _ in 0..CASES {
        let table = random_table(&mut rng, 40);
        let expected: Vec<Vec<Value>> = table
            .to_rows()
            .iter()
            .map(|row| {
                projections
                    .iter()
                    .map(|p| p.expr.evaluate(table.schema(), row).unwrap())
                    .collect()
            })
            .collect();
        let actual = ops::project(&table, &projections).unwrap();
        assert_tables_equal_rows(&actual, &expected, "project");
    }
}

/// The vectorized hash join (typed i64/str key paths included) produces the
/// same multiset — in the same probe order — as a nested-loop reference.
#[test]
fn join_matches_nested_loop_reference() {
    let mut rng = StdRng::seed_from_u64(3);
    for case in 0..CASES {
        let left = random_table(&mut rng, 25).renamed("left_t");
        let right = random_table(&mut rng, 25).renamed("right_t");
        // Alternate between the int-key and string-key fast paths.
        let key = if case % 2 == 0 { "k" } else { "team" };
        let key_idx = left.schema().resolve(key).unwrap();
        let left_rows = left.to_rows();
        let right_rows = right.to_rows();
        let mut expected = Vec::new();
        for lrow in &left_rows {
            if lrow[key_idx].is_null() {
                continue;
            }
            for rrow in &right_rows {
                if rrow[key_idx].is_null() {
                    continue;
                }
                if lrow[key_idx].group_key() == rrow[key_idx].group_key() {
                    let mut row = lrow.clone();
                    row.extend(rrow.iter().cloned());
                    expected.push(row);
                }
            }
        }
        let actual = ops::hash_join(&left, &right, key, key, ops::JoinType::Inner).unwrap();
        assert_tables_equal_rows(&actual, &expected, "join");
    }
}

/// Vectorized grouped aggregation equals a first-seen-order row-at-a-time
/// reference for COUNT(*), COUNT, SUM, MIN, and MAX.
#[test]
fn aggregate_matches_row_at_a_time_reference() {
    let mut rng = StdRng::seed_from_u64(4);
    for case in 0..CASES {
        let table = random_table(&mut rng, 40);
        let group_col = if case % 2 == 0 { "k" } else { "team" };
        let group_idx = table.schema().resolve(group_col).unwrap();
        let score_idx = table.schema().resolve("score").unwrap();

        // Reference: first-seen-order groups over materialized rows.
        let mut order: Vec<String> = Vec::new();
        let mut groups: std::collections::HashMap<String, (Value, i64, i64, f64, Option<Value>)> =
            std::collections::HashMap::new();
        for row in table.to_rows() {
            let key = row[group_idx].group_key();
            let entry = groups.entry(key.clone()).or_insert_with(|| {
                order.push(key.clone());
                (row[group_idx].clone(), 0, 0, 0.0, None)
            });
            entry.1 += 1; // COUNT(*)
            if !row[score_idx].is_null() {
                entry.2 += 1; // COUNT(score)
                entry.3 += row[score_idx].as_float().unwrap(); // SUM
                let candidate = row[score_idx].clone();
                entry.4 = Some(match entry.4.take() {
                    None => candidate,
                    Some(best) if candidate.total_cmp(&best) == Ordering::Greater => candidate,
                    Some(best) => best,
                });
            }
        }
        let expected: Vec<Vec<Value>> = order
            .iter()
            .map(|key| {
                let (value, count_star, count, sum, max) = groups[key].clone();
                vec![
                    value,
                    Value::Int(count_star),
                    Value::Int(count),
                    if count == 0 {
                        Value::Null
                    } else {
                        Value::Float(sum)
                    },
                    max.unwrap_or(Value::Null),
                ]
            })
            .collect();

        let actual = ops::aggregate(
            &table,
            &[(Expr::col(group_col), group_col.to_string())],
            &[
                ops::AggCall::count_star("n"),
                ops::AggCall::new(ops::AggFunc::Count, Some(Expr::col("score")), "n_score"),
                ops::AggCall::new(ops::AggFunc::Sum, Some(Expr::col("score")), "total"),
                ops::AggCall::new(ops::AggFunc::Max, Some(Expr::col("score")), "best"),
            ],
        )
        .unwrap();
        assert_tables_equal_rows(&actual, &expected, "aggregate");
    }
}

/// Vectorized sort (including the typed single-int-key path) equals a stable
/// row-at-a-time sort by the same keys.
#[test]
fn sort_matches_row_at_a_time_reference() {
    let mut rng = StdRng::seed_from_u64(5);
    for case in 0..CASES {
        let table = random_table(&mut rng, 40);
        let keys = if case % 2 == 0 {
            vec![ops::SortKey::desc(Expr::col("score"))]
        } else {
            vec![
                ops::SortKey::asc(Expr::col("team")),
                ops::SortKey::desc(Expr::col("k")),
            ]
        };
        let schema = table.schema().clone();
        let mut expected = table.to_rows();
        expected.sort_by(|a, b| {
            for key in &keys {
                let ka = key.expr.evaluate(&schema, a).unwrap();
                let kb = key.expr.evaluate(&schema, b).unwrap();
                let ord = match key.order {
                    ops::SortOrder::Asc => ka.total_cmp(&kb),
                    ops::SortOrder::Desc => ka.total_cmp(&kb).reverse(),
                };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        let actual = ops::sort(&table, &keys).unwrap();
        assert_tables_equal_rows(&actual, &expected, "sort");
    }
}

/// DISTINCT, LIMIT, and UNION ALL agree with their row-level references.
#[test]
fn set_operators_match_row_at_a_time_reference() {
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..CASES {
        let table = random_table(&mut rng, 40);
        let rows = table.to_rows();

        // DISTINCT keeps the first occurrence of each rendered row key.
        let mut seen = std::collections::HashSet::new();
        let expected: Vec<Vec<Value>> = rows
            .iter()
            .filter(|row| {
                let key: Vec<String> = row.iter().map(|v| v.group_key()).collect();
                seen.insert(key.join("\u{1}"))
            })
            .cloned()
            .collect();
        let actual = ops::distinct(&table).unwrap();
        assert_tables_equal_rows(&actual, &expected, "distinct");

        // LIMIT is a prefix.
        let n = rng.gen_range(0..50usize);
        let actual = ops::limit(&table, n).unwrap();
        assert_tables_equal_rows(&actual, &rows[..n.min(rows.len())], "limit");

        // UNION ALL is concatenation.
        let other = random_table(&mut rng, 20);
        let mut expected = rows.clone();
        expected.extend(other.to_rows());
        let actual = ops::union_all(&table, &other).unwrap();
        assert_tables_equal_rows(&actual, &expected, "union_all");
    }
}

// ---------------------------------------------------------------------------
// Engine invariants carried over from the seed property suite
// ---------------------------------------------------------------------------

/// total_cmp is a total order: antisymmetric and transitive over samples.
#[test]
fn value_ordering_is_consistent() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..CASES * 4 {
        let a = random_value(&mut rng);
        let b = random_value(&mut rng);
        let c = random_value(&mut rng);
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        assert_eq!(ab, ba.reverse());
        if ab == Ordering::Less && b.total_cmp(&c) == Ordering::Less {
            assert_eq!(a.total_cmp(&c), Ordering::Less);
        }
    }
}

/// Values that compare equal under SQL semantics share a group key.
#[test]
fn group_keys_respect_equality() {
    let mut rng = StdRng::seed_from_u64(8);
    for _ in 0..CASES * 4 {
        let a = random_value(&mut rng);
        let b = random_value(&mut rng);
        if a.sql_eq(&b) == Some(true) {
            assert_eq!(a.group_key(), b.group_key());
        }
    }
}

/// Filtering never increases the row count, and a predicate plus its negation
/// partition the rows (NULL-predicate rows are dropped by both).
#[test]
fn filter_partitions_rows() {
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..CASES {
        let values: Vec<i64> = (0..rng.gen_range(0..50usize))
            .map(|_| rng.gen_range(-100i64..100))
            .collect();
        let threshold = rng.gen_range(-100i64..100);
        let table = int_table(&values);
        let predicate = Expr::binary(Expr::col("x"), BinaryOp::Gt, Expr::lit(threshold));
        let negated = Expr::Unary {
            op: UnaryOp::Not,
            operand: Box::new(predicate.clone()),
        };
        let kept = ops::filter(&table, &predicate).unwrap();
        let dropped = ops::filter(&table, &negated).unwrap();
        assert!(kept.num_rows() <= table.num_rows());
        assert_eq!(kept.num_rows() + dropped.num_rows(), table.num_rows());
    }
}

/// Sorting preserves the multiset of rows and orders them.
#[test]
fn sort_is_an_ordered_permutation() {
    let mut rng = StdRng::seed_from_u64(10);
    for _ in 0..CASES {
        let values: Vec<i64> = (0..rng.gen_range(0..60usize))
            .map(|_| rng.gen_range(-1000i64..1000))
            .collect();
        let table = int_table(&values);
        let sorted = ops::sort(&table, &[ops::SortKey::asc(Expr::col("x"))]).unwrap();
        assert_eq!(sorted.num_rows(), table.num_rows());
        let sorted_values: Vec<i64> = sorted
            .column("x")
            .unwrap()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        let mut expected = values.clone();
        expected.sort_unstable();
        assert_eq!(sorted_values, expected);
    }
}

/// LIMIT returns exactly min(n, rows) rows; DISTINCT never increases rows and
/// is idempotent.
#[test]
fn limit_and_distinct_invariants() {
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..CASES {
        let values: Vec<i64> = (0..rng.gen_range(0..60usize))
            .map(|_| rng.gen_range(-20i64..20))
            .collect();
        let n = rng.gen_range(0..80usize);
        let table = int_table(&values);
        let limited = ops::limit(&table, n).unwrap();
        assert_eq!(limited.num_rows(), n.min(table.num_rows()));
        let distinct = ops::distinct(&table).unwrap();
        assert!(distinct.num_rows() <= table.num_rows());
        let twice = ops::distinct(&distinct).unwrap();
        assert_eq!(twice.num_rows(), distinct.num_rows());
    }
}

/// A COUNT(*) aggregation over SQL equals the table's row count, and a
/// grouped count sums back to the total.
#[test]
fn sql_counts_match_row_counts() {
    let mut rng = StdRng::seed_from_u64(12);
    for _ in 0..CASES / 2 {
        let values: Vec<i64> = (0..rng.gen_range(1..60usize))
            .map(|_| rng.gen_range(0i64..5))
            .collect();
        let table = int_table(&values);
        let mut catalog = Catalog::new();
        catalog.register(table.clone());
        let total = sql::run_sql(&catalog, "SELECT COUNT(*) AS n FROM numbers").unwrap();
        assert_eq!(
            total.value(0, "n").unwrap().as_int().unwrap(),
            table.num_rows() as i64
        );
        let grouped =
            sql::run_sql(&catalog, "SELECT x, COUNT(*) AS n FROM numbers GROUP BY x").unwrap();
        let sum: i64 = grouped
            .column("n")
            .unwrap()
            .iter()
            .map(|v| v.as_int().unwrap())
            .sum();
        assert_eq!(sum, table.num_rows() as i64);
    }
}

/// Hash-join output size equals the sum over keys of the product of the
/// per-side multiplicities.
#[test]
fn join_cardinality_matches_key_multiplicities() {
    let mut rng = StdRng::seed_from_u64(13);
    for _ in 0..CASES {
        let left_keys: Vec<i64> = (0..rng.gen_range(0..30usize))
            .map(|_| rng.gen_range(0i64..6))
            .collect();
        let right_keys: Vec<i64> = (0..rng.gen_range(0..30usize))
            .map(|_| rng.gen_range(0i64..6))
            .collect();
        let left = int_table(&left_keys).renamed("left_t");
        let right = int_table(&right_keys).renamed("right_t");
        let joined = ops::hash_join(&left, &right, "x", "x", ops::JoinType::Inner).unwrap();
        let mut expected = 0usize;
        for key in 0i64..6 {
            let l = left_keys.iter().filter(|v| **v == key).count();
            let r = right_keys.iter().filter(|v| **v == key).count();
            expected += l * r;
        }
        assert_eq!(joined.num_rows(), expected);
    }
}

/// The SQL LIKE operator agrees with a simple substring check for patterns of
/// the form `%needle%` (no other wildcards).
#[test]
fn like_agrees_with_substring_for_simple_patterns() {
    let mut rng = StdRng::seed_from_u64(14);
    for _ in 0..CASES * 2 {
        let haystack = random_string(&mut rng, 16).to_lowercase();
        let needle = random_string(&mut rng, 4).to_lowercase();
        let result = caesura::engine::expr::like_match(&haystack, &format!("%{needle}%"));
        assert_eq!(result, haystack.contains(&needle));
    }
}

/// Expression evaluation of CENTURY over a year literal matches the
/// arithmetic definition.
#[test]
fn century_function_matches_definition() {
    let mut rng = StdRng::seed_from_u64(15);
    for _ in 0..CASES {
        let year = rng.gen_range(1000i64..2100);
        let schema = Schema::empty();
        let expr = Expr::Func {
            func: caesura::engine::ScalarFunc::Century,
            args: vec![Expr::lit(year)],
        };
        let result = expr.evaluate(&schema, &[]).unwrap().as_int().unwrap();
        assert_eq!(result, (year - 1) / 100 + 1);
    }
}
