//! Property-based tests of the relational-engine invariants.

use caesura::engine::{ops, sql, Catalog, DataType, Expr, Schema, Table, TableBuilder, Value};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        (-1.0e6f64..1.0e6).prop_map(Value::Float),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::str),
    ]
}

fn int_table(values: Vec<i64>) -> Table {
    let schema = Schema::from_pairs(&[("x", DataType::Int)]);
    let mut builder = TableBuilder::new("numbers", schema);
    for v in values {
        builder.push_row(vec![Value::Int(v)]).unwrap();
    }
    builder.build()
}

proptest! {
    /// total_cmp is a total order: antisymmetric and transitive over samples.
    #[test]
    fn value_ordering_is_consistent(a in value_strategy(), b in value_strategy(), c in value_strategy()) {
        use std::cmp::Ordering;
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        if ab == Ordering::Less && b.total_cmp(&c) == Ordering::Less {
            prop_assert_eq!(a.total_cmp(&c), Ordering::Less);
        }
    }

    /// Values that compare equal under SQL semantics share a group key.
    #[test]
    fn group_keys_respect_equality(a in value_strategy(), b in value_strategy()) {
        if a.sql_eq(&b) == Some(true) {
            prop_assert_eq!(a.group_key(), b.group_key());
        }
    }

    /// Filtering never increases the row count and unions of a predicate and
    /// its negation partition the (non-NULL-predicate) rows.
    #[test]
    fn filter_partitions_rows(values in prop::collection::vec(-100i64..100, 0..50), threshold in -100i64..100) {
        let table = int_table(values.clone());
        let predicate = Expr::binary(Expr::col("x"), caesura::engine::BinaryOp::Gt, Expr::lit(threshold));
        let negated = Expr::Unary {
            op: caesura::engine::UnaryOp::Not,
            operand: Box::new(predicate.clone()),
        };
        let kept = ops::filter(&table, &predicate).unwrap();
        let dropped = ops::filter(&table, &negated).unwrap();
        prop_assert!(kept.num_rows() <= table.num_rows());
        prop_assert_eq!(kept.num_rows() + dropped.num_rows(), table.num_rows());
    }

    /// Sorting preserves the multiset of rows and orders them.
    #[test]
    fn sort_is_an_ordered_permutation(values in prop::collection::vec(-1000i64..1000, 0..60)) {
        let table = int_table(values.clone());
        let sorted = ops::sort(&table, &[ops::SortKey::asc(Expr::col("x"))]).unwrap();
        prop_assert_eq!(sorted.num_rows(), table.num_rows());
        let sorted_values: Vec<i64> = sorted.column("x").unwrap().iter().map(|v| v.as_int().unwrap()).collect();
        let mut expected = values.clone();
        expected.sort_unstable();
        prop_assert_eq!(sorted_values, expected);
    }

    /// LIMIT returns exactly min(n, rows) rows; DISTINCT never increases rows
    /// and is idempotent.
    #[test]
    fn limit_and_distinct_invariants(values in prop::collection::vec(-20i64..20, 0..60), n in 0usize..80) {
        let table = int_table(values);
        let limited = ops::limit(&table, n).unwrap();
        prop_assert_eq!(limited.num_rows(), n.min(table.num_rows()));
        let distinct = ops::distinct(&table).unwrap();
        prop_assert!(distinct.num_rows() <= table.num_rows());
        let twice = ops::distinct(&distinct).unwrap();
        prop_assert_eq!(twice.num_rows(), distinct.num_rows());
    }

    /// A COUNT(*) aggregation over SQL equals the table's row count, and a
    /// grouped count sums back to the total.
    #[test]
    fn sql_counts_match_row_counts(values in prop::collection::vec(0i64..5, 1..60)) {
        let table = int_table(values);
        let mut catalog = Catalog::new();
        catalog.register(table.clone());
        let total = sql::run_sql(&catalog, "SELECT COUNT(*) AS n FROM numbers").unwrap();
        prop_assert_eq!(total.value(0, "n").unwrap().as_int().unwrap(), table.num_rows() as i64);
        let grouped = sql::run_sql(&catalog, "SELECT x, COUNT(*) AS n FROM numbers GROUP BY x").unwrap();
        let sum: i64 = grouped.column("n").unwrap().iter().map(|v| v.as_int().unwrap()).sum();
        prop_assert_eq!(sum, table.num_rows() as i64);
    }

    /// Hash-join output size equals the sum over keys of the product of the
    /// per-side multiplicities.
    #[test]
    fn join_cardinality_matches_key_multiplicities(
        left_keys in prop::collection::vec(0i64..6, 0..30),
        right_keys in prop::collection::vec(0i64..6, 0..30),
    ) {
        let left = int_table(left_keys.clone()).renamed("left_t");
        let right = int_table(right_keys.clone()).renamed("right_t");
        let joined = ops::hash_join(&left, &right, "x", "x", ops::JoinType::Inner).unwrap();
        let mut expected = 0usize;
        for key in 0i64..6 {
            let l = left_keys.iter().filter(|v| **v == key).count();
            let r = right_keys.iter().filter(|v| **v == key).count();
            expected += l * r;
        }
        prop_assert_eq!(joined.num_rows(), expected);
    }

    /// The SQL LIKE operator agrees with a simple substring check for patterns
    /// of the form `%needle%` (no other wildcards).
    #[test]
    fn like_agrees_with_substring_for_simple_patterns(haystack in "[a-z]{0,16}", needle in "[a-z]{0,4}") {
        let result = caesura::engine::expr::like_match(&haystack, &format!("%{needle}%"));
        prop_assert_eq!(result, haystack.contains(&needle));
    }

    /// Expression evaluation of CENTURY over a year literal matches the
    /// arithmetic definition.
    #[test]
    fn century_function_matches_definition(year in 1000i64..2100) {
        let schema = Schema::empty();
        let expr = Expr::Func {
            func: caesura::engine::ScalarFunc::Century,
            args: vec![Expr::lit(year)],
        };
        let result = expr.evaluate(&schema, &vec![]).unwrap().as_int().unwrap();
        prop_assert_eq!(result, (year - 1) / 100 + 1);
    }
}
