//! Integration tests of the persistent cache tier (`caesura_store`): a
//! simulated restart replays the benchmark from disk with zero planner and
//! perception-backend calls, corrupt stores recover to their valid prefix,
//! identities are isolated inside a shared store directory, concurrent opens
//! fail with a typed error, and results stay byte-identical across cache
//! configurations.
//!
//! Every test uses an explicit [`CaesuraConfig::persist`] value — its own
//! temp directory, or `None` — so the tests neither collide with each other
//! nor depend on `CAESURA_CACHE_DIR`. The one exception is
//! [`env_cache_dir_runs_cold_then_warm`], the CI matrix hook, which reads the
//! environment and skips itself when the variable is unset.

use caesura_core::{Caesura, CaesuraConfig, CoreError, PlanSource, QueryRun};
use caesura_data::{generate_artwork, generate_rotowire, ArtworkConfig, RotowireConfig};
use caesura_eval::{benchmark_queries, Dataset};
use caesura_llm::{CountingLlm, LlmClient, SimulatedLlm};
use caesura_store::{CacheStore, PersistConfig};
use std::path::PathBuf;
use std::sync::Arc;

/// A self-cleaning temp directory for one test's store.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let mut dir = std::env::temp_dir();
        dir.push(format!(
            "caesura-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn persist(&self) -> Option<PersistConfig> {
        Some(PersistConfig::new(&self.0))
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A session config with an explicit persistence setting (never the
/// environment default, so these tests are immune to `CAESURA_CACHE_DIR`).
fn config_with(persist: Option<PersistConfig>) -> CaesuraConfig {
    CaesuraConfig {
        persist,
        ..CaesuraConfig::default()
    }
}

/// Run the full 48-query benchmark through one "process": an artwork session
/// and a rotowire session opened **sequentially** against the same store
/// directory (each session holds the store's lock while it lives, so they
/// must not overlap). Returns the runs in benchmark order.
fn run_benchmark(llm: Arc<dyn LlmClient>, persist: Option<PersistConfig>) -> Vec<QueryRun> {
    let queries = benchmark_queries();
    let mut runs: Vec<Option<QueryRun>> = (0..queries.len()).map(|_| None).collect();
    for dataset in [Dataset::Artwork, Dataset::Rotowire] {
        let lake = match dataset {
            Dataset::Artwork => generate_artwork(&ArtworkConfig::small()).lake,
            Dataset::Rotowire => generate_rotowire(&RotowireConfig::small()).lake,
            Dataset::Fieldwork => unreachable!(),
        };
        let session = Caesura::with_config(lake, Arc::clone(&llm), config_with(persist.clone()));
        for (index, query) in queries.iter().enumerate() {
            if query.dataset == dataset {
                runs[index] = Some(session.run(query.text));
            }
        }
        // The session (and its store locks) must drop before the next one —
        // and before the caller reopens the directory.
    }
    runs.into_iter().map(|run| run.unwrap()).collect()
}

#[test]
fn restart_replays_the_benchmark_with_zero_planner_and_backend_calls() {
    let tmp = TempDir::new("restart");

    // Cold process: plan and execute everything live, populating the store.
    let cold_llm = Arc::new(CountingLlm::new(SimulatedLlm::gpt4()));
    let cold_runs = run_benchmark(cold_llm.clone(), tmp.persist());
    let cold_calls = cold_llm.usage().calls;
    assert!(cold_calls > 0, "the cold run must plan live");
    let inserted: Vec<bool> = cold_runs
        .iter()
        .map(|run| run.trace.plan_cache_calls().insertions == 1)
        .collect();
    let inserted_count = inserted.iter().filter(|&&b| b).count();
    assert!(
        inserted_count >= 40,
        "expected most of the 48 cold plans to be cacheable, got {inserted_count}"
    );

    // Simulated restart: a fresh "process" — new sessions, new caches, new
    // CountingLlm — over the same store directory.
    let warm_llm = Arc::new(CountingLlm::new(SimulatedLlm::gpt4()));
    let warm_runs = run_benchmark(warm_llm.clone(), tmp.persist());

    let mut warm_llm_calls = 0usize;
    for ((run, cold), was_inserted) in warm_runs.iter().zip(&cold_runs).zip(&inserted) {
        // Byte-identical answers, warm or cold.
        assert_eq!(run.output, cold.output, "output diverged: {}", run.query);
        // Zero perception-backend calls: every perception answer the warm
        // run needed — including for queries that replan live — was written
        // through cold and replays from disk.
        assert_eq!(
            run.trace.perception_calls().calls,
            0,
            "warm run dispatched to a perception backend: {}",
            run.query
        );
        if *was_inserted {
            // Zero planner/mapping calls: the validated plan replays from
            // the disk tier.
            assert_eq!(
                run.trace.llm_calls(),
                0,
                "warm run planned live despite a stored plan: {}",
                run.query
            );
            assert_eq!(run.trace.plan_source(), Some(PlanSource::Cached));
            assert_eq!(run.trace.plan_cache_calls().disk_hits, 1);
        }
        warm_llm_calls += run.trace.llm_calls();
    }
    // The only warm LLM traffic is for the few queries whose cold execution
    // was not clean enough to cache (recovery/replan runs never insert).
    assert_eq!(warm_llm.usage().calls, warm_llm_calls);
    assert!(
        warm_llm.usage().calls < cold_calls,
        "warm ({}) must be cheaper than cold ({})",
        warm_llm.usage().calls,
        cold_calls
    );
    eprintln!(
        "restart replay: cold {} LLM call(s), warm {} ({} of 48 plans cached)",
        cold_calls,
        warm_llm.usage().calls,
        inserted_count
    );
}

#[test]
fn concurrent_open_of_a_live_store_fails_with_a_typed_error() {
    let tmp = TempDir::new("locked");
    let lake = generate_artwork(&ArtworkConfig::small()).lake;
    let llm: Arc<dyn LlmClient> = Arc::new(SimulatedLlm::gpt4());

    let holder = Caesura::with_config(lake.clone(), Arc::clone(&llm), config_with(tmp.persist()));
    // A second live session over the same directory is refused, not raced.
    let contender =
        Caesura::try_with_config(lake.clone(), Arc::clone(&llm), config_with(tmp.persist()));
    match contender {
        Err(CoreError::StoreUnavailable { message }) => {
            assert!(message.contains("locked"), "unexpected message: {message}")
        }
        other => panic!(
            "expected StoreUnavailable, got {:?}",
            other.map(|_| "a session")
        ),
    }
    // Dropping the holder releases the lock; the directory opens again.
    drop(holder);
    let reopened = Caesura::try_with_config(lake, llm, config_with(tmp.persist()));
    assert!(reopened.is_ok(), "reopen failed: {:?}", reopened.err());
}

#[test]
fn corrupt_store_tail_recovers_and_the_session_proceeds() {
    let tmp = TempDir::new("corrupt");
    let queries = [
        "How many paintings are in the museum?",
        "How many paintings depict a horse?",
    ];
    let lake = generate_artwork(&ArtworkConfig::small()).lake;
    let llm: Arc<dyn LlmClient> = Arc::new(SimulatedLlm::gpt4());

    // Reference answers with no disk tier at all.
    let baseline: Vec<_> = {
        let session = Caesura::with_config(lake.clone(), Arc::clone(&llm), config_with(None));
        queries.iter().map(|q| session.run(q).output).collect()
    };

    // Populate the store, then corrupt both tiers' newest segments: truncate
    // the plans log mid-record and flip bits in the perception log's tail.
    {
        let session =
            Caesura::with_config(lake.clone(), Arc::clone(&llm), config_with(tmp.persist()));
        for query in &queries {
            assert!(session.run(query).output.is_ok());
        }
    }
    let persist = tmp.persist().unwrap();
    for (dir, flip_bits) in [
        (persist.plans_dir(), false),
        (persist.perception_dir(), true),
    ] {
        let mut segments: Vec<PathBuf> = std::fs::read_dir(&dir)
            .expect("store dir exists")
            .filter_map(|entry| entry.ok())
            .map(|entry| entry.path())
            .filter(|path| path.extension().is_some_and(|e| e == "log"))
            .collect();
        segments.sort();
        let newest = segments.last().expect("at least one segment");
        let mut bytes = std::fs::read(newest).unwrap();
        assert!(bytes.len() > 24, "segment too small to corrupt");
        if flip_bits {
            let tail = bytes.len() - 9;
            bytes[tail] ^= 0xff;
            bytes[tail + 3] ^= 0x55;
        } else {
            bytes.truncate(bytes.len() - 7);
        }
        std::fs::write(newest, bytes).unwrap();
    }

    // Reopen: the damaged tail is dropped (cold misses), nothing panics, and
    // the session still answers every query correctly.
    let session = Caesura::with_config(lake, llm, config_with(tmp.persist()));
    for (query, expected) in queries.iter().zip(&baseline) {
        let run = session.run(query);
        assert_eq!(&run.output, expected, "answer diverged after corruption");
    }
}

#[test]
fn identities_are_isolated_in_a_shared_store() {
    let tmp = TempDir::new("identity");
    let lake = generate_artwork(&ArtworkConfig::small()).lake;
    let query = "How many paintings are in the museum?";

    // Session A (gpt-4 identity) populates the store.
    {
        let session = Caesura::with_config(
            lake.clone(),
            Arc::new(SimulatedLlm::gpt4()),
            config_with(tmp.persist()),
        );
        let run = session.run(query);
        assert!(run.output.is_ok());
        assert_eq!(run.trace.plan_cache_calls().insertions, 1);
    }

    // A different model identity sharing the directory never sees A's plans.
    {
        let session = Caesura::with_config(
            lake.clone(),
            Arc::new(SimulatedLlm::chatgpt35()),
            config_with(tmp.persist()),
        );
        let run = session.run(query);
        assert_eq!(
            run.trace.plan_source(),
            Some(PlanSource::Planned),
            "a chatgpt-3.5 session replayed a gpt-4 plan"
        );
        assert_eq!(run.trace.plan_cache_calls().disk_hits, 0);
    }

    // A different prompt configuration under the same model is isolated too.
    {
        let config = CaesuraConfig {
            example_values: 5,
            ..config_with(tmp.persist())
        };
        let session = Caesura::with_config(lake.clone(), Arc::new(SimulatedLlm::gpt4()), config);
        let run = session.run(query);
        assert_eq!(run.trace.plan_source(), Some(PlanSource::Planned));
    }

    // The original identity still warm-hits from disk after all of that.
    {
        let session = Caesura::with_config(
            lake,
            Arc::new(SimulatedLlm::gpt4()),
            config_with(tmp.persist()),
        );
        let run = session.run(query);
        assert_eq!(run.trace.plan_source(), Some(PlanSource::Cached));
        assert_eq!(run.trace.plan_cache_calls().disk_hits, 1);
    }
}

#[test]
fn results_are_byte_identical_across_cache_configurations_and_workers() {
    let queries = [
        "How many paintings are in the museum?",
        "How many paintings depict a horse?",
        "Plot the number of paintings depicting Madonna and Child for each century!",
    ];
    let lake = generate_artwork(&ArtworkConfig::small()).lake;
    let llm: Arc<dyn LlmClient> = Arc::new(SimulatedLlm::gpt4());

    let mut reference: Option<Vec<_>> = None;
    for workers in [1usize, 4] {
        for tier in ["off", "mem", "mem+disk"] {
            let tmp = TempDir::new(&format!("matrix-{workers}-{tier}"));
            let config = CaesuraConfig {
                session_workers: Some(workers),
                perception_cache: match tier {
                    "off" => Some(caesura_modal::CacheConfig::off()),
                    _ => None,
                },
                plan_cache: match tier {
                    "off" => Some(caesura_llm::PlanCacheConfig::off()),
                    _ => None,
                },
                ..config_with(match tier {
                    "mem+disk" => tmp.persist(),
                    _ => None,
                })
            };
            let session = Caesura::with_config(lake.clone(), Arc::clone(&llm), config);
            let handles: Vec<_> = queries.iter().map(|q| session.submit(q)).collect();
            let outputs: Vec<_> = handles.into_iter().map(|h| h.wait().output).collect();
            match &reference {
                None => reference = Some(outputs),
                Some(reference) => {
                    for ((query, output), expected) in queries.iter().zip(&outputs).zip(reference) {
                        assert_eq!(
                            output, expected,
                            "output diverged (workers={workers}, tier={tier}): {query}"
                        );
                    }
                }
            }
        }
    }
}

/// The CI persistent-tier matrix hook: a no-op unless `CAESURA_CACHE_DIR` is
/// exported. The CI step runs this test binary twice against one temp
/// directory; this test detects which leg it is on by probing the store —
/// empty means cold (live planning populates it), non-empty means warm (the
/// whole workload must replay with zero planner and zero backend calls).
#[test]
fn env_cache_dir_runs_cold_then_warm() {
    let Some(persist) = PersistConfig::from_env() else {
        eprintln!("CAESURA_CACHE_DIR unset; skipping the env matrix leg");
        return;
    };
    // Probe-then-drop: the store lock must be released before the sessions
    // inside `run_benchmark` reopen the directory.
    let warm = {
        let store = CacheStore::open(persist.plans_dir()).expect("open the plans store");
        !store.is_empty()
    };
    let llm = Arc::new(CountingLlm::new(SimulatedLlm::gpt4()));
    let runs = run_benchmark(llm.clone(), Some(persist));
    assert!(runs.iter().all(|run| run.trace.plan_source().is_some()));
    if warm {
        for run in &runs {
            assert_eq!(
                run.trace.perception_calls().calls,
                0,
                "warm leg dispatched to a perception backend: {}",
                run.query
            );
            if run.trace.plan_source() == Some(PlanSource::Cached) {
                assert_eq!(
                    run.trace.llm_calls(),
                    0,
                    "warm leg planned live: {}",
                    run.query
                );
            }
        }
        let cached = runs
            .iter()
            .filter(|r| r.trace.plan_source() == Some(PlanSource::Cached))
            .count();
        assert!(cached >= 40, "warm leg only replayed {cached} of 48 plans");
        eprintln!(
            "warm leg: {cached}/48 plans from disk, {} LLM call(s)",
            llm.usage().calls
        );
    } else {
        assert!(llm.usage().calls > 0, "cold leg must plan live");
        eprintln!(
            "cold leg: {} LLM call(s), store populated",
            llm.usage().calls
        );
    }
}
