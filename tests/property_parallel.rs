//! Parallel-vs-sequential equivalence properties for the morsel-driven
//! execution subsystem (`caesura_engine::parallel`).
//!
//! Every relational operator is run twice over the same inputs: once under
//! `ExecConfig::sequential()` (the reference — byte-for-byte the original
//! single-threaded code paths) and once per parallel configuration drawn
//! from `threads ∈ {2, 4, 8} × morsel_rows ∈ {1, 7, 1024}`. The outputs
//! must be **byte-identical**: the comparison uses the derived
//! representation-level equality of [`Column`], which includes the validity
//! bitmap words, NULL placeholder values, and the storage variant — not just
//! the logical cell values. Errors must be identical too (the parallel path
//! reports the error of the earliest morsel, which is the error of the first
//! failing row, exactly like a sequential scan).
//!
//! Floating-point test data is restricted to dyadic rationals (multiples of
//! 1/4 with small magnitude) so that SUM/AVG partial sums are exact and the
//! morsel-merge addition order cannot produce last-ulp differences — the one
//! place where parallel floating-point aggregation is otherwise only
//! deterministic, not bitwise equal to the row-order fold (see the
//! `parallel` module docs).
//!
//! A second family of tests pins determinism: repeated parallel runs of sort
//! and aggregation produce identical bytes regardless of worker
//! interleaving, stability and first-seen group order included.

use caesura::engine::parallel::{self, ExecConfig};
use caesura::engine::{
    ops, BinaryOp, DataType, EngineError, Expr, ScalarFunc, Schema, Table, TableBuilder, Value,
};
use rand::{Rng, SeedableRng, StdRng};

const THREADS: &[usize] = &[2, 4, 8];
const MORSEL_ROWS: &[usize] = &[1, 7, 1024];

fn parallel_configs() -> Vec<ExecConfig> {
    let mut configs = Vec::new();
    for &threads in THREADS {
        for &morsel_rows in MORSEL_ROWS {
            configs.push(ExecConfig::new(threads, morsel_rows));
        }
    }
    configs
}

/// Byte-level table equality: schema, row count, and the exact storage
/// representation of every column (validity bitmaps and NULL placeholders
/// included, via `Column`'s derived `PartialEq`).
fn assert_tables_byte_identical(expected: &Table, actual: &Table, context: &str) {
    assert_eq!(
        expected.name(),
        actual.name(),
        "table name differs: {context}"
    );
    assert_eq!(
        expected.schema(),
        actual.schema(),
        "schema differs: {context}"
    );
    assert_eq!(
        expected.num_rows(),
        actual.num_rows(),
        "row count differs: {context}"
    );
    for (i, (a, b)) in expected.columns().iter().zip(actual.columns()).enumerate() {
        assert_eq!(
            a.as_ref(),
            b.as_ref(),
            "column {i} ('{}') differs byte-for-byte: {context}",
            expected.schema().names()[i]
        );
    }
}

/// Run an operator under the sequential reference configuration and under
/// every parallel configuration, asserting identical outputs (or identical
/// errors).
fn check_operator(context: &str, run: impl Fn() -> Result<Table, EngineError>) {
    let reference = parallel::with_config(ExecConfig::sequential(), &run);
    for config in parallel_configs() {
        let label = format!(
            "{context} [threads={}, morsel_rows={}]",
            config.threads, config.morsel_rows
        );
        let result = parallel::with_config(config, &run);
        match (&reference, &result) {
            (Ok(expected), Ok(actual)) => assert_tables_byte_identical(expected, actual, &label),
            (Err(expected), Err(actual)) => {
                assert_eq!(expected, actual, "errors differ: {label}")
            }
            (expected, actual) => panic!(
                "sequential and parallel outcomes disagree: {label}\n  sequential: {expected:?}\n  parallel: {actual:?}"
            ),
        }
    }
}

/// A deterministic pseudo-random table with the shapes the operators see in
/// practice: an int key with NULLs, an exactly-representable float score
/// with NULLs, a low-cardinality team string, and a free-form label string.
fn random_table(rng: &mut StdRng, rows: usize) -> Table {
    let schema = Schema::from_pairs(&[
        ("k", DataType::Int),
        ("score", DataType::Float),
        ("team", DataType::Str),
        ("label", DataType::Str),
    ]);
    let teams = ["Heat", "Spurs", "Bulls", "Lakers", "Celtics"];
    let mut builder = TableBuilder::new("random_t", schema);
    for i in 0..rows {
        let k = if rng.gen_bool(0.12) {
            Value::Null
        } else {
            Value::Int(rng.gen_range(-25i64..25))
        };
        let score = if rng.gen_bool(0.08) {
            Value::Null
        } else {
            // Dyadic rationals: partial sums are exact, so parallel SUM/AVG
            // merges are bitwise equal to the sequential fold.
            Value::Float(rng.gen_range(-2000i64..2000) as f64 / 4.0)
        };
        builder
            .push_row(vec![
                k,
                score,
                Value::str(teams[rng.gen_range(0..teams.len())]),
                Value::str(format!("row-{}", i % 13)),
            ])
            .unwrap();
    }
    builder.build()
}

/// A side table keyed by `team` for join coverage (one team is missing, so
/// left joins exercise NULL padding).
fn team_table() -> Table {
    let schema = Schema::from_pairs(&[("team", DataType::Str), ("conference", DataType::Str)]);
    let mut builder = TableBuilder::new("teams", schema);
    for (team, conference) in [
        ("Heat", "Eastern"),
        ("Spurs", "Western"),
        ("Bulls", "Eastern"),
        ("Lakers", "Western"),
        // "Celtics" intentionally absent.
    ] {
        builder.push_values([team, conference]).unwrap();
    }
    builder.build()
}

/// An int-keyed right side with duplicate keys and NULLs for the typed i64
/// join path.
fn int_keyed_table(rng: &mut StdRng, rows: usize) -> Table {
    let schema = Schema::from_pairs(&[("k", DataType::Int), ("payload", DataType::Str)]);
    let mut builder = TableBuilder::new("keyed", schema);
    for i in 0..rows {
        let k = if rng.gen_bool(0.1) {
            Value::Null
        } else {
            Value::Int(rng.gen_range(-25i64..25))
        };
        builder
            .push_row(vec![k, Value::str(format!("p{i}"))])
            .unwrap();
    }
    builder.build()
}

#[test]
fn filter_parallel_matches_sequential() {
    let mut rng = StdRng::seed_from_u64(0xF117E5);
    let predicates = [
        Expr::binary(Expr::col("k"), BinaryOp::Gt, Expr::lit(0)),
        Expr::binary(Expr::col("team"), BinaryOp::Eq, Expr::lit("Heat")),
        Expr::binary(Expr::col("score"), BinaryOp::LtEq, Expr::lit(120.5)),
        // Three-valued logic over two nullable columns.
        Expr::binary(Expr::col("k"), BinaryOp::Lt, Expr::lit(10)).and(Expr::binary(
            Expr::col("score"),
            BinaryOp::Gt,
            Expr::lit(-100),
        )),
        Expr::binary(Expr::col("label"), BinaryOp::Like, Expr::lit("row-1%")),
        // Everything survives → the zero-copy shared-columns shortcut.
        Expr::lit(true),
        // Nothing survives.
        Expr::lit(false),
    ];
    for rows in [0usize, 1, 9, 250, 1500] {
        let table = random_table(&mut rng, rows);
        for (i, predicate) in predicates.iter().enumerate() {
            check_operator(&format!("filter #{i} over {rows} rows"), || {
                ops::filter(&table, predicate)
            });
        }
    }
}

#[test]
fn filter_errors_are_identical_in_parallel() {
    let mut rng = StdRng::seed_from_u64(0xE5507);
    let table = random_table(&mut rng, 700);
    // Comparing a string column to a number is a per-row type error; the
    // parallel path must report exactly the sequential error.
    let bad = Expr::binary(Expr::col("team"), BinaryOp::Gt, Expr::lit(3));
    check_operator("type-error predicate", || ops::filter(&table, &bad));
    let unknown = Expr::binary(Expr::col("missing"), BinaryOp::Eq, Expr::lit(1));
    check_operator("unknown-column predicate", || ops::filter(&table, &unknown));
}

#[test]
fn project_parallel_matches_sequential() {
    let mut rng = StdRng::seed_from_u64(0x9801EC7);
    for rows in [0usize, 13, 400, 1300] {
        let table = random_table(&mut rng, rows);
        let projections = [
            ops::Projection::column("team"),
            ops::Projection::new(
                Expr::binary(Expr::col("k"), BinaryOp::Mul, Expr::lit(3)),
                "k3",
            ),
            ops::Projection::new(
                Expr::Func {
                    func: ScalarFunc::Upper,
                    args: vec![Expr::col("team")],
                },
                "team_uc",
            ),
            ops::Projection::new(
                Expr::Case {
                    branches: vec![(
                        Expr::binary(Expr::col("k"), BinaryOp::Gt, Expr::lit(0)),
                        Expr::lit("pos"),
                    )],
                    otherwise: Some(Box::new(Expr::lit("non-pos"))),
                },
                "sign",
            ),
        ];
        check_operator(&format!("project over {rows} rows"), || {
            ops::project(&table, &projections)
        });
    }
}

#[test]
fn plain_column_projection_stays_zero_copy_under_parallel_config() {
    let mut rng = StdRng::seed_from_u64(0xA5C);
    let table = random_table(&mut rng, 2000);
    parallel::with_config(ExecConfig::new(8, 7), || {
        let out = ops::project(&table, &[ops::Projection::column("team")]).unwrap();
        assert!(
            std::sync::Arc::ptr_eq(
                table.column_data("team").unwrap(),
                out.column_at(0).unwrap()
            ),
            "a plain column projection must remain an Arc bump even when parallelism is enabled"
        );
    });
}

#[test]
fn sort_parallel_matches_sequential() {
    let mut rng = StdRng::seed_from_u64(0x50127);
    for rows in [0usize, 1, 10, 333, 1800] {
        let table = random_table(&mut rng, rows);
        // Typed int fast path needs a NULL-free int key: sort by a computed
        // non-null key too.
        let key_sets: Vec<(String, Vec<ops::SortKey>)> = vec![
            ("int asc".into(), vec![ops::SortKey::asc(Expr::col("k"))]),
            ("int desc".into(), vec![ops::SortKey::desc(Expr::col("k"))]),
            (
                "team asc, score desc".into(),
                vec![
                    ops::SortKey::asc(Expr::col("team")),
                    ops::SortKey::desc(Expr::col("score")),
                ],
            ),
            (
                "constant key (pure stability)".into(),
                vec![ops::SortKey::asc(Expr::lit(1))],
            ),
        ];
        for (label, keys) in &key_sets {
            check_operator(&format!("sort by {label} over {rows} rows"), || {
                ops::sort(&table, keys)
            });
        }
    }
}

#[test]
fn sort_typed_fast_path_parallel_matches_sequential() {
    // A dense all-valid Int64 key with many duplicates drives the typed
    // comparator through the parallel run-merge sort.
    let schema = Schema::from_pairs(&[("x", DataType::Int), ("tag", DataType::Str)]);
    let mut builder = TableBuilder::new("dense", schema);
    let mut rng = StdRng::seed_from_u64(0xD05E);
    for i in 0..2500 {
        builder
            .push_row(vec![
                Value::Int(rng.gen_range(0i64..40)),
                Value::str(format!("t{i}")),
            ])
            .unwrap();
    }
    let table = builder.build();
    for keys in [
        vec![ops::SortKey::asc(Expr::col("x"))],
        vec![ops::SortKey::desc(Expr::col("x"))],
    ] {
        check_operator("typed int sort", || ops::sort(&table, &keys));
    }
}

#[test]
fn hash_join_parallel_matches_sequential() {
    let mut rng = StdRng::seed_from_u64(0x10117);
    for rows in [0usize, 17, 300, 1400] {
        let left = random_table(&mut rng, rows);
        let teams = team_table();
        let ints = int_keyed_table(&mut rng, (rows / 2).max(8));
        for join_type in [ops::JoinType::Inner, ops::JoinType::Left] {
            check_operator(
                &format!("utf8-key {join_type:?} join over {rows} rows"),
                || ops::hash_join(&left, &teams, "team", "team", join_type),
            );
            check_operator(
                &format!("i64-key {join_type:?} join over {rows} rows"),
                || ops::hash_join(&left, &ints, "k", "k", join_type),
            );
            // Int-vs-float keys go through the generic rendered-key path.
            check_operator(
                &format!("generic-key {join_type:?} join over {rows} rows"),
                || ops::hash_join(&left, &left, "score", "score", join_type),
            );
        }
    }
}

#[test]
fn aggregate_parallel_matches_sequential() {
    let mut rng = StdRng::seed_from_u64(0xA66);
    for rows in [0usize, 5, 260, 1700] {
        let table = random_table(&mut rng, rows);
        let all_aggs = [
            ops::AggCall::count_star("n"),
            ops::AggCall::new(ops::AggFunc::Count, Some(Expr::col("score")), "n_score"),
            ops::AggCall::new(ops::AggFunc::Sum, Some(Expr::col("score")), "total"),
            ops::AggCall::new(ops::AggFunc::Avg, Some(Expr::col("score")), "avg"),
            ops::AggCall::new(ops::AggFunc::Min, Some(Expr::col("k")), "min_k"),
            ops::AggCall::new(ops::AggFunc::Max, Some(Expr::col("k")), "max_k"),
        ];
        // Typed single-int-key path (with a NULL group).
        check_operator(&format!("aggregate by int key over {rows} rows"), || {
            ops::aggregate(&table, &[(Expr::col("k"), "k".to_string())], &all_aggs)
        });
        // Generic string-key path.
        check_operator(&format!("aggregate by team over {rows} rows"), || {
            ops::aggregate(
                &table,
                &[(Expr::col("team"), "team".to_string())],
                &all_aggs,
            )
        });
        // Composite key path.
        check_operator(&format!("aggregate by (team, k) over {rows} rows"), || {
            ops::aggregate(
                &table,
                &[
                    (Expr::col("team"), "team".to_string()),
                    (Expr::col("k"), "k".to_string()),
                ],
                &all_aggs,
            )
        });
        // Global aggregation (one group, even over empty input).
        check_operator(&format!("global aggregate over {rows} rows"), || {
            ops::aggregate(&table, &[], &all_aggs)
        });
    }
}

#[test]
fn aggregate_type_errors_are_identical_in_parallel() {
    let mut rng = StdRng::seed_from_u64(0xBAD5);
    let table = random_table(&mut rng, 900);
    check_operator("SUM over a string column", || {
        ops::aggregate(
            &table,
            &[(Expr::col("k"), "k".to_string())],
            &[ops::AggCall::new(
                ops::AggFunc::Sum,
                Some(Expr::col("team")),
                "bad",
            )],
        )
    });
}

#[test]
fn evaluate_batch_and_selection_vector_parallel_match_sequential() {
    let mut rng = StdRng::seed_from_u64(0xEB57);
    let table = random_table(&mut rng, 1100);
    let exprs = [
        Expr::binary(Expr::col("k"), BinaryOp::Add, Expr::col("k")),
        Expr::binary(Expr::col("score"), BinaryOp::Mul, Expr::lit(2)),
        Expr::Func {
            func: ScalarFunc::Length,
            args: vec![Expr::col("label")],
        },
        Expr::InList {
            expr: Box::new(Expr::col("team")),
            list: vec![Expr::lit("Heat"), Expr::lit("Spurs")],
            negated: false,
        },
        Expr::Unary {
            op: caesura::engine::UnaryOp::IsNull,
            operand: Box::new(Expr::col("k")),
        },
    ];
    for (i, expr) in exprs.iter().enumerate() {
        let reference = parallel::with_config(ExecConfig::sequential(), || {
            expr.evaluate_batch(table.schema(), table.columns(), table.num_rows())
                .unwrap()
        });
        let reference_sel = parallel::with_config(ExecConfig::sequential(), || {
            expr.selection_vector(table.schema(), table.columns(), table.num_rows())
        });
        for config in parallel_configs() {
            let (batch, selection) = parallel::with_config(config, || {
                (
                    expr.evaluate_batch(table.schema(), table.columns(), table.num_rows())
                        .unwrap(),
                    expr.selection_vector(table.schema(), table.columns(), table.num_rows()),
                )
            });
            assert_eq!(
                reference.as_ref(),
                batch.as_ref(),
                "evaluate_batch #{i} differs under {config:?}"
            );
            match (&reference_sel, &selection) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a, b, "selection_vector #{i} differs under {config:?}")
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                other => panic!("selection_vector outcome mismatch: {other:?}"),
            }
        }
    }
}

#[test]
fn take_parallel_matches_sequential() {
    let mut rng = StdRng::seed_from_u64(0x7A4E);
    let table = random_table(&mut rng, 1500);
    let mut indices: Vec<usize> = (0..table.num_rows()).collect();
    // A permutation plus duplicates.
    indices.reverse();
    indices.extend((0..200).map(|_| rng.gen_range(0..table.num_rows())));
    check_operator("take with permutation + duplicates", || {
        Ok(table.take(&indices))
    });
}

#[test]
fn distinct_union_limit_parallel_match_sequential() {
    // The set operators ride on the shared kernels; keep them covered so the
    // subsystem cannot silently change their behaviour.
    let mut rng = StdRng::seed_from_u64(0x5E7);
    let a = random_table(&mut rng, 800);
    let b = random_table(&mut rng, 700).renamed("random_t");
    check_operator("distinct", || ops::distinct(&a));
    check_operator("union_all", || ops::union_all(&a, &b));
    check_operator("limit", || ops::limit(&a, 123));
}

// ---------------------------------------------------------------------------
// Determinism: identical bytes across repeated parallel runs, regardless of
// worker interleaving.
// ---------------------------------------------------------------------------

#[test]
fn parallel_sort_is_deterministic_and_stable_across_runs() {
    let mut rng = StdRng::seed_from_u64(0xDE7);
    let table = random_table(&mut rng, 2100);
    // Many duplicate keys → heavy tie-breaking; morsel_rows=7 → hundreds of
    // runs to merge, maximising scheduling nondeterminism exposure.
    let keys = vec![ops::SortKey::asc(Expr::col("team"))];
    let config = ExecConfig::new(8, 7);
    let reference = parallel::with_config(config, || ops::sort(&table, &keys).unwrap());
    for run in 0..5 {
        let again = parallel::with_config(config, || ops::sort(&table, &keys).unwrap());
        assert_tables_byte_identical(&reference, &again, &format!("sort determinism run {run}"));
    }
    // And stability: equal keys keep their input order.
    let sequential = parallel::with_config(ExecConfig::sequential(), || {
        ops::sort(&table, &keys).unwrap()
    });
    assert_tables_byte_identical(&sequential, &reference, "sort stability vs sequential");
}

#[test]
fn parallel_aggregate_group_order_is_canonical_across_runs() {
    let mut rng = StdRng::seed_from_u64(0xCA90);
    let table = random_table(&mut rng, 2300);
    let group_by = [(Expr::col("team"), "team".to_string())];
    let aggs = [
        ops::AggCall::count_star("n"),
        ops::AggCall::new(ops::AggFunc::Sum, Some(Expr::col("score")), "total"),
    ];
    let config = ExecConfig::new(8, 7);
    let reference =
        parallel::with_config(config, || ops::aggregate(&table, &group_by, &aggs).unwrap());
    for run in 0..5 {
        let again =
            parallel::with_config(config, || ops::aggregate(&table, &group_by, &aggs).unwrap());
        assert_tables_byte_identical(
            &reference,
            &again,
            &format!("aggregate determinism run {run}"),
        );
    }
    // Canonical order = first-seen row order, i.e. the sequential order.
    let sequential = parallel::with_config(ExecConfig::sequential(), || {
        ops::aggregate(&table, &group_by, &aggs).unwrap()
    });
    assert_tables_byte_identical(&sequential, &reference, "group order vs sequential");
}

// ---------------------------------------------------------------------------
// Randomized sweep: random tables through a random operator pipeline.
// ---------------------------------------------------------------------------

#[test]
fn random_operator_pipelines_are_parallel_equivalent() {
    let mut rng = StdRng::seed_from_u64(0x9A11E7);
    for case in 0..25 {
        let rows = rng.gen_range(0..900);
        let table = random_table(&mut rng, rows);
        let threshold = rng.gen_range(-25i64..25);
        let predicate = Expr::binary(Expr::col("k"), BinaryOp::GtEq, Expr::lit(threshold));
        let keys = vec![ops::SortKey::desc(Expr::col("score"))];
        let group_by = [(Expr::col("team"), "team".to_string())];
        let aggs = [
            ops::AggCall::new(ops::AggFunc::Max, Some(Expr::col("score")), "best"),
            ops::AggCall::count_star("n"),
        ];
        check_operator(&format!("pipeline case {case} ({rows} rows)"), || {
            let filtered = ops::filter(&table, &predicate)?;
            let sorted = ops::sort(&filtered, &keys)?;
            ops::aggregate(&sorted, &group_by, &aggs)
        });
    }
}
