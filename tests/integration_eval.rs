//! Integration tests of the evaluation harness: the benchmark reproduces the
//! qualitative findings of the paper's Table 1 and Table 2.

use caesura::eval::{
    evaluate_fieldwork, evaluate_model, render_table1, render_table2, render_table3, Dataset,
    EvaluationConfig, Tier,
};
use caesura::llm::ModelProfile;

fn config() -> EvaluationConfig {
    // Small data scale keeps the full 96-run sweep fast in CI.
    EvaluationConfig::small()
}

#[test]
fn table1_shape_gpt4_beats_chatgpt35_and_artwork_beats_rotowire() {
    let config = config();
    let gpt4 = evaluate_model(ModelProfile::Gpt4, &config);
    let gpt35 = evaluate_model(ModelProfile::ChatGpt35, &config);

    let (gpt4_logical, gpt4_physical) = gpt4.accuracy(|_| true);
    let (gpt35_logical, gpt35_physical) = gpt35.accuracy(|_| true);

    // Finding 1: GPT-4 is clearly better than ChatGPT-3.5 (Table 1, "All" row).
    assert!(gpt4_logical > gpt35_logical + 0.1);
    assert!(gpt4_physical > gpt35_physical + 0.1);

    // Finding 2: GPT-4 handles most queries (paper: 93.8% logical / 87.5% physical).
    assert!(gpt4_logical >= 0.85, "gpt4 logical = {gpt4_logical}");
    assert!(gpt4_physical >= 0.75, "gpt4 physical = {gpt4_physical}");

    // Finding 3: for the weaker model, multi-modal queries are much harder than
    // single-modality queries (Table 1, modality rows).
    let (single_logical, _) = gpt35.accuracy(|r| !r.multimodal);
    let (multi_logical, _) = gpt35.accuracy(|r| r.multimodal);
    assert!(single_logical > multi_logical);

    // Finding 4: artwork is not harder than rotowire for GPT-4 (paper: 100% vs 87.5%).
    let (artwork_logical, _) = gpt4.accuracy(|r| r.dataset == Dataset::Artwork);
    let (rotowire_logical, _) = gpt4.accuracy(|r| r.dataset == Dataset::Rotowire);
    assert!(artwork_logical + 0.15 >= rotowire_logical);
}

#[test]
fn table2_shape_data_misunderstanding_dominates_for_the_weaker_model() {
    let config = config();
    let gpt4 = evaluate_model(ModelProfile::Gpt4, &config);
    let gpt35 = evaluate_model(ModelProfile::ChatGpt35, &config);
    let gpt4_counts = gpt4.error_counts();
    let gpt35_counts = gpt35.error_counts();

    // The weaker model misunderstands the data far more often (paper: 9 vs 1).
    let dm35 = gpt35_counts
        .get("Data Misunderstanding")
        .copied()
        .unwrap_or(0);
    let dm4 = gpt4_counts
        .get("Data Misunderstanding")
        .copied()
        .unwrap_or(0);
    assert!(dm35 > dm4, "expected 3.5 ({dm35}) > 4 ({dm4})");

    // GPT-4's mistakes are few and mostly in the mapping phase (wrong arguments).
    let gpt4_total: usize = gpt4_counts.values().sum();
    assert!(gpt4_total <= 10, "gpt4 made {gpt4_total} mistakes");
}

#[test]
fn reports_render_and_cover_all_queries() {
    let config = config();
    let report = evaluate_model(ModelProfile::Gpt4, &config);
    assert_eq!(report.results.len(), 48);
    assert!(report.total_llm_calls() > 48);
    let reports = vec![report];
    let table1 = render_table1(&reports);
    for row in [
        "Artwork overall",
        "Rotowire overall",
        "Single modality",
        "Multiple modalities",
        "Single value",
        "Table",
        "Plot",
        "All",
    ] {
        assert!(table1.contains(row), "Table 1 misses row {row}");
    }
    let table2 = render_table2(&reports);
    for category in [
        "Impossible Actions",
        "Data Misunderstanding",
        "Illogical / Missing Steps",
        "Wrong Arguments",
        "Wrong Tool",
    ] {
        assert!(
            table2.contains(category),
            "Table 2 misses category {category}"
        );
    }
}

#[test]
fn table3_shape_fieldwork_suite_meets_every_expectation_at_both_scales() {
    // The default scale (the shipped configuration) — not just `small()` —
    // must satisfy every clean oracle and every adversarial expectation.
    for config in [EvaluationConfig::default(), EvaluationConfig::small()] {
        let report = evaluate_fieldwork(ModelProfile::Gpt4, &config);
        assert_eq!(report.results.len(), 42);
        assert!(report.results.iter().all(|r| r.expectation_met));

        // The clean tier is fully correct; the adversarial tier trades
        // physical correctness for the *expected* failure in every run.
        let (clean_logical, clean_physical) = report.tier_accuracy(Tier::Clean);
        assert_eq!((clean_logical, clean_physical), (1.0, 1.0));
        let adversarial = report
            .results
            .iter()
            .filter(|r| r.tier == Tier::Adversarial)
            .count();
        assert!(adversarial >= 12);

        let table3 = render_table3(&[report]);
        for row in [
            "clean",
            "adversarial",
            "expected Impossible Actions",
            "expected Data Misunderstanding",
            "expected Illogical / Missing Steps",
            "expected Wrong Arguments",
            "expected Wrong Tool",
            "All (expectation met)",
        ] {
            assert!(table3.contains(row), "Table 3 misses row {row}");
        }
    }
}
