//! Cross-crate integration tests: data generation → planning → mapping →
//! execution → output, checked against the generators' ground truth.

use caesura::prelude::*;
use std::sync::Arc;

fn artwork() -> (caesura::data::ArtworkData, Caesura) {
    let data = generate_artwork(&ArtworkConfig::default());
    let session = Caesura::new(data.lake.clone(), Arc::new(SimulatedLlm::gpt4()));
    (data, session)
}

fn rotowire() -> (caesura::data::RotowireData, Caesura) {
    let data = generate_rotowire(&RotowireConfig::default());
    let session = Caesura::new(data.lake.clone(), Arc::new(SimulatedLlm::gpt4()));
    (data, session)
}

#[test]
fn figure1_query_produces_a_bar_plot_with_ground_truth_counts() {
    let (data, session) = artwork();
    let output = session
        .query("Plot the number of paintings depicting Madonna and Child for each century!")
        .expect("the Figure 1 query must execute");
    let plot = output.plot().expect("expected a plot");
    assert_eq!(plot.spec.kind, PlotKind::Bar);
    assert_eq!(plot.spec.x_column, "century");

    // Compare the plotted series against the ground truth.
    let mut expected = std::collections::BTreeMap::new();
    for record in data.records.iter().filter(|r| r.madonna_and_child) {
        *expected.entry(record.century.to_string()).or_insert(0.0) += 1.0;
    }
    assert_eq!(plot.points.len(), expected.len());
    for point in &plot.points {
        assert_eq!(
            Some(&point.value),
            expected.get(&point.label),
            "wrong count for century {}",
            point.label
        );
    }
}

#[test]
fn figure4_query2_maxima_match_the_image_annotations() {
    let (data, session) = artwork();
    let output = session
        .query("Plot the maximum number of swords depicted on the paintings of each century.")
        .expect("the Figure 4 Query 2 must execute");
    let plot = output.plot().expect("expected a plot");
    let mut expected: std::collections::BTreeMap<String, f64> = std::collections::BTreeMap::new();
    for record in &data.records {
        let entry = expected.entry(record.century.to_string()).or_insert(0.0);
        *entry = entry.max(f64::from(record.count_of("sword")));
    }
    for point in &plot.points {
        assert_eq!(expected.get(&point.label), Some(&point.value));
    }
}

#[test]
fn figure4_query1_table_matches_ground_truth_maxima() {
    let (data, session) = rotowire();
    let output = session
        .query("For every team, what is the highest number of points they scored in a game?")
        .expect("the Figure 4 Query 1 must execute");
    let table = output.table().expect("expected a table");
    assert!(table.num_rows() > 0);
    for row in table.rows() {
        let team = row.get(0).as_str().unwrap().to_string();
        let max = row.get(row.len() - 1).as_int().unwrap();
        assert_eq!(
            Some(max),
            data.max_points_of(&team),
            "wrong maximum for {team}"
        );
    }
}

#[test]
fn single_value_queries_return_scalars_consistent_with_ground_truth() {
    let (data, session) = rotowire();
    let output = session
        .query("How many teams are in the Eastern conference?")
        .unwrap();
    let expected = data
        .teams
        .iter()
        .filter(|t| t.conference == "Eastern")
        .count() as i64;
    assert_eq!(output.as_value().unwrap().as_int(), Some(expected));

    let output = session
        .query("What is the height of the tallest player?")
        .unwrap();
    let expected = data.players.iter().map(|p| p.height_cm).max().unwrap();
    assert_eq!(output.as_value().unwrap().as_int(), Some(expected));
}

#[test]
fn list_queries_return_the_right_titles() {
    let (data, session) = artwork();
    let output = session
        .query("List the titles of all paintings that depict a horse.")
        .unwrap();
    let table = output.table().expect("expected a table");
    let titles: std::collections::BTreeSet<String> =
        table.rows().map(|row| row.get(0).to_string()).collect();
    let expected: std::collections::BTreeSet<String> = data
        .records
        .iter()
        .filter(|r| r.count_of("horse") > 0)
        .map(|r| r.title.clone())
        .collect();
    assert_eq!(titles, expected);
}

#[test]
fn traces_expose_every_phase_of_figure2() {
    let (_, session) = artwork();
    let run = session.run("How many paintings depict Madonna and Child?");
    assert!(run.succeeded());
    let trace = &run.trace;
    use caesura::core::Phase;
    assert!(!trace.events_of(Phase::Discovery).is_empty());
    assert!(!trace.events_of(Phase::Planning).is_empty());
    assert!(!trace.events_of(Phase::Mapping).is_empty());
    assert!(!trace.events_of(Phase::Execution).is_empty());
    // One planning call plus one mapping call per step.
    assert!(trace.llm_calls() > run.logical_plan.unwrap().len());
}

#[test]
fn weaker_model_profile_still_answers_relational_queries() {
    let data = generate_artwork(&ArtworkConfig::default());
    let session = Caesura::new(data.lake, Arc::new(SimulatedLlm::chatgpt35()));
    let output = session.query("For each genre, how many paintings are there?");
    // The ChatGPT-3.5 profile makes multi-modal mistakes, but simple relational
    // grouping queries should still work for this seed.
    if let Ok(output) = output {
        assert_eq!(output.kind(), "table");
    }
}

#[test]
fn read_only_guard_rejects_destructive_sql() {
    let data = generate_artwork(&ArtworkConfig::small());
    let err = caesura::engine::sql::run_sql(data.lake.catalog(), "DROP TABLE paintings_metadata")
        .unwrap_err();
    assert!(err.to_string().contains("read-only"));
}

fn fieldwork(config: &FieldworkConfig) -> (caesura::data::FieldworkData, Caesura) {
    let data = generate_fieldwork(config);
    let session = Caesura::new(data.lake.clone(), Arc::new(SimulatedLlm::gpt4()));
    (data, session)
}

#[test]
fn fieldwork_multi_step_query_matches_the_generator_ground_truth() {
    // Join stations -> station_photos, VisualQA every photo, aggregate per
    // region, plot: the canonical 4-step multi-modal chain on the third lake.
    let (data, session) = fieldwork(&FieldworkConfig::default());
    let output = session
        .query("Plot the number of station photos depicting a penguin for each region!")
        .expect("the fieldwork plot query must execute");
    let plot = output.plot().expect("expected a plot");
    assert_eq!(plot.spec.x_column, "region");

    let mut expected = std::collections::BTreeMap::new();
    for station in data.stations.iter().filter(|s| s.count_of("penguin") > 0) {
        *expected.entry(station.region.clone()).or_insert(0.0) += 1.0;
    }
    assert_eq!(plot.points.len(), expected.len());
    for point in &plot.points {
        assert_eq!(
            Some(&point.value),
            expected.get(&point.label),
            "wrong count for region {}",
            point.label
        );
    }
}

#[test]
fn missing_fieldwork_images_surface_the_typed_execution_error_not_null() {
    // The adversarial lake keeps the image *cell* in `stations.img_path` and
    // `station_photos.image` but drops the bytes from the image store. The
    // PR 3 guarantee: VisualQA over such a row fails with the typed per-row
    // execution error — it must never be silently coerced to NULL and
    // aggregated as a zero.
    // Only the image axis of the adversarial lake: the text-side follow-up
    // below must see clean reports.
    let (data, session) = fieldwork(&FieldworkConfig {
        dirty_reports: 0,
        ..FieldworkConfig::adversarial()
    });
    let missing: Vec<&str> = data
        .stations
        .iter()
        .filter(|s| s.image_missing)
        .map(|s| s.name.as_str())
        .collect();
    assert!(
        !missing.is_empty(),
        "the adversarial lake drops image bytes"
    );

    let err = session
        .query(
            "What is the maximum number of penguins depicted in the station photos of each region?",
        )
        .expect_err("a dropped image must fail the query, not aggregate as NULL");
    let message = err.to_string();
    assert!(
        message.contains("not found in the image store"),
        "expected the typed image-store error, got: {message}"
    );

    // The same lake still answers queries that never touch the image store.
    let output = session
        .query("What is the maximum number of specimens collected by each station?")
        .expect("text-side queries are unaffected by missing images");
    assert!(output.table().is_some());
}

#[test]
fn dirty_fieldwork_reports_surface_the_typed_text_error() {
    // Dirty report cells hold an integer where a TEXT document belongs:
    // TextQA must fail with the typed cell-type error instead of parsing
    // garbage into the aggregate.
    let (data, session) = fieldwork(&FieldworkConfig::adversarial());
    assert!(data.logs.iter().any(|log| log.dirty));
    let err = session
        .query("What is the minimum number of specimens collected by each station?")
        .expect_err("a dirty report cell must fail the query");
    assert!(
        err.to_string().contains("TEXT document"),
        "expected the typed TEXT-cell error, got: {err}"
    );
}
