//! Call accounting of the session-scoped perception answer cache:
//! `CountingLlm`-backed proof that a repeated `(input, question)` pair costs
//! **exactly one** model call across plan steps and across queries, that
//! eviction re-incurs the call, and that the session/trace/eval counters
//! report the hits faithfully.

use caesura::core::{CaesuraConfig, Executor};
use caesura::llm::{Conversation, CountingLlm, LlmClient, LlmResult, PerceptionLlm, SimulatedLlm};
use caesura::modal::operators::apply_text_qa_with;
use caesura::modal::{BatchConfig, CacheConfig, PerceptionCache};
use caesura::prelude::*;
use std::sync::Arc;

/// A deterministic LLM answering every perception prompt with a constant.
struct ConstLlm;

impl LlmClient for ConstLlm {
    fn complete(&self, _conversation: &Conversation) -> LlmResult<String> {
        Ok("42".to_string())
    }
    fn name(&self) -> &str {
        "const"
    }
}

fn reports_table(rows: usize) -> Table {
    let teams = ["Heat", "Spurs", "Bulls", "Lakers"];
    let reports = [
        "The Heat defeated the Spurs 110-102.",
        "The Bulls defeated the Lakers 99-95.",
        "The Spurs defeated the Bulls 120-101.",
    ];
    let schema = Schema::from_pairs(&[("name", DataType::Str), ("report", DataType::Text)]);
    let mut builder = TableBuilder::new("joined_reports", schema);
    for i in 0..rows {
        builder
            .push_row(vec![
                Value::str(teams[i % teams.len()]),
                Value::text(reports[i % reports.len()]),
            ])
            .unwrap();
    }
    builder.build()
}

#[test]
fn a_question_repeated_across_plan_steps_costs_exactly_one_call() {
    let table = reports_table(48);
    let cache = PerceptionCache::with_capacity(1024);
    let backend = PerceptionLlm::new(CountingLlm::new(ConstLlm));
    let template = "How many points did <name> score?";

    // Step 1: 48 rows over 4 teams × 3 reports = 12 unique pairs.
    let (stats1, out1) = apply_text_qa_with(
        &table,
        &backend,
        "report",
        "points_a",
        template,
        DataType::Int,
        &BatchConfig::new(8),
        Some(&cache),
    );
    let out1 = out1.unwrap();
    let unique = stats1.unique_requests;
    assert_eq!(backend.inner().usage().calls, unique);
    assert_eq!(stats1.cache_hits, 0);
    assert_eq!(stats1.cache_misses, unique);

    // Step 2 of the same plan re-asks the identical template over the
    // (unchanged) report column of step 1's output: zero new model calls.
    let (stats2, out2) = apply_text_qa_with(
        &out1,
        &backend,
        "report",
        "points_b",
        template,
        DataType::Int,
        &BatchConfig::new(8),
        Some(&cache),
    );
    let out2 = out2.unwrap();
    assert_eq!(
        backend.inner().usage().calls,
        unique,
        "each unique pair must cost exactly one call across both steps"
    );
    assert_eq!(stats2.cache_hits, unique);
    assert_eq!(stats2.dispatched_requests(), 0);
    assert_eq!(stats2.batches, 0);
    // The cached answers are the answers the model gave.
    for row in 0..out2.num_rows() {
        assert_eq!(
            out2.value(row, "points_a").unwrap(),
            out2.value(row, "points_b").unwrap()
        );
    }
}

#[test]
fn a_question_repeated_across_queries_costs_exactly_one_call() {
    let table = reports_table(24);
    let cache = PerceptionCache::with_capacity(1024);
    let template = "Who won the game?";

    // "Query 1" and "query 2" each get a fresh backend (a new executor with
    // fresh per-query state) but share the session-scoped cache.
    let first = PerceptionLlm::new(CountingLlm::new(ConstLlm));
    let (stats, out) = apply_text_qa_with(
        &table,
        &first,
        "report",
        "winner",
        template,
        DataType::Str,
        &BatchConfig::new(8),
        Some(&cache),
    );
    out.unwrap();
    assert_eq!(first.inner().usage().calls, stats.unique_requests);

    let second = PerceptionLlm::new(CountingLlm::new(ConstLlm));
    let (stats2, out) = apply_text_qa_with(
        &table,
        &second,
        "report",
        "winner",
        template,
        DataType::Str,
        &BatchConfig::new(8),
        Some(&cache),
    );
    out.unwrap();
    assert_eq!(
        second.inner().usage().calls,
        0,
        "the second query must be served entirely from the cache"
    );
    assert_eq!(stats2.cache_hits, stats.unique_requests);
}

#[test]
fn eviction_re_incurs_the_model_call() {
    // Capacity 1: asking A, then B (evicts A), then A again must pay for A
    // twice. With a capacity that fits both, the third ask is free.
    let doc_table = {
        let schema = Schema::from_pairs(&[("report", DataType::Text)]);
        let mut builder = TableBuilder::new("t", schema);
        builder
            .push_row(vec![Value::text("The Heat defeated the Spurs 110-102.")])
            .unwrap();
        builder.build()
    };
    let ask = |backend: &PerceptionLlm<CountingLlm<ConstLlm>>,
               cache: &PerceptionCache,
               question: &str| {
        let (_, out) = apply_text_qa_with(
            &doc_table,
            backend,
            "report",
            "answer",
            question,
            DataType::Str,
            &BatchConfig::new(8),
            Some(cache),
        );
        out.unwrap();
    };

    let tiny = PerceptionCache::with_capacity(1);
    let backend = PerceptionLlm::new(CountingLlm::new(ConstLlm));
    ask(&backend, &tiny, "Who won the game?");
    ask(&backend, &tiny, "Who lost the game?");
    ask(&backend, &tiny, "Who won the game?");
    assert_eq!(
        backend.inner().usage().calls,
        3,
        "eviction must re-incur the evicted question's call"
    );
    assert_eq!(tiny.stats().evictions, 2);

    let roomy = PerceptionCache::with_capacity(16);
    let backend = PerceptionLlm::new(CountingLlm::new(ConstLlm));
    ask(&backend, &roomy, "Who won the game?");
    ask(&backend, &roomy, "Who lost the game?");
    ask(&backend, &roomy, "Who won the game?");
    assert_eq!(backend.inner().usage().calls, 2);
    assert_eq!(roomy.stats().evictions, 0);
}

#[test]
fn executor_shares_the_cache_across_queries() {
    // Two executors (two "queries") over one Arc-shared cache: the second
    // executor's perception stats show only hits, no dispatches.
    let data = caesura::data::generate_rotowire(&caesura::data::RotowireConfig::small());
    let cache = Arc::new(PerceptionCache::with_capacity(4096));
    let step = caesura::llm::LogicalStep::new(
        1,
        "Extract points",
        vec!["game_reports".to_string()],
        "with_points",
        vec!["points".to_string()],
    );
    let decision = caesura::llm::OperatorDecision {
        step_number: 1,
        reasoning: String::new(),
        operator: OperatorKind::TextQa,
        arguments: vec![
            "report".to_string(),
            "points".to_string(),
            "How many points did the Heat score?".to_string(),
            "int".to_string(),
        ],
    };

    let mut first = Executor::new(data.lake.catalog().clone(), data.lake.images().clone())
        .with_perception_cache(Arc::clone(&cache));
    first.execute(&step, &decision).unwrap();
    let stats1 = first.perception_stats();
    assert!(stats1.unique_requests > 0);
    assert_eq!(stats1.cache_hits, 0);

    let mut second = Executor::new(data.lake.catalog().clone(), data.lake.images().clone())
        .with_perception_cache(Arc::clone(&cache));
    second.execute(&step, &decision).unwrap();
    let stats2 = second.perception_stats();
    assert_eq!(stats2.cache_hits, stats2.unique_requests);
    assert_eq!(stats2.dispatched_requests(), 0);
}

#[test]
fn session_serves_a_repeated_query_from_the_cache() {
    let data = caesura::data::generate_rotowire(&caesura::data::RotowireConfig::small());
    let query = "For every team, what is the highest number of points they scored in a game?";

    // Cache on: the second identical query dispatches zero perception calls.
    let config = CaesuraConfig {
        perception_cache: Some(CacheConfig::new(CacheConfig::DEFAULT_CAPACITY)),
        ..CaesuraConfig::default()
    };
    let session = Caesura::with_config(data.lake.clone(), Arc::new(SimulatedLlm::gpt4()), config);
    let first = session.run(query);
    assert!(first.succeeded(), "run 1 failed: {:?}", first.output.err());
    let second = session.run(query);
    assert!(second.succeeded());
    let (p1, p2) = (
        first.trace.perception_calls(),
        second.trace.perception_calls(),
    );
    assert!(p1.calls > 0, "the query must exercise perception operators");
    assert_eq!(p2.calls, 0, "run 2 must be served from the session cache");
    assert_eq!(p2.cache_hits, p1.calls + p1.cache_hits);
    assert_eq!(
        first.output.unwrap().table().unwrap().num_rows(),
        second.output.unwrap().table().unwrap().num_rows(),
        "cached and uncached runs must agree"
    );
    let cache_stats = session.perception_cache().unwrap().stats();
    assert!(cache_stats.hits >= p2.cache_hits);

    // Cache off: both runs pay the full perception cost, and the session
    // owns no cache at all (byte-for-byte the pre-cache behaviour).
    let config = CaesuraConfig {
        perception_cache: Some(CacheConfig::off()),
        ..CaesuraConfig::default()
    };
    let session = Caesura::with_config(data.lake.clone(), Arc::new(SimulatedLlm::gpt4()), config);
    assert!(session.perception_cache().is_none());
    let first = session.run(query);
    let second = session.run(query);
    let (p1, p2) = (
        first.trace.perception_calls(),
        second.trace.perception_calls(),
    );
    assert_eq!(p1.calls, p2.calls, "without a cache both runs pay in full");
    assert!(p1.calls > 0);
    assert_eq!(p2.cache_hits, 0);
}
