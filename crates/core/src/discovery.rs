//! The discovery phase: find the data sources and columns relevant to a query.
//!
//! Following §3.1 of the paper, discovery has two parts: a dense-retrieval
//! step that narrows down the relevant tables and collections ("similar to
//! Symphony"), and an LLM prompt that picks the relevant columns of the
//! retrieved tables. The retrieval here is a TF-IDF bag-of-words cosine over
//! the source descriptions — a faithful laptop-scale substitute for the dense
//! retriever. The evaluation (like the paper's, §4.2) can also bypass
//! retrieval entirely and assume perfect retrieval.

use caesura_data::DataLake;
use caesura_llm::RelevantColumn;
use std::collections::{BTreeMap, BTreeSet};

/// Scores data sources of a lake against a query with TF-IDF cosine similarity.
#[derive(Debug, Clone)]
pub struct Retriever {
    /// `(source name, tokenized document)` pairs.
    documents: Vec<(String, Vec<String>)>,
    /// Document frequency per token.
    document_frequency: BTreeMap<String, usize>,
}

impl Retriever {
    /// Index the retrieval documents of a data lake.
    pub fn index(lake: &DataLake) -> Self {
        let documents: Vec<(String, Vec<String>)> = lake
            .retrieval_documents()
            .into_iter()
            .map(|(name, text)| (name, tokenize(&text)))
            .collect();
        let mut document_frequency = BTreeMap::new();
        for (_, tokens) in &documents {
            let unique: BTreeSet<&String> = tokens.iter().collect();
            for token in unique {
                *document_frequency.entry(token.clone()).or_insert(0) += 1;
            }
        }
        Retriever {
            documents,
            document_frequency,
        }
    }

    /// Number of indexed sources.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// Score every source against the query, highest first.
    pub fn rank(&self, query: &str) -> Vec<(String, f64)> {
        let query_tokens = tokenize(query);
        let n = self.documents.len().max(1) as f64;
        let mut scores: Vec<(String, f64)> = self
            .documents
            .iter()
            .map(|(name, tokens)| {
                let mut doc_tf: BTreeMap<&String, f64> = BTreeMap::new();
                for token in tokens {
                    *doc_tf.entry(token).or_insert(0.0) += 1.0;
                }
                let mut score = 0.0;
                let mut doc_norm = 0.0;
                for (token, tf) in &doc_tf {
                    let df = self.document_frequency.get(*token).copied().unwrap_or(1) as f64;
                    let idf = (1.0 + n / df).ln();
                    let weight = tf * idf;
                    doc_norm += weight * weight;
                    if query_tokens.contains(token) {
                        score += weight * idf;
                    }
                }
                let normalized = if doc_norm > 0.0 {
                    score / doc_norm.sqrt()
                } else {
                    0.0
                };
                (name.clone(), normalized)
            })
            .collect();
        scores.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scores
    }

    /// The top-`k` source names for a query (sources with zero score are kept
    /// only if fewer than `k` sources scored above zero).
    pub fn top_k(&self, query: &str, k: usize) -> Vec<String> {
        let ranked = self.rank(query);
        let positive: Vec<String> = ranked
            .iter()
            .filter(|(_, score)| *score > 0.0)
            .map(|(name, _)| name.clone())
            .take(k)
            .collect();
        if positive.len() >= k.min(ranked.len()) {
            positive
        } else {
            ranked.into_iter().map(|(name, _)| name).take(k).collect()
        }
    }
}

fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|w| w.len() > 1)
        .map(|w| w.to_lowercase())
        .collect()
}

/// Compute the relevant columns of a lake for a query without an LLM call
/// ("perfect retrieval" mode, used by the paper's evaluation): every column
/// whose name is mentioned in the query, every date-like column when the query
/// mentions years or centuries, the join-key and multi-modal columns when the
/// query needs them, plus example values read from the data.
pub fn lexical_relevant_columns(
    lake: &DataLake,
    query: &str,
    example_values: usize,
) -> Vec<RelevantColumn> {
    let lower = query.to_lowercase();
    let words: BTreeSet<String> = tokenize(&lower).into_iter().map(|w| singular(&w)).collect();
    let needs_dates = lower.contains("century")
        || lower.contains("year")
        || lower.contains("earliest")
        || lower.contains("latest");
    let needs_images =
        lower.contains("depict") || lower.contains("image") || lower.contains("painting");
    let needs_text = [
        "points", "score", "win", "won", "lose", "lost", "rebound", "assist", "game",
    ]
    .iter()
    .any(|w| lower.contains(w));

    let mut out = Vec::new();
    for table in lake.catalog().tables() {
        for field in table.schema().fields() {
            let name = field.name.to_lowercase();
            let mentioned = words.contains(&singular(&name));
            let date_like = needs_dates
                && (name.contains("inception")
                    || name.contains("date")
                    || name.contains("year")
                    || name.contains("founded"));
            let modality = (needs_images && field.data_type == caesura_engine::DataType::Image)
                || (needs_text && field.data_type == caesura_engine::DataType::Text);
            let join_key = (needs_images || needs_text)
                && (name == "img_path" || name == "game_id" || name == "name");
            if mentioned || date_like || modality || join_key {
                let examples = table
                    .example_values(&field.name, example_values)
                    .unwrap_or_default();
                out.push(RelevantColumn {
                    table: table.name().to_string(),
                    column: field.name.clone(),
                    examples,
                });
            }
        }
    }
    out
}

fn singular(word: &str) -> String {
    caesura_llm::intent::singular(word)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesura_data::{generate_artwork, generate_rotowire, ArtworkConfig, RotowireConfig};

    #[test]
    fn retrieval_ranks_image_collection_high_for_depiction_queries() {
        let lake = generate_artwork(&ArtworkConfig::small()).lake;
        let retriever = Retriever::index(&lake);
        assert_eq!(retriever.len(), 2);
        let top = retriever.top_k("Which paintings depict swords in their images?", 2);
        assert!(top.contains(&"painting_images".to_string()));
        assert!(top.contains(&"paintings_metadata".to_string()));
    }

    #[test]
    fn retrieval_ranks_reports_high_for_score_queries() {
        let lake = generate_rotowire(&RotowireConfig::small()).lake;
        let retriever = Retriever::index(&lake);
        let ranked = retriever.rank("How many points did the Heat score in their game reports?");
        assert_eq!(ranked.len(), 4);
        let reports_rank = ranked
            .iter()
            .position(|(name, _)| name == "game_reports")
            .unwrap();
        assert!(reports_rank <= 1, "game_reports ranked at {reports_rank}");
    }

    #[test]
    fn lexical_relevance_includes_inception_and_image_for_figure1_query() {
        let lake = generate_artwork(&ArtworkConfig::small()).lake;
        let columns = lexical_relevant_columns(
            &lake,
            "Plot the number of paintings depicting Madonna and Child for each century!",
            3,
        );
        let names: Vec<String> = columns
            .iter()
            .map(|c| format!("{}.{}", c.table, c.column))
            .collect();
        assert!(names.contains(&"paintings_metadata.inception".to_string()));
        assert!(names.contains(&"painting_images.image".to_string()));
        // Example values are attached.
        let inception = columns.iter().find(|c| c.column == "inception").unwrap();
        assert!(!inception.examples.is_empty());
    }

    #[test]
    fn lexical_relevance_is_narrow_for_relational_queries() {
        let lake = generate_rotowire(&RotowireConfig::small()).lake;
        let columns =
            lexical_relevant_columns(&lake, "How many teams are in the Eastern conference?", 3);
        assert!(columns.iter().any(|c| c.column == "conference"));
        assert!(!columns.iter().any(|c| c.column == "report"));
    }
}
