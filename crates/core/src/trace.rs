//! Execution traces: a readable record of every phase, prompt, response,
//! decision, observation, and recovery attempt of one query.
//!
//! The trace is what the `figure2_pipeline` binary prints to reproduce the
//! multi-phase prompting picture of the paper, and what the evaluation crate
//! inspects to categorize errors (Table 2).

use crate::sched::Priority;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// The phase a trace event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Data discovery (retrieval + column relevance).
    Discovery,
    /// Logical-plan generation.
    Planning,
    /// Operator mapping (one event per step).
    Mapping,
    /// Operator execution.
    Execution,
    /// Error analysis / recovery.
    Recovery,
}

impl Phase {
    /// All phases, in pipeline order.
    pub const ALL: [Phase; 5] = [
        Phase::Discovery,
        Phase::Planning,
        Phase::Mapping,
        Phase::Execution,
        Phase::Recovery,
    ];

    fn index(self) -> usize {
        match self {
            Phase::Discovery => 0,
            Phase::Planning => 1,
            Phase::Mapping => 2,
            Phase::Execution => 3,
            Phase::Recovery => 4,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Phase::Discovery => "Discovery",
            Phase::Planning => "Planning",
            Phase::Mapping => "Mapping",
            Phase::Execution => "Execution",
            Phase::Recovery => "Recovery",
        };
        f.write_str(name)
    }
}

/// One event of the execution trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Which phase produced the event.
    pub phase: Phase,
    /// Short label ("prompt", "response", "decision", "observation", "error", ...).
    pub label: String,
    /// The event payload (prompt text, observation text, error message, ...).
    pub detail: String,
}

/// Per-query accounting of the batched perception-operator model calls
/// (VisualQA / TextQA / Image Select / transform codegen). Mirrors
/// `caesura_modal::BatchStats`, kept as plain counters so the trace stays
/// decoupled from the modal types.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerceptionCalls {
    /// Input rows the perception operators walked.
    pub rows: usize,
    /// Unique model calls actually dispatched to the backend (cache hits
    /// never dispatch, so with a warm cache this can be 0).
    pub calls: usize,
    /// Batched dispatches carrying those calls.
    pub batches: usize,
    /// Model calls avoided by deduplication versus one call per row.
    pub saved_calls: usize,
    /// Unique requests answered by the session's perception cache.
    pub cache_hits: usize,
    /// Unique requests probed against the cache and dispatched instead.
    pub cache_misses: usize,
    /// Cache entries evicted while storing this query's answers.
    pub cache_evictions: usize,
    /// Memory-tier misses answered by the persistent disk tier (all zero
    /// when no store is attached, keeping pre-disk traces byte-identical).
    pub disk_hits: usize,
    /// Memory-tier misses that also missed the disk tier and dispatched.
    pub disk_misses: usize,
    /// Freshly computed answers written through to the disk tier.
    pub disk_writes: usize,
}

/// Where a query's logical plan (and its operator decisions) came from.
///
/// Recorded on the trace by the session's plan-cache probe: `Planned` means
/// the planning + mapping phases ran live (including every cache-off run),
/// `Cached` means a validated plan was replayed from the session's plan
/// cache with zero planner LLM calls. Also surfaced as a `"plan-source"`
/// trace event in [`Phase::Planning`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSource {
    /// The plan was produced by live planning/mapping LLM calls.
    Planned,
    /// The plan was replayed from the session's validated-plan cache.
    Cached,
}

impl fmt::Display for PlanSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PlanSource::Planned => "planned",
            PlanSource::Cached => "cached",
        })
    }
}

/// Per-query accounting of the session's validated-plan cache. Mirrors
/// `caesura_llm::PlanCacheStats`, kept as plain counters so the trace stays
/// decoupled from the llm-crate types (the same pattern as
/// [`PerceptionCalls`]). All-zero (the `Default`) when the cache is off, so
/// cache-off traces stay byte-identical to pre-cache ones.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheCalls {
    /// Probes answered from the cache (planning + mapping skipped).
    pub hits: usize,
    /// Probes that fell through to live planning.
    pub misses: usize,
    /// Validated plans this query stored after a clean execution.
    pub insertions: usize,
    /// Cached plans evicted because they failed at execution for this query.
    pub invalidations: usize,
    /// Memory-tier misses answered by the persistent disk tier (all zero
    /// when no store is attached, keeping pre-disk traces byte-identical).
    pub disk_hits: usize,
    /// Validated plans written through to the disk tier.
    pub disk_writes: usize,
}

/// Wall-clock timings of one query run, accumulated per phase by the session
/// as it drives the pipeline, plus the end-to-end totals the serving layer
/// stamps on: how long the query sat in the submission queue and how long it
/// ran once a scheduler worker picked it up.
///
/// Timings are *measurement* metadata, not part of the logical record of a
/// run: two byte-identical runs never share wall clocks. They are therefore
/// deliberately excluded from [`ExecutionTrace`]'s `PartialEq`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    phases: [Duration; Phase::ALL.len()],
    queue_wait: Duration,
    total: Duration,
}

impl PhaseTimings {
    /// Accumulated wall clock spent in one phase (a phase can be entered many
    /// times: mapping/execution alternate per step, recovery per failure).
    pub fn of(&self, phase: Phase) -> Duration {
        self.phases[phase.index()]
    }

    /// Wall clock from a scheduler worker picking the query up to its
    /// completion (zero until the run finishes).
    pub fn total(&self) -> Duration {
        self.total
    }

    /// Wall clock the query spent queued before a scheduler worker picked it
    /// up (zero for queries that found an idle worker immediately).
    pub fn queue_wait(&self) -> Duration {
        self.queue_wait
    }

    /// Submission-to-completion wall clock: queue wait plus run time. This is
    /// the latency a submitter observes, and what the serving bench reports
    /// percentiles over.
    pub fn end_to_end(&self) -> Duration {
        self.queue_wait + self.total
    }

    /// Sum of the per-phase durations (at most [`PhaseTimings::total`]; the
    /// difference is loop bookkeeping between phases).
    pub fn measured(&self) -> Duration {
        self.phases.iter().sum()
    }
}

/// How the serving scheduler saw one query: its tenant, priority tier, and
/// deadline budget. Stamped on the trace by the serving layer **only for
/// non-default submissions** (a named tenant, a non-default priority, or a
/// deadline), so default-path traces — and their rendering — stay
/// byte-identical to the pre-tenancy scheduler. Like [`PhaseTimings`], this
/// is serving metadata, excluded from trace equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulingInfo {
    /// The tenant the query was submitted under.
    pub tenant: String,
    /// The priority tier it was submitted at.
    pub priority: Priority,
    /// The deadline budget it was submitted with, if any.
    pub deadline: Option<Duration>,
}

/// A sink that observes every [`TraceEvent`] the instant it is recorded —
/// the mechanism behind `QueryHandle::subscribe`'s live trace stream.
pub type TraceSink = Arc<dyn Fn(&TraceEvent) + Send + Sync>;

/// A full execution trace.
///
/// Equality compares the *logical* record — events, LLM-call counters, and
/// perception accounting — and ignores [`PhaseTimings`] and any attached
/// [`TraceSink`], so two byte-identical runs compare equal even though their
/// wall clocks differ.
#[derive(Clone, Default)]
pub struct ExecutionTrace {
    events: Vec<TraceEvent>,
    llm_calls: usize,
    prompt_tokens: usize,
    perception: PerceptionCalls,
    plan_cache: PlanCacheCalls,
    plan_source: Option<PlanSource>,
    timings: PhaseTimings,
    scheduling: Option<SchedulingInfo>,
    sink: Option<TraceSink>,
}

impl fmt::Debug for ExecutionTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecutionTrace")
            .field("events", &self.events)
            .field("llm_calls", &self.llm_calls)
            .field("prompt_tokens", &self.prompt_tokens)
            .field("perception", &self.perception)
            .field("plan_cache", &self.plan_cache)
            .field("plan_source", &self.plan_source)
            .field("timings", &self.timings)
            .field("scheduling", &self.scheduling)
            .field("sink", &self.sink.as_ref().map(|_| "..."))
            .finish()
    }
}

impl PartialEq for ExecutionTrace {
    fn eq(&self, other: &Self) -> bool {
        self.events == other.events
            && self.llm_calls == other.llm_calls
            && self.prompt_tokens == other.prompt_tokens
            && self.perception == other.perception
            && self.plan_cache == other.plan_cache
            && self.plan_source == other.plan_source
    }
}

impl ExecutionTrace {
    /// An empty trace.
    pub fn new() -> Self {
        ExecutionTrace::default()
    }

    /// Record an event. If a [`TraceSink`] is attached, the event is also
    /// forwarded to it immediately (live trace streaming).
    pub fn record(&mut self, phase: Phase, label: impl Into<String>, detail: impl Into<String>) {
        let event = TraceEvent {
            phase,
            label: label.into(),
            detail: detail.into(),
        };
        if let Some(sink) = &self.sink {
            sink(&event);
        }
        self.events.push(event);
    }

    /// Attach a sink observing every subsequently recorded event. The serving
    /// layer installs one per scheduled query so `QueryHandle::subscribe`
    /// streams events as they happen, and detaches it (see
    /// [`ExecutionTrace::clear_sink`]) before the finished trace is stored.
    pub fn set_sink(&mut self, sink: TraceSink) {
        self.sink = Some(sink);
    }

    /// Detach the sink, if any. Events recorded afterwards are only stored.
    pub fn clear_sink(&mut self) {
        self.sink = None;
    }

    /// Accumulate wall clock spent in one phase (phases are entered many
    /// times; durations add up).
    pub fn record_phase_duration(&mut self, phase: Phase, elapsed: Duration) {
        self.timings.phases[phase.index()] += elapsed;
    }

    /// Stamp the queue wait (submission until a scheduler worker picked the
    /// query up).
    pub fn set_queue_wait(&mut self, elapsed: Duration) {
        self.timings.queue_wait = elapsed;
    }

    /// Stamp the total run duration (worker pickup until completion).
    pub fn set_total_duration(&mut self, elapsed: Duration) {
        self.timings.total = elapsed;
    }

    /// The wall-clock timings of this run (excluded from trace equality).
    pub fn timings(&self) -> PhaseTimings {
        self.timings
    }

    /// Stamp the scheduling decision the serving layer made for this run.
    /// Only called for non-default submissions (see [`SchedulingInfo`]).
    pub fn set_scheduling(&mut self, info: SchedulingInfo) {
        self.scheduling = Some(info);
    }

    /// How the scheduler saw this run — `None` for default-path submissions
    /// and for traces produced outside the serving layer (excluded from
    /// trace equality, like timings).
    pub fn scheduling(&self) -> Option<&SchedulingInfo> {
        self.scheduling.as_ref()
    }

    /// Record one LLM completion of approximately `tokens` prompt tokens.
    /// (One completion per conversation; a batched dispatch records one call
    /// per conversation it carries, even though they share a round trip.)
    pub fn record_llm_call(&mut self, tokens: usize) {
        self.llm_calls += 1;
        self.prompt_tokens += tokens;
    }

    /// Accumulate perception-operator call accounting (batched dispatches,
    /// dedup savings, cache hits) into the query totals.
    pub fn record_perception(&mut self, delta: PerceptionCalls) {
        self.perception.rows += delta.rows;
        self.perception.calls += delta.calls;
        self.perception.batches += delta.batches;
        self.perception.saved_calls += delta.saved_calls;
        self.perception.cache_hits += delta.cache_hits;
        self.perception.cache_misses += delta.cache_misses;
        self.perception.cache_evictions += delta.cache_evictions;
        self.perception.disk_hits += delta.disk_hits;
        self.perception.disk_misses += delta.disk_misses;
        self.perception.disk_writes += delta.disk_writes;
    }

    /// Perception-operator call accounting for the whole query.
    pub fn perception_calls(&self) -> PerceptionCalls {
        self.perception
    }

    /// Accumulate validated-plan-cache accounting into the query totals.
    pub fn record_plan_cache(&mut self, delta: PlanCacheCalls) {
        self.plan_cache.hits += delta.hits;
        self.plan_cache.misses += delta.misses;
        self.plan_cache.insertions += delta.insertions;
        self.plan_cache.invalidations += delta.invalidations;
        self.plan_cache.disk_hits += delta.disk_hits;
        self.plan_cache.disk_writes += delta.disk_writes;
    }

    /// Validated-plan-cache accounting for the whole query (all zeros when
    /// the cache is off).
    pub fn plan_cache_calls(&self) -> PlanCacheCalls {
        self.plan_cache
    }

    /// Stamp where this query's plan came from. A query that fell back to
    /// live planning after a cached plan failed ends as
    /// [`PlanSource::Planned`] (the plan actually used was planned live).
    pub fn set_plan_source(&mut self, source: PlanSource) {
        self.plan_source = Some(source);
    }

    /// Where this query's plan came from (`None` when the plan cache is
    /// off, so cache-off traces stay byte-identical to pre-cache ones).
    pub fn plan_source(&self) -> Option<PlanSource> {
        self.plan_source
    }

    /// Model calls the perception batching layer saved by dedup.
    pub fn saved_llm_calls(&self) -> usize {
        self.perception.saved_calls
    }

    /// All events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of one phase.
    pub fn events_of(&self, phase: Phase) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.phase == phase).collect()
    }

    /// Number of LLM completions (see [`ExecutionTrace::record_llm_call`]).
    pub fn llm_calls(&self) -> usize {
        self.llm_calls
    }

    /// Approximate prompt tokens sent across all round trips.
    pub fn prompt_tokens(&self) -> usize {
        self.prompt_tokens
    }

    /// Number of execution errors recorded.
    pub fn error_count(&self) -> usize {
        self.events.iter().filter(|e| e.label == "error").count()
    }

    /// Whether any recovery (error-analysis) round trip happened.
    pub fn recovered(&self) -> bool {
        self.events.iter().any(|e| e.phase == Phase::Recovery)
    }

    /// Render the trace as indented text, optionally including full prompts.
    pub fn render(&self, include_prompts: bool) -> String {
        let mut out = String::new();
        let mut current_phase: Option<Phase> = None;
        for event in &self.events {
            if current_phase != Some(event.phase) {
                out.push_str(&format!("== {} Phase ==\n", event.phase));
                current_phase = Some(event.phase);
            }
            if !include_prompts && (event.label == "prompt" || event.label == "response") {
                let preview: String = event.detail.chars().take(120).collect();
                out.push_str(&format!(
                    "  [{}] {}...\n",
                    event.label,
                    preview.replace('\n', " ")
                ));
            } else {
                out.push_str(&format!("  [{}] {}\n", event.label, event.detail));
            }
        }
        out.push_str(&format!(
            "== Totals: {} LLM call(s), ~{} prompt tokens, {} execution error(s) ==\n",
            self.llm_calls,
            self.prompt_tokens,
            self.error_count()
        ));
        if self.perception.rows > 0 || self.perception.calls > 0 || self.perception.cache_hits > 0 {
            out.push_str(&format!(
                "== Perception: {} row(s) -> {} model call(s) in {} batch(es), {} saved by dedup ==\n",
                self.perception.rows,
                self.perception.calls,
                self.perception.batches,
                self.perception.saved_calls
            ));
            if self.perception.cache_hits > 0 || self.perception.cache_misses > 0 {
                out.push_str(&format!(
                    "== Perception cache: {} hit(s), {} miss(es), {} eviction(s) ==\n",
                    self.perception.cache_hits,
                    self.perception.cache_misses,
                    self.perception.cache_evictions
                ));
            }
            // Per-tier breakdown, rendered only when the disk tier actually
            // participated so disk-off traces stay byte-identical.
            if self.perception.disk_hits > 0
                || self.perception.disk_misses > 0
                || self.perception.disk_writes > 0
            {
                out.push_str(&format!(
                    "== Perception tiers: memory {} hit(s), disk {} hit(s), {} miss(es), {} write(s) ==\n",
                    self.perception.cache_hits,
                    self.perception.disk_hits,
                    self.perception.disk_misses,
                    self.perception.disk_writes
                ));
            }
        }
        if let Some(source) = self.plan_source {
            out.push_str(&format!(
                "== Plan cache: source {}, {} hit(s), {} miss(es), {} insertion(s), {} invalidation(s) ==\n",
                source,
                self.plan_cache.hits,
                self.plan_cache.misses,
                self.plan_cache.insertions,
                self.plan_cache.invalidations
            ));
            // Per-tier breakdown, rendered only when the disk tier actually
            // participated so disk-off traces stay byte-identical.
            if self.plan_cache.disk_hits > 0 || self.plan_cache.disk_writes > 0 {
                out.push_str(&format!(
                    "== Plan-cache tiers: memory {} hit(s), disk {} hit(s), {} write(s) ==\n",
                    self.plan_cache
                        .hits
                        .saturating_sub(self.plan_cache.disk_hits),
                    self.plan_cache.disk_hits,
                    self.plan_cache.disk_writes
                ));
            }
        }
        if let Some(scheduling) = &self.scheduling {
            out.push_str(&format!(
                "== Scheduling: tenant '{}', priority {}{} ==\n",
                scheduling.tenant,
                scheduling.priority,
                match scheduling.deadline {
                    Some(deadline) => format!(", deadline {deadline:.1?}"),
                    None => String::new(),
                }
            ));
        }
        if self.timings.total > Duration::ZERO {
            out.push_str(&format!(
                "== Timings: {:.1?} total ({:.1?} queued), per phase: discovery {:.1?}, planning {:.1?}, mapping {:.1?}, execution {:.1?}, recovery {:.1?} ==\n",
                self.timings.total,
                self.timings.queue_wait,
                self.timings.of(Phase::Discovery),
                self.timings.of(Phase::Planning),
                self.timings.of(Phase::Mapping),
                self.timings.of(Phase::Execution),
                self.timings.of(Phase::Recovery),
            ));
        }
        out
    }
}

impl fmt::Display for ExecutionTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_recorded_and_grouped_by_phase() {
        let mut trace = ExecutionTrace::new();
        trace.record(Phase::Planning, "prompt", "You are CAESURA ...");
        trace.record(Phase::Planning, "response", "Step 1: ...");
        trace.record(Phase::Mapping, "decision", "Operator: SQL Join");
        trace.record(Phase::Execution, "observation", "New column added");
        trace.record_llm_call(250);
        trace.record_llm_call(100);
        assert_eq!(trace.events().len(), 4);
        assert_eq!(trace.events_of(Phase::Planning).len(), 2);
        assert_eq!(trace.llm_calls(), 2);
        assert_eq!(trace.prompt_tokens(), 350);
        assert!(!trace.recovered());
    }

    #[test]
    fn error_counting_and_rendering() {
        let mut trace = ExecutionTrace::new();
        trace.record(Phase::Execution, "error", "unknown column 'x'");
        trace.record(Phase::Recovery, "analysis", "Update arguments: Yes");
        assert_eq!(trace.error_count(), 1);
        assert!(trace.recovered());
        let rendered = trace.render(false);
        assert!(rendered.contains("Execution Phase"));
        assert!(rendered.contains("Recovery Phase"));
        assert!(rendered.contains("unknown column"));
    }

    #[test]
    fn perception_calls_accumulate_and_render() {
        let mut trace = ExecutionTrace::new();
        assert_eq!(trace.perception_calls(), PerceptionCalls::default());
        trace.record_perception(PerceptionCalls {
            rows: 10,
            calls: 4,
            batches: 1,
            saved_calls: 6,
            ..PerceptionCalls::default()
        });
        trace.record_perception(PerceptionCalls {
            rows: 5,
            calls: 5,
            batches: 2,
            saved_calls: 0,
            cache_hits: 2,
            cache_misses: 5,
            cache_evictions: 1,
            ..PerceptionCalls::default()
        });
        let perception = trace.perception_calls();
        assert_eq!(perception.rows, 15);
        assert_eq!(perception.calls, 9);
        assert_eq!(perception.batches, 3);
        assert_eq!(perception.cache_hits, 2);
        assert_eq!(perception.cache_misses, 5);
        assert_eq!(perception.cache_evictions, 1);
        assert_eq!(trace.saved_llm_calls(), 6);
        let rendered = trace.render(false);
        assert!(rendered.contains("9 model call(s)"));
        assert!(rendered.contains("6 saved by dedup"));
        assert!(rendered.contains("2 hit(s)"));
    }

    #[test]
    fn plan_cache_calls_accumulate_render_and_affect_equality() {
        let mut a = ExecutionTrace::new();
        let b = ExecutionTrace::new();
        assert_eq!(a.plan_cache_calls(), PlanCacheCalls::default());
        assert_eq!(a.plan_source(), None);
        assert_eq!(a, b, "all-zero plan-cache state compares equal");
        a.set_plan_source(PlanSource::Cached);
        a.record_plan_cache(PlanCacheCalls {
            hits: 1,
            ..PlanCacheCalls::default()
        });
        a.record_plan_cache(PlanCacheCalls {
            invalidations: 1,
            ..PlanCacheCalls::default()
        });
        let calls = a.plan_cache_calls();
        assert_eq!((calls.hits, calls.invalidations), (1, 1));
        assert_eq!(a.plan_source(), Some(PlanSource::Cached));
        // Plan provenance is part of the logical record, unlike timings.
        assert_ne!(a, b);
        let rendered = a.render(false);
        assert!(rendered.contains("source cached"));
        assert!(rendered.contains("1 hit(s)"));
        assert!(!b.render(false).contains("Plan cache"));
    }

    #[test]
    fn timings_accumulate_but_do_not_affect_equality() {
        let mut a = ExecutionTrace::new();
        let mut b = ExecutionTrace::new();
        for trace in [&mut a, &mut b] {
            trace.record(Phase::Planning, "prompt", "p");
            trace.record_llm_call(10);
        }
        a.record_phase_duration(Phase::Planning, Duration::from_millis(5));
        a.record_phase_duration(Phase::Planning, Duration::from_millis(3));
        a.record_phase_duration(Phase::Execution, Duration::from_millis(2));
        a.set_queue_wait(Duration::from_millis(1));
        a.set_total_duration(Duration::from_millis(12));
        assert_eq!(a.timings().of(Phase::Planning), Duration::from_millis(8));
        assert_eq!(a.timings().measured(), Duration::from_millis(10));
        assert_eq!(a.timings().total(), Duration::from_millis(12));
        assert_eq!(a.timings().end_to_end(), Duration::from_millis(13));
        // Identical logical record, different wall clocks: still equal.
        assert_eq!(a, b);
        assert!(a.render(false).contains("Timings"));
        assert!(!b.render(false).contains("Timings"));
        // But a different logical record is unequal.
        b.record(Phase::Mapping, "decision", "d");
        assert_ne!(a, b);
    }

    #[test]
    fn sinks_observe_events_live_and_detach() {
        use std::sync::{Arc, Mutex};
        let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let mut trace = ExecutionTrace::new();
        let sink_seen = Arc::clone(&seen);
        trace.set_sink(Arc::new(move |event: &TraceEvent| {
            sink_seen.lock().unwrap().push(event.label.clone());
        }));
        trace.record(Phase::Planning, "prompt", "p");
        trace.record(Phase::Planning, "response", "r");
        trace.clear_sink();
        trace.record(Phase::Mapping, "decision", "d");
        assert_eq!(*seen.lock().unwrap(), vec!["prompt", "response"]);
        assert_eq!(trace.events().len(), 3);
        // Sinks never participate in equality.
        let plain = {
            let mut t = ExecutionTrace::new();
            t.record(Phase::Planning, "prompt", "p");
            t.record(Phase::Planning, "response", "r");
            t.record(Phase::Mapping, "decision", "d");
            t
        };
        assert_eq!(trace, plain);
    }

    #[test]
    fn scheduling_info_renders_but_does_not_affect_equality() {
        let mut a = ExecutionTrace::new();
        let b = ExecutionTrace::new();
        assert!(a.scheduling().is_none());
        a.set_scheduling(SchedulingInfo {
            tenant: "acme".into(),
            priority: Priority::BATCH,
            deadline: Some(Duration::from_millis(500)),
        });
        // Scheduling is serving metadata, like timings: equal logical record.
        assert_eq!(a, b);
        let info = a.scheduling().expect("stamped");
        assert_eq!(info.tenant, "acme");
        let rendered = a.render(false);
        assert!(rendered.contains("tenant 'acme'"));
        assert!(rendered.contains("priority batch"));
        assert!(rendered.contains("deadline"));
        // Default-path traces render no scheduling line at all.
        assert!(!b.render(false).contains("Scheduling"));
    }

    #[test]
    fn long_prompts_are_truncated_unless_requested() {
        let mut trace = ExecutionTrace::new();
        let long = "word ".repeat(200);
        trace.record(Phase::Planning, "prompt", long.clone());
        assert!(trace.render(false).len() < long.len());
        assert!(trace.render(true).contains(&long));
    }
}
