//! Execution traces: a readable record of every phase, prompt, response,
//! decision, observation, and recovery attempt of one query.
//!
//! The trace is what the `figure2_pipeline` binary prints to reproduce the
//! multi-phase prompting picture of the paper, and what the evaluation crate
//! inspects to categorize errors (Table 2).

use std::fmt;

/// The phase a trace event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Data discovery (retrieval + column relevance).
    Discovery,
    /// Logical-plan generation.
    Planning,
    /// Operator mapping (one event per step).
    Mapping,
    /// Operator execution.
    Execution,
    /// Error analysis / recovery.
    Recovery,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Phase::Discovery => "Discovery",
            Phase::Planning => "Planning",
            Phase::Mapping => "Mapping",
            Phase::Execution => "Execution",
            Phase::Recovery => "Recovery",
        };
        f.write_str(name)
    }
}

/// One event of the execution trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Which phase produced the event.
    pub phase: Phase,
    /// Short label ("prompt", "response", "decision", "observation", "error", ...).
    pub label: String,
    /// The event payload (prompt text, observation text, error message, ...).
    pub detail: String,
}

/// Per-query accounting of the batched perception-operator model calls
/// (VisualQA / TextQA / Image Select / transform codegen). Mirrors
/// `caesura_modal::BatchStats`, kept as plain counters so the trace stays
/// decoupled from the modal types.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerceptionCalls {
    /// Input rows the perception operators walked.
    pub rows: usize,
    /// Unique model calls actually dispatched to the backend (cache hits
    /// never dispatch, so with a warm cache this can be 0).
    pub calls: usize,
    /// Batched dispatches carrying those calls.
    pub batches: usize,
    /// Model calls avoided by deduplication versus one call per row.
    pub saved_calls: usize,
    /// Unique requests answered by the session's perception cache.
    pub cache_hits: usize,
    /// Unique requests probed against the cache and dispatched instead.
    pub cache_misses: usize,
    /// Cache entries evicted while storing this query's answers.
    pub cache_evictions: usize,
}

/// A full execution trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionTrace {
    events: Vec<TraceEvent>,
    llm_calls: usize,
    prompt_tokens: usize,
    perception: PerceptionCalls,
}

impl ExecutionTrace {
    /// An empty trace.
    pub fn new() -> Self {
        ExecutionTrace::default()
    }

    /// Record an event.
    pub fn record(&mut self, phase: Phase, label: impl Into<String>, detail: impl Into<String>) {
        self.events.push(TraceEvent {
            phase,
            label: label.into(),
            detail: detail.into(),
        });
    }

    /// Record one LLM completion of approximately `tokens` prompt tokens.
    /// (One completion per conversation; a batched dispatch records one call
    /// per conversation it carries, even though they share a round trip.)
    pub fn record_llm_call(&mut self, tokens: usize) {
        self.llm_calls += 1;
        self.prompt_tokens += tokens;
    }

    /// Accumulate perception-operator call accounting (batched dispatches,
    /// dedup savings, cache hits) into the query totals.
    pub fn record_perception(&mut self, delta: PerceptionCalls) {
        self.perception.rows += delta.rows;
        self.perception.calls += delta.calls;
        self.perception.batches += delta.batches;
        self.perception.saved_calls += delta.saved_calls;
        self.perception.cache_hits += delta.cache_hits;
        self.perception.cache_misses += delta.cache_misses;
        self.perception.cache_evictions += delta.cache_evictions;
    }

    /// Perception-operator call accounting for the whole query.
    pub fn perception_calls(&self) -> PerceptionCalls {
        self.perception
    }

    /// Model calls the perception batching layer saved by dedup.
    pub fn saved_llm_calls(&self) -> usize {
        self.perception.saved_calls
    }

    /// All events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of one phase.
    pub fn events_of(&self, phase: Phase) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.phase == phase).collect()
    }

    /// Number of LLM completions (see [`ExecutionTrace::record_llm_call`]).
    pub fn llm_calls(&self) -> usize {
        self.llm_calls
    }

    /// Approximate prompt tokens sent across all round trips.
    pub fn prompt_tokens(&self) -> usize {
        self.prompt_tokens
    }

    /// Number of execution errors recorded.
    pub fn error_count(&self) -> usize {
        self.events.iter().filter(|e| e.label == "error").count()
    }

    /// Whether any recovery (error-analysis) round trip happened.
    pub fn recovered(&self) -> bool {
        self.events.iter().any(|e| e.phase == Phase::Recovery)
    }

    /// Render the trace as indented text, optionally including full prompts.
    pub fn render(&self, include_prompts: bool) -> String {
        let mut out = String::new();
        let mut current_phase: Option<Phase> = None;
        for event in &self.events {
            if current_phase != Some(event.phase) {
                out.push_str(&format!("== {} Phase ==\n", event.phase));
                current_phase = Some(event.phase);
            }
            if !include_prompts && (event.label == "prompt" || event.label == "response") {
                let preview: String = event.detail.chars().take(120).collect();
                out.push_str(&format!(
                    "  [{}] {}...\n",
                    event.label,
                    preview.replace('\n', " ")
                ));
            } else {
                out.push_str(&format!("  [{}] {}\n", event.label, event.detail));
            }
        }
        out.push_str(&format!(
            "== Totals: {} LLM call(s), ~{} prompt tokens, {} execution error(s) ==\n",
            self.llm_calls,
            self.prompt_tokens,
            self.error_count()
        ));
        if self.perception.rows > 0 || self.perception.calls > 0 || self.perception.cache_hits > 0 {
            out.push_str(&format!(
                "== Perception: {} row(s) -> {} model call(s) in {} batch(es), {} saved by dedup ==\n",
                self.perception.rows,
                self.perception.calls,
                self.perception.batches,
                self.perception.saved_calls
            ));
            if self.perception.cache_hits > 0 || self.perception.cache_misses > 0 {
                out.push_str(&format!(
                    "== Perception cache: {} hit(s), {} miss(es), {} eviction(s) ==\n",
                    self.perception.cache_hits,
                    self.perception.cache_misses,
                    self.perception.cache_evictions
                ));
            }
        }
        out
    }
}

impl fmt::Display for ExecutionTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_recorded_and_grouped_by_phase() {
        let mut trace = ExecutionTrace::new();
        trace.record(Phase::Planning, "prompt", "You are CAESURA ...");
        trace.record(Phase::Planning, "response", "Step 1: ...");
        trace.record(Phase::Mapping, "decision", "Operator: SQL Join");
        trace.record(Phase::Execution, "observation", "New column added");
        trace.record_llm_call(250);
        trace.record_llm_call(100);
        assert_eq!(trace.events().len(), 4);
        assert_eq!(trace.events_of(Phase::Planning).len(), 2);
        assert_eq!(trace.llm_calls(), 2);
        assert_eq!(trace.prompt_tokens(), 350);
        assert!(!trace.recovered());
    }

    #[test]
    fn error_counting_and_rendering() {
        let mut trace = ExecutionTrace::new();
        trace.record(Phase::Execution, "error", "unknown column 'x'");
        trace.record(Phase::Recovery, "analysis", "Update arguments: Yes");
        assert_eq!(trace.error_count(), 1);
        assert!(trace.recovered());
        let rendered = trace.render(false);
        assert!(rendered.contains("Execution Phase"));
        assert!(rendered.contains("Recovery Phase"));
        assert!(rendered.contains("unknown column"));
    }

    #[test]
    fn perception_calls_accumulate_and_render() {
        let mut trace = ExecutionTrace::new();
        assert_eq!(trace.perception_calls(), PerceptionCalls::default());
        trace.record_perception(PerceptionCalls {
            rows: 10,
            calls: 4,
            batches: 1,
            saved_calls: 6,
            ..PerceptionCalls::default()
        });
        trace.record_perception(PerceptionCalls {
            rows: 5,
            calls: 5,
            batches: 2,
            saved_calls: 0,
            cache_hits: 2,
            cache_misses: 5,
            cache_evictions: 1,
        });
        let perception = trace.perception_calls();
        assert_eq!(perception.rows, 15);
        assert_eq!(perception.calls, 9);
        assert_eq!(perception.batches, 3);
        assert_eq!(perception.cache_hits, 2);
        assert_eq!(perception.cache_misses, 5);
        assert_eq!(perception.cache_evictions, 1);
        assert_eq!(trace.saved_llm_calls(), 6);
        let rendered = trace.render(false);
        assert!(rendered.contains("9 model call(s)"));
        assert!(rendered.contains("6 saved by dedup"));
        assert!(rendered.contains("2 hit(s)"));
    }

    #[test]
    fn long_prompts_are_truncated_unless_requested() {
        let mut trace = ExecutionTrace::new();
        let long = "word ".repeat(200);
        trace.record(Phase::Planning, "prompt", long.clone());
        assert!(trace.render(false).len() < long.len());
        assert!(trace.render(true).contains(&long));
    }
}
