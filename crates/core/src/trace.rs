//! Execution traces: a readable record of every phase, prompt, response,
//! decision, observation, and recovery attempt of one query.
//!
//! The trace is what the `figure2_pipeline` binary prints to reproduce the
//! multi-phase prompting picture of the paper, and what the evaluation crate
//! inspects to categorize errors (Table 2).

use std::fmt;

/// The phase a trace event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Data discovery (retrieval + column relevance).
    Discovery,
    /// Logical-plan generation.
    Planning,
    /// Operator mapping (one event per step).
    Mapping,
    /// Operator execution.
    Execution,
    /// Error analysis / recovery.
    Recovery,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Phase::Discovery => "Discovery",
            Phase::Planning => "Planning",
            Phase::Mapping => "Mapping",
            Phase::Execution => "Execution",
            Phase::Recovery => "Recovery",
        };
        f.write_str(name)
    }
}

/// One event of the execution trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Which phase produced the event.
    pub phase: Phase,
    /// Short label ("prompt", "response", "decision", "observation", "error", ...).
    pub label: String,
    /// The event payload (prompt text, observation text, error message, ...).
    pub detail: String,
}

/// A full execution trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionTrace {
    events: Vec<TraceEvent>,
    llm_calls: usize,
    prompt_tokens: usize,
}

impl ExecutionTrace {
    /// An empty trace.
    pub fn new() -> Self {
        ExecutionTrace::default()
    }

    /// Record an event.
    pub fn record(&mut self, phase: Phase, label: impl Into<String>, detail: impl Into<String>) {
        self.events.push(TraceEvent {
            phase,
            label: label.into(),
            detail: detail.into(),
        });
    }

    /// Record one LLM round trip of approximately `tokens` prompt tokens.
    pub fn record_llm_call(&mut self, tokens: usize) {
        self.llm_calls += 1;
        self.prompt_tokens += tokens;
    }

    /// All events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of one phase.
    pub fn events_of(&self, phase: Phase) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.phase == phase).collect()
    }

    /// Number of LLM round trips.
    pub fn llm_calls(&self) -> usize {
        self.llm_calls
    }

    /// Approximate prompt tokens sent across all round trips.
    pub fn prompt_tokens(&self) -> usize {
        self.prompt_tokens
    }

    /// Number of execution errors recorded.
    pub fn error_count(&self) -> usize {
        self.events.iter().filter(|e| e.label == "error").count()
    }

    /// Whether any recovery (error-analysis) round trip happened.
    pub fn recovered(&self) -> bool {
        self.events.iter().any(|e| e.phase == Phase::Recovery)
    }

    /// Render the trace as indented text, optionally including full prompts.
    pub fn render(&self, include_prompts: bool) -> String {
        let mut out = String::new();
        let mut current_phase: Option<Phase> = None;
        for event in &self.events {
            if current_phase != Some(event.phase) {
                out.push_str(&format!("== {} Phase ==\n", event.phase));
                current_phase = Some(event.phase);
            }
            if !include_prompts && (event.label == "prompt" || event.label == "response") {
                let preview: String = event.detail.chars().take(120).collect();
                out.push_str(&format!(
                    "  [{}] {}...\n",
                    event.label,
                    preview.replace('\n', " ")
                ));
            } else {
                out.push_str(&format!("  [{}] {}\n", event.label, event.detail));
            }
        }
        out.push_str(&format!(
            "== Totals: {} LLM call(s), ~{} prompt tokens, {} execution error(s) ==\n",
            self.llm_calls,
            self.prompt_tokens,
            self.error_count()
        ));
        out
    }
}

impl fmt::Display for ExecutionTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_recorded_and_grouped_by_phase() {
        let mut trace = ExecutionTrace::new();
        trace.record(Phase::Planning, "prompt", "You are CAESURA ...");
        trace.record(Phase::Planning, "response", "Step 1: ...");
        trace.record(Phase::Mapping, "decision", "Operator: SQL Join");
        trace.record(Phase::Execution, "observation", "New column added");
        trace.record_llm_call(250);
        trace.record_llm_call(100);
        assert_eq!(trace.events().len(), 4);
        assert_eq!(trace.events_of(Phase::Planning).len(), 2);
        assert_eq!(trace.llm_calls(), 2);
        assert_eq!(trace.prompt_tokens(), 350);
        assert!(!trace.recovered());
    }

    #[test]
    fn error_counting_and_rendering() {
        let mut trace = ExecutionTrace::new();
        trace.record(Phase::Execution, "error", "unknown column 'x'");
        trace.record(Phase::Recovery, "analysis", "Update arguments: Yes");
        assert_eq!(trace.error_count(), 1);
        assert!(trace.recovered());
        let rendered = trace.render(false);
        assert!(rendered.contains("Execution Phase"));
        assert!(rendered.contains("Recovery Phase"));
        assert!(rendered.contains("unknown column"));
    }

    #[test]
    fn long_prompts_are_truncated_unless_requested() {
        let mut trace = ExecutionTrace::new();
        let long = "word ".repeat(200);
        trace.record(Phase::Planning, "prompt", long.clone());
        assert!(trace.render(false).len() < long.len());
        assert!(trace.render(true).contains(&long));
    }
}
