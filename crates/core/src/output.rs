//! Query outputs: "the result for user queries in our system can range from
//! single values, over tables, to even a plot" (§1 of the paper).

use caesura_engine::{Table, Value};
use caesura_modal::Plot;
use std::fmt;

/// The final answer of a CAESURA query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// A single scalar value.
    Value(Value),
    /// A result table.
    Table(Table),
    /// A plot of the result table (the table it was built from is retained for
    /// inspection and grading).
    Plot {
        /// The rendered plot.
        plot: Plot,
        /// The table the plot was produced from.
        table: Table,
    },
}

impl QueryOutput {
    /// Build the output from the final result table, collapsing 1×1 tables to
    /// a single value.
    pub fn from_table(table: Table) -> QueryOutput {
        if table.num_rows() == 1 && table.num_columns() == 1 {
            QueryOutput::Value(table.cell(0, 0).unwrap_or(Value::Null))
        } else {
            QueryOutput::Table(table)
        }
    }

    /// The output kind as a short label ("value" / "table" / "plot").
    pub fn kind(&self) -> &'static str {
        match self {
            QueryOutput::Value(_) => "value",
            QueryOutput::Table(_) => "table",
            QueryOutput::Plot { .. } => "plot",
        }
    }

    /// The scalar value, if the output is a single value.
    pub fn as_value(&self) -> Option<&Value> {
        match self {
            QueryOutput::Value(v) => Some(v),
            _ => None,
        }
    }

    /// The result table backing this output (also available for plots).
    pub fn table(&self) -> Option<&Table> {
        match self {
            QueryOutput::Table(t) => Some(t),
            QueryOutput::Plot { table, .. } => Some(table),
            QueryOutput::Value(_) => None,
        }
    }

    /// The plot, if the output is a plot.
    pub fn plot(&self) -> Option<&Plot> {
        match self {
            QueryOutput::Plot { plot, .. } => Some(plot),
            _ => None,
        }
    }
}

impl fmt::Display for QueryOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryOutput::Value(v) => write!(f, "{v}"),
            QueryOutput::Table(t) => write!(f, "{}", t.pretty(20)),
            QueryOutput::Plot { plot, .. } => write!(f, "{}", plot.render_text()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesura_engine::{DataType, Schema, TableBuilder};

    #[test]
    fn single_cell_tables_collapse_to_values() {
        let schema = Schema::from_pairs(&[("n", DataType::Int)]);
        let mut b = TableBuilder::new("result", schema);
        b.push_row(vec![Value::Int(42)]).unwrap();
        let output = QueryOutput::from_table(b.build());
        assert_eq!(output.kind(), "value");
        assert_eq!(output.as_value(), Some(&Value::Int(42)));
    }

    #[test]
    fn multi_row_tables_stay_tables() {
        let schema = Schema::from_pairs(&[("n", DataType::Int)]);
        let mut b = TableBuilder::new("result", schema);
        b.push_row(vec![Value::Int(1)]).unwrap();
        b.push_row(vec![Value::Int(2)]).unwrap();
        let output = QueryOutput::from_table(b.build());
        assert_eq!(output.kind(), "table");
        assert_eq!(output.table().unwrap().num_rows(), 2);
        assert!(output.as_value().is_none());
        assert!(output.plot().is_none());
    }

    #[test]
    fn display_renders_each_kind() {
        let output = QueryOutput::Value(Value::str("yes"));
        assert_eq!(output.to_string(), "yes");
    }
}
