//! # caesura-core
//!
//! The CAESURA system itself: Language-Model-Driven Query Planning over
//! multi-modal data lakes (CIDR 2024).
//!
//! A [`Caesura`] session wraps a [`DataLake`](caesura_data::DataLake) and an
//! [`LlmClient`](caesura_llm::LlmClient) and answers natural-language queries
//! by running the three phases of the paper: **discovery** (retrieval +
//! column relevance), **planning** (a step-wise logical plan generated from a
//! prompt), and **mapping interleaved with execution** (each step is mapped to
//! a physical operator, executed immediately, and the observation is fed back
//! into the next mapping prompt). Execution errors trigger the error-analysis
//! prompt of §3.2, which decides whether to retry the step with corrected
//! arguments or to backtrack to the planning phase.
//!
//! The session also owns the scaling state that must outlive a single query:
//! the pinned `ExecConfig`/`BatchConfig` knobs, the session-scoped
//! perception answer cache (`caesura_modal::cache`) that collapses repeated
//! perception questions across plan steps and across queries over the
//! session's `Arc`-shared lake, and — since PR 5 — the serving scheduler
//! ([`serving`]): [`Caesura::submit`] enqueues a query on a persistent
//! worker pool and returns a [`QueryHandle`] supporting `wait` / `poll` /
//! cooperative `cancel` / a live `subscribe` trace stream, so many in-flight
//! queries share one lake, retriever index, and perception cache. Since
//! PR 8 the scheduler is tenant-aware ([`sched`]): [`Caesura::submit_with`]
//! tags a submission with a [`SubmitOptions`] (tenant, priority tier,
//! deadline), admission is typed ([`AdmissionError`]) instead of unbounded
//! queue wait, dequeue is weighted-fair per tenant under strict priority
//! tiers, and cancellation/deadlines interrupt even mid-LLM-dispatch through
//! the cancellable transport (`caesura_llm::CancelToken`). The blocking
//! [`Caesura::run`] / [`Caesura::query`] wrappers are byte-identical to
//! `submit(q).wait()`.
//!
//! ```
//! use caesura_core::Caesura;
//! use caesura_data::{generate_artwork, ArtworkConfig};
//! use caesura_llm::SimulatedLlm;
//! use std::sync::Arc;
//!
//! let data = generate_artwork(&ArtworkConfig::small());
//! let caesura = Caesura::new(data.lake, Arc::new(SimulatedLlm::gpt4()));
//! let output = caesura.query("How many paintings are in the museum?").unwrap();
//! assert_eq!(output.kind(), "value");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod discovery;
pub mod error;
pub mod executor;
pub mod output;
pub mod sched;
pub mod serving;
pub mod session;
pub mod trace;

pub use discovery::{lexical_relevant_columns, Retriever};
pub use error::{CoreError, CoreResult};
pub use executor::{Executor, StepOutcome};
pub use output::QueryOutput;
pub use sched::{AdmissionError, Priority, SubmitOptions, TenantServingStats};
pub use serving::{QueryHandle, QueryStatus, ServingStats};
pub use session::{Caesura, CaesuraConfig, QueryRun};
pub use trace::{
    ExecutionTrace, PerceptionCalls, Phase, PhaseTimings, PlanCacheCalls, PlanSource,
    SchedulingInfo, TraceEvent, TraceSink,
};
