//! The CAESURA session: the public entry point that ties discovery, planning,
//! mapping, interleaved execution, and error recovery together (Figure 2 of
//! the paper).
//!
//! Since PR 5 the session is a **concurrent serving surface**: queries enter
//! through [`Caesura::submit`], which enqueues them on a session-owned
//! scheduler (see [`crate::serving`]) and returns a [`QueryHandle`]
//! immediately. N in-flight queries share one lake, one retriever index, and
//! one perception cache. The blocking [`Caesura::run`] / [`Caesura::query`]
//! methods are thin wrappers — `run(q)` is exactly `submit(q).wait()`, with
//! byte-identical outputs, trace events, and perception stats.

use crate::discovery::{lexical_relevant_columns, Retriever};
use crate::error::{CoreError, CoreResult};
use crate::executor::{Executor, StepOutcome};
use crate::output::QueryOutput;
use crate::sched::{AdmissionError, SchedPolicy, SubmitOptions, TenantServingStats};
use crate::serving::{JobState, QueryHandle, Scheduler, ServingStats};
use crate::trace::{ExecutionTrace, Phase, PlanCacheCalls, PlanSource};
use caesura_data::DataLake;
use caesura_engine::{parallel, Catalog, ExecConfig};
use caesura_llm::{
    normalize_query, schema_fingerprint, CancelStatus, CancelToken, Conversation, ErrorAnalysis,
    LlmClient, LlmError, LogicalPlan, LogicalStep, OperatorDecision, PlanCache, PlanCacheConfig,
    PlanInsertOutcome, PromptBuilder, PromptConfig, RelevantColumn,
};
use caesura_modal::{BatchConfig, CacheConfig, PerceptionCache};
use caesura_store::{CacheStore, PersistConfig};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Configuration of a CAESURA session.
#[derive(Debug, Clone, PartialEq)]
pub struct CaesuraConfig {
    /// Include few-shot examples in the planning prompt (§3.1).
    pub few_shot: bool,
    /// Interleave mapping and execution (§3.1). When disabled, all operator
    /// decisions are made up front without observations — the ablation studied
    /// by the `ablation_interleaving` benchmark.
    pub interleaved: bool,
    /// Use the LLM discovery prompt to pick relevant columns. When disabled
    /// (the paper's evaluation setting) relevance is computed lexically,
    /// emulating perfect retrieval.
    pub llm_discovery: bool,
    /// How many tables dense retrieval keeps for the planner.
    pub retrieval_top_k: usize,
    /// Example values per relevant column shown in prompts.
    pub example_values: usize,
    /// Maximum execution attempts per step (1 = no error recovery).
    pub max_step_attempts: usize,
    /// Maximum full replans after an unrecoverable error.
    pub max_replans: usize,
    /// Execution configuration (worker threads, morsel size) pinned for the
    /// relational operators of this session's queries. `None` uses the
    /// process default (`CAESURA_THREADS` / hardware parallelism);
    /// `Some(ExecConfig::sequential())` forces the single-threaded paths.
    pub exec: Option<ExecConfig>,
    /// Batching configuration (batch size) for the perception-operator model
    /// calls. `None` uses the environment default (`CAESURA_LLM_BATCH`);
    /// `Some(BatchConfig::new(1))` forces one dispatch per unique request
    /// (requests are deduplicated either way).
    pub llm_batch: Option<BatchConfig>,
    /// Session-scoped perception answer cache configuration. `None` uses the
    /// environment default (`CAESURA_PERCEPTION_CACHE`);
    /// `Some(CacheConfig::off())` disables caching, byte-for-byte preserving
    /// the uncached dispatch behaviour. When enabled, the session owns one
    /// cache shared by every query it runs, so a question re-asked by a
    /// later plan step or a back-to-back query costs zero model calls.
    pub perception_cache: Option<CacheConfig>,
    /// Session-scoped validated-plan cache configuration. `None` uses the
    /// environment default (`CAESURA_PLAN_CACHE`);
    /// `Some(PlanCacheConfig::off())` disables plan caching, byte-for-byte
    /// preserving the always-plan-live behaviour. When enabled, a query
    /// whose `(schema fingerprint, query template)` matches a previously
    /// validated plan skips the planning **and** mapping phases entirely —
    /// zero planner LLM calls — and a cached plan that fails at execution is
    /// evicted and re-planned live (see `caesura_llm::plan_cache`).
    pub plan_cache: Option<PlanCacheConfig>,
    /// Worker threads of the session's serving scheduler — how many
    /// submitted queries run concurrently. `None` uses the environment
    /// default (`CAESURA_SESSION_WORKERS`, falling back to hardware
    /// parallelism); `Some(1)` serializes all queries through one worker,
    /// preserving submission order end to end. Note the oversubscription
    /// math: each in-flight query may additionally fan relational operators
    /// out over `CAESURA_THREADS` morsel workers.
    pub session_workers: Option<usize>,
    /// Bound of the serving scheduler's submission queue. `None` uses the
    /// environment default (`CAESURA_SESSION_QUEUE`, falling back to
    /// [`crate::serving::DEFAULT_QUEUE_DEPTH`]). A full queue applies
    /// backpressure: [`Caesura::submit`] blocks until a slot frees, while
    /// [`Caesura::try_submit`] / [`Caesura::submit_with`] fail fast with
    /// [`AdmissionError::QueueFull`].
    pub session_queue: Option<usize>,
    /// Whether the serving scheduler runs its tenant-aware fair policy
    /// (priority tiers preempting at dequeue, deficit round robin across
    /// tenant lanes within a tier). `None` uses the environment default
    /// (`CAESURA_FAIR_SCHED`, on unless disabled); `Some(false)` forces the
    /// single FIFO of the pre-tenancy scheduler — pop order equals
    /// submission order regardless of tenant or priority, byte-for-byte the
    /// PR 5 behaviour (the CI matrix proves this on every commit). Admission
    /// control (quotas, deadlines) stays active either way.
    pub fair_sched: Option<bool>,
    /// Number of priority tiers the fair scheduler maintains. `None` uses
    /// the environment default (`CAESURA_PRIORITY_TIERS`, default 2:
    /// interactive above batch); priorities beyond the count clamp to the
    /// lowest tier, so `Some(1)` collapses all priorities into one tier.
    pub priority_tiers: Option<usize>,
    /// Per-tenant admission quota: the maximum queued + in-flight queries a
    /// tenant may have before fail-fast submissions are rejected with
    /// [`AdmissionError::TenantOverQuota`] (blocking `submit` waits
    /// instead). `None` uses the environment default
    /// (`CAESURA_TENANT_QUOTA`, unlimited unless set); `Some(0)` explicitly
    /// means unlimited, matching the env convention that `0` disables the
    /// quota.
    pub tenant_quota: Option<usize>,
    /// Deficit-round-robin weight per tenant name: a weight-w tenant takes w
    /// consecutive dequeues per round within its tier. Unlisted tenants
    /// (including the default tenant) weigh 1.
    pub tenant_weights: Vec<(String, u32)>,
    /// Whether table ingest dictionary-encodes low-cardinality string
    /// columns (see `caesura_engine::dict`). `None` uses the environment
    /// default (`CAESURA_DICT_ENCODE`, on unless disabled); `Some(..)`
    /// overrides the process-wide knob at session construction — it affects
    /// tables ingested from then on, not tables already in the lake.
    pub dict_encode: Option<bool>,
    /// Persistent on-disk cache tier below the in-memory perception and
    /// plan caches (see `caesura_store`). `None` disables the tier — the
    /// byte-for-byte pre-store behaviour. The default is the environment
    /// configuration: `CAESURA_CACHE_DIR` names the store directory (unset
    /// or empty means fully off) and `CAESURA_DISK_PERCEPTION` /
    /// `CAESURA_DISK_PLANS` gate the tiers individually. A tier whose
    /// in-memory cache is disabled skips its disk tier too: the store is a
    /// second tier *under* the memory cache, never a replacement for it.
    pub persist: Option<PersistConfig>,
}

impl Default for CaesuraConfig {
    fn default() -> Self {
        CaesuraConfig {
            few_shot: true,
            interleaved: true,
            llm_discovery: false,
            retrieval_top_k: 4,
            example_values: 3,
            max_step_attempts: 3,
            max_replans: 1,
            exec: None,
            llm_batch: None,
            perception_cache: None,
            plan_cache: None,
            session_workers: None,
            session_queue: None,
            fair_sched: None,
            priority_tiers: None,
            tenant_quota: None,
            tenant_weights: Vec::new(),
            dict_encode: None,
            persist: persist_from_env(),
        }
    }
}

/// The environment-described persistence configuration, read once per
/// process (the same caching pattern as the other `CAESURA_*` knobs); use
/// [`PersistConfig::from_env`] directly to re-read the environment.
fn persist_from_env() -> Option<PersistConfig> {
    static DEFAULT: OnceLock<Option<PersistConfig>> = OnceLock::new();
    DEFAULT.get_or_init(PersistConfig::from_env).clone()
}

/// The identity string versioning a session's persisted plan entries: the
/// planner model plus every prompt-shaping knob that changes which plans it
/// produces. Sessions whose identities differ share a store directory
/// without ever seeing each other's entries (the schema fingerprint inside
/// the key already isolates different lake shapes).
fn plan_cache_identity(llm: &dyn LlmClient, config: &CaesuraConfig) -> String {
    format!(
        "{}:v1:few_shot={}:interleaved={}:examples={}",
        llm.name(),
        config.few_shot,
        config.interleaved,
        config.example_values
    )
}

/// The outcome of running one query end to end, including everything the
/// evaluation needs to grade the run.
#[derive(Debug, Clone)]
pub struct QueryRun {
    /// The query text.
    pub query: String,
    /// The logical plan produced by the planning phase (if planning succeeded).
    pub logical_plan: Option<LogicalPlan>,
    /// The operator decisions, in execution order.
    pub decisions: Vec<OperatorDecision>,
    /// The final output, or the error that stopped execution.
    pub output: Result<QueryOutput, CoreError>,
    /// The execution trace.
    pub trace: ExecutionTrace,
}

impl QueryRun {
    /// Whether the query executed to completion.
    pub fn succeeded(&self) -> bool {
        self.output.is_ok()
    }

    /// Whether the query was stopped by cooperative cancellation.
    pub fn cancelled(&self) -> bool {
        matches!(self.output, Err(CoreError::Cancelled))
    }

    /// Wall clock of the run (worker pickup until completion), from the
    /// trace's [`PhaseTimings`](crate::trace::PhaseTimings).
    pub fn latency(&self) -> std::time::Duration {
        self.trace.timings().total()
    }
}

/// The session state shared between the public [`Caesura`] facade and the
/// scheduler's worker threads: the lake, the model client, the prompt
/// builder, the retriever index, and the cross-query perception cache.
/// Everything here is immutable or internally synchronized, so any number of
/// workers can run queries against it concurrently.
pub(crate) struct SessionCore {
    lake: DataLake,
    llm: Arc<dyn LlmClient>,
    config: CaesuraConfig,
    prompts: PromptBuilder,
    retriever: Retriever,
    /// The session-scoped perception answer cache (`None` when disabled).
    /// Owned here — not per query — so answers survive across queries over
    /// the session's `Arc`-shared lake; interior mutability (sharded locks)
    /// keeps concurrent queries safe.
    perception_cache: Option<Arc<PerceptionCache>>,
    /// The session-scoped validated-plan cache (`None` when disabled).
    /// `Arc`-shared for the same reason: every concurrent in-flight query of
    /// the scheduler pool probes and populates one cache.
    plan_cache: Option<Arc<PlanCache>>,
}

/// A CAESURA session over one data lake and one language model.
///
/// The session serves queries **concurrently**: [`Caesura::submit`] enqueues
/// a query on the session-owned scheduler pool and returns a [`QueryHandle`]
/// supporting `wait` / `poll` / `cancel` / `subscribe`. The blocking
/// [`Caesura::run`] and [`Caesura::query`] wrappers remain for sequential
/// callers and are byte-identical to the pre-serving behaviour.
pub struct Caesura {
    core: Arc<SessionCore>,
    scheduler: Scheduler,
}

impl Caesura {
    /// Create a session with the default configuration.
    pub fn new(lake: DataLake, llm: Arc<dyn LlmClient>) -> Self {
        Caesura::with_config(lake, llm, CaesuraConfig::default())
    }

    /// Create a session with an explicit configuration.
    ///
    /// # Panics
    ///
    /// When [`CaesuraConfig::persist`] is set and the store directory cannot
    /// be opened — most commonly because another live session holds its lock
    /// file. Use [`Caesura::try_with_config`] to handle that as a typed
    /// [`CoreError::StoreUnavailable`] instead.
    pub fn with_config(lake: DataLake, llm: Arc<dyn LlmClient>, config: CaesuraConfig) -> Self {
        match Caesura::try_with_config(lake, llm, config) {
            Ok(session) => session,
            Err(error) => panic!("{error}"),
        }
    }

    /// [`Caesura::with_config`] that surfaces persistent-store open failures
    /// as [`CoreError::StoreUnavailable`] instead of panicking. With
    /// [`CaesuraConfig::persist`] unset (the default unless
    /// `CAESURA_CACHE_DIR` is exported) this never fails.
    pub fn try_with_config(
        lake: DataLake,
        llm: Arc<dyn LlmClient>,
        config: CaesuraConfig,
    ) -> CoreResult<Caesura> {
        if let Some(enabled) = config.dict_encode {
            caesura_engine::dict::set_dict_encode(enabled);
        }
        let prompts = PromptBuilder::new(PromptConfig {
            few_shot: config.few_shot,
            example_values: config.example_values,
        });
        let retriever = Retriever::index(&lake);
        let mut perception_cache = config.perception_cache.unwrap_or_default().build();
        let mut plan_cache = config.plan_cache.unwrap_or_default().build();
        // Attach the persistent tier *under* the in-memory caches. Each tier
        // opens (and locks) its own store directory; a tier whose memory
        // cache is disabled stays disk-less too.
        if let Some(persist) = config.persist.as_ref().filter(|p| p.is_enabled()) {
            let open = |dir: std::path::PathBuf| {
                CacheStore::open(dir)
                    .map(Arc::new)
                    .map_err(|e| CoreError::StoreUnavailable {
                        message: e.to_string(),
                    })
            };
            if persist.perception {
                if let Some(cache) = perception_cache.as_mut() {
                    cache.attach_disk(open(persist.perception_dir())?);
                }
            }
            if persist.plans {
                if let Some(cache) = plan_cache.as_mut() {
                    let identity = plan_cache_identity(llm.as_ref(), &config);
                    cache.attach_disk(open(persist.plans_dir())?, identity);
                }
            }
        }
        let perception_cache = perception_cache.map(Arc::new);
        let plan_cache = plan_cache.map(Arc::new);
        let workers = config
            .session_workers
            .unwrap_or_else(crate::serving::workers_from_env)
            .max(1);
        let queue_depth = config
            .session_queue
            .unwrap_or_else(crate::serving::queue_depth_from_env)
            .max(1);
        let policy = SchedPolicy {
            fair: config
                .fair_sched
                .unwrap_or_else(crate::sched::fair_sched_from_env),
            tiers: config
                .priority_tiers
                .unwrap_or_else(crate::sched::priority_tiers_from_env)
                .max(1),
            tenant_quota: match config.tenant_quota {
                // `Some(0)` means "explicitly unlimited", matching the env
                // convention that `CAESURA_TENANT_QUOTA=0` disables the quota.
                Some(0) => None,
                Some(quota) => Some(quota),
                None => crate::sched::tenant_quota_from_env(),
            },
            weights: config.tenant_weights.clone(),
        };
        Ok(Caesura {
            core: Arc::new(SessionCore {
                lake,
                llm,
                config,
                prompts,
                retriever,
                perception_cache,
                plan_cache,
            }),
            scheduler: Scheduler::new(workers, queue_depth, policy),
        })
    }

    /// The session configuration.
    pub fn config(&self) -> &CaesuraConfig {
        &self.core.config
    }

    /// The data lake this session queries.
    pub fn lake(&self) -> &DataLake {
        &self.core.lake
    }

    /// The session's perception answer cache (`None` when disabled). Useful
    /// for inspecting hit/miss/eviction counters across queries.
    pub fn perception_cache(&self) -> Option<&Arc<PerceptionCache>> {
        self.core.perception_cache.as_ref()
    }

    /// The session's validated-plan cache (`None` when disabled). Useful for
    /// inspecting hit/miss/invalidation counters across queries.
    pub fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.core.plan_cache.as_ref()
    }

    /// Queue-depth / in-flight / completed counters of the session's serving
    /// scheduler, aggregated across all tenants.
    pub fn serving_stats(&self) -> ServingStats {
        self.scheduler.stats()
    }

    /// Per-tenant serving counters, one entry per tenant that has ever
    /// submitted (or been rejected), sorted by tenant name. The sums across
    /// tenants equal the corresponding [`Caesura::serving_stats`] fields.
    pub fn tenant_stats(&self) -> Vec<TenantServingStats> {
        self.scheduler.tenant_stats()
    }

    /// Submit a query for concurrent execution. The query is enqueued on the
    /// session's scheduler pool and the returned [`QueryHandle`] tracks it:
    /// block with `wait()`, probe with `poll()`/`status()`, stop it with
    /// `cancel()`, or stream its trace events live with `subscribe()`.
    ///
    /// The submission queue is bounded
    /// ([`CaesuraConfig::session_queue`]); when it is full this call
    /// **blocks** until a slot frees (backpressure). Use
    /// [`Caesura::try_submit`] for a non-blocking variant.
    ///
    /// The effective relational-execution configuration is captured at
    /// submission time — [`CaesuraConfig::exec`] if set, otherwise the
    /// submitting thread's `parallel::exec_config()` — and pinned for the
    /// whole run, so a `parallel::with_config` scope around `submit` (or the
    /// blocking wrappers) behaves exactly as it did when queries ran on the
    /// calling thread.
    pub fn submit(&self, query: &str) -> QueryHandle {
        self.scheduler.submit(
            &self.core,
            query,
            self.effective_exec(),
            SubmitOptions::new(),
        )
    }

    /// [`Caesura::submit`] with explicit [`SubmitOptions`]: a tenant, a
    /// priority tier, and/or a deadline budget. Fail-fast: instead of
    /// blocking, a submission that cannot be admitted — queue full, tenant
    /// over quota, zero deadline, session shutting down — returns a typed
    /// [`AdmissionError`] and was never enqueued.
    ///
    /// A submission with default options (`SubmitOptions::new()`) behaves
    /// byte-identically to [`Caesura::try_submit`]; the blocking wrappers
    /// always use default options, so plain `submit`/`run`/`query` traffic
    /// is unaffected by tenancy.
    pub fn submit_with(
        &self,
        query: &str,
        options: SubmitOptions,
    ) -> Result<QueryHandle, AdmissionError> {
        self.scheduler
            .submit_with(&self.core, query, self.effective_exec(), options)
    }

    /// Non-blocking [`Caesura::submit`]: fails fast with a typed
    /// [`AdmissionError`] — [`AdmissionError::QueueFull`] at capacity,
    /// [`AdmissionError::ShuttingDown`] during session teardown — instead of
    /// blocking. Equivalent to [`Caesura::submit_with`] with default
    /// options.
    pub fn try_submit(&self, query: &str) -> Result<QueryHandle, AdmissionError> {
        self.submit_with(query, SubmitOptions::new())
    }

    fn effective_exec(&self) -> ExecConfig {
        self.core.config.exec.unwrap_or_else(parallel::exec_config)
    }

    /// Answer a natural-language query, returning only the output.
    /// Blocking wrapper: `self.run(query).output`.
    pub fn query(&self, query: &str) -> CoreResult<QueryOutput> {
        self.run(query).output
    }

    /// Answer a natural-language query, returning the full run record.
    /// Blocking wrapper over the serving API: exactly
    /// `self.submit(query).wait()` — outputs, trace events, and perception
    /// stats are byte-identical to pre-serving sessions (proven by
    /// `tests/serving_api.rs`).
    pub fn run(&self, query: &str) -> QueryRun {
        self.submit(query).wait()
    }
}

impl SessionCore {
    /// Run one scheduled query on a worker thread: pin the captured
    /// execution configuration, attach the live trace sink, stamp queue-wait
    /// and the scheduling decision, and honour the job's cancel token at
    /// every cooperative checkpoint.
    pub(crate) fn run_scheduled(&self, job: &JobState) -> QueryRun {
        let mut trace = ExecutionTrace::new();
        trace.set_sink(job.subscriber_sink());
        trace.set_queue_wait(job.queue_wait());
        // Only non-default submissions carry scheduling metadata, so
        // default-path traces stay byte-identical to the pre-tenancy
        // scheduler.
        if let Some(info) = job.scheduling_info() {
            trace.set_scheduling(info);
        }
        let mut decisions = Vec::new();
        let mut logical_plan = None;
        let started = Instant::now();
        let output = {
            let (trace, logical_plan, decisions) = (&mut trace, &mut logical_plan, &mut decisions);
            let cancel = job.cancel_token();
            let query = job.query();
            // Pin the thread/morsel knobs captured at submission time for
            // the whole query.
            parallel::with_config(job.exec(), move || {
                self.run_inner(query, trace, logical_plan, decisions, cancel)
            })
        };
        trace.set_total_duration(started.elapsed());
        // Detach the subscriber sink before the trace is stored: the stored
        // run must not keep live-stream channels open.
        trace.clear_sink();
        QueryRun {
            query: job.query().to_string(),
            logical_plan,
            decisions,
            output,
            trace,
        }
    }

    /// Cooperative cancellation checkpoint: if the submitter cancelled the
    /// query (or its deadline budget expired), record the `Phase::Recovery`
    /// trace event and stop with [`CoreError::Cancelled`].
    fn check_cancel(
        &self,
        cancel: &CancelToken,
        trace: &mut ExecutionTrace,
        at: &str,
    ) -> CoreResult<()> {
        match cancel.status() {
            CancelStatus::Active => Ok(()),
            CancelStatus::Cancelled => {
                trace.record(
                    Phase::Recovery,
                    "cancelled",
                    format!("cooperative cancellation observed {at}"),
                );
                Err(CoreError::Cancelled)
            }
            CancelStatus::DeadlineExpired => {
                trace.record(
                    Phase::Recovery,
                    "cancelled",
                    format!("deadline expired: cooperative cancellation observed {at}"),
                );
                Err(CoreError::Cancelled)
            }
        }
    }

    /// Record the trace event for a dispatch the transport interrupted
    /// mid-flight and turn it into [`CoreError::Cancelled`].
    fn dispatch_cancelled(&self, trace: &mut ExecutionTrace) -> CoreError {
        trace.record(
            Phase::Recovery,
            "cancelled",
            "cooperative cancellation interrupted an in-flight LLM dispatch",
        );
        CoreError::Cancelled
    }

    fn complete(
        &self,
        conversation: &Conversation,
        trace: &mut ExecutionTrace,
        phase: Phase,
        cancel: &CancelToken,
    ) -> CoreResult<String> {
        // Checked before *every* LLM dispatch: a cancelled query never costs
        // another round trip (and records no prompt it did not send).
        self.check_cancel(cancel, trace, "before an LLM dispatch")?;
        trace.record(phase, "prompt", conversation.render());
        trace.record_llm_call(conversation.approx_tokens());
        // The token is threaded into the transport: a cancellation-aware
        // client aborts mid-dispatch instead of serving the full round trip.
        let response = match self.llm.complete_cancellable(conversation, cancel) {
            Err(LlmError::Cancelled) => return Err(self.dispatch_cancelled(trace)),
            response => response?,
        };
        trace.record(phase, "response", response.clone());
        Ok(response)
    }

    fn run_inner(
        &self,
        query: &str,
        trace: &mut ExecutionTrace,
        logical_plan_out: &mut Option<LogicalPlan>,
        decisions_out: &mut Vec<OperatorDecision>,
        cancel: &CancelToken,
    ) -> CoreResult<QueryOutput> {
        // A query cancelled while still queued stops before any work.
        self.check_cancel(cancel, trace, "before the query started")?;

        // ---- Discovery phase -------------------------------------------------
        let phase_start = Instant::now();
        let discovered = self.discover(query, trace, cancel);
        trace.record_phase_duration(Phase::Discovery, phase_start.elapsed());
        let (catalog, relevant_columns) = discovered?;

        // ---- Plan-cache probe ------------------------------------------------
        // Keyed on the *discovered* catalog (so retrieval differences keep
        // their own entries) and the literal-normalized query template. A hit
        // replays the validated plan with zero planner/mapping LLM calls; a
        // replayed plan that fails is evicted and the query falls through to
        // live planning below — never worse than the cache-off path.
        let probe = self.plan_cache.as_ref().map(|cache| {
            (
                Arc::clone(cache),
                schema_fingerprint(&catalog),
                normalize_query(query),
            )
        });
        if let Some((cache, fingerprint, template)) = &probe {
            let phase_start = Instant::now();
            let cached = cache.lookup_tiered(fingerprint, template);
            trace.record_phase_duration(Phase::Planning, phase_start.elapsed());
            match cached {
                Some((cached, tier)) => {
                    trace.set_plan_source(PlanSource::Cached);
                    trace.record_plan_cache(PlanCacheCalls {
                        hits: 1,
                        disk_hits: usize::from(tier == caesura_llm::PlanTier::Disk),
                        ..PlanCacheCalls::default()
                    });
                    trace.record(
                        Phase::Planning,
                        "plan-source",
                        format!(
                            "cached: validated plan with {} step(s) replayed, planning and mapping skipped",
                            cached.plan.len()
                        ),
                    );
                    trace.record(Phase::Planning, "plan", cached.plan.render());
                    *logical_plan_out = Some(cached.plan.clone());
                    match self.execute_cached(
                        &cached.plan,
                        &cached.decisions,
                        decisions_out,
                        trace,
                        cancel,
                    ) {
                        Ok(output) => return Ok(output),
                        // Cancellation is not a verdict on the plan: keep the
                        // entry and stop.
                        Err(CoreError::Cancelled) => return Err(CoreError::Cancelled),
                        Err(error) => {
                            cache.invalidate(fingerprint, template);
                            trace.record_plan_cache(PlanCacheCalls {
                                invalidations: 1,
                                ..PlanCacheCalls::default()
                            });
                            trace.record(
                                Phase::Recovery,
                                "plan-cache",
                                format!(
                                    "cached plan failed at execution ({error}); entry evicted, replanning live"
                                ),
                            );
                            // The plan actually answering the query will be
                            // planned live.
                            trace.set_plan_source(PlanSource::Planned);
                            decisions_out.clear();
                            *logical_plan_out = None;
                        }
                    }
                }
                None => {
                    trace.set_plan_source(PlanSource::Planned);
                    trace.record_plan_cache(PlanCacheCalls {
                        misses: 1,
                        ..PlanCacheCalls::default()
                    });
                    trace.record(Phase::Planning, "plan-source", "planned: plan-cache miss");
                }
            }
        }

        // ---- Planning phase (with optional replans after failures) ----------
        let mut replans = 0usize;
        let mut planning_note: Option<String> = None;
        loop {
            let phase_start = Instant::now();
            let plan = self.plan(
                query,
                &catalog,
                &relevant_columns,
                planning_note.as_deref(),
                trace,
                cancel,
            );
            trace.record_phase_duration(Phase::Planning, phase_start.elapsed());
            let plan = plan?;
            *logical_plan_out = Some(plan.clone());

            // ---- Mapping phase + interleaved execution ----------------------
            match self.map_and_execute(
                query,
                &catalog,
                &relevant_columns,
                &plan,
                decisions_out,
                trace,
                cancel,
            ) {
                Ok((output, clean)) => {
                    // Insert-after-success: only a plan whose execution
                    // needed no replan and no per-step recovery is worth
                    // replaying verbatim on the next structurally identical
                    // query — and only when the cache can verify that every
                    // query literal was threaded through the plan text, so a
                    // later hit with different literals never replays the
                    // original values.
                    if let Some((cache, fingerprint, template)) = &probe {
                        if clean && replans == 0 && decisions_out.len() == plan.steps.len() {
                            match cache.insert(fingerprint, template, &plan, decisions_out) {
                                PlanInsertOutcome::Inserted { .. } => {
                                    trace.record_plan_cache(PlanCacheCalls {
                                        insertions: 1,
                                        disk_writes: usize::from(cache.has_disk()),
                                        ..PlanCacheCalls::default()
                                    });
                                }
                                PlanInsertOutcome::AlreadyPresent => {}
                                PlanInsertOutcome::Rejected => {
                                    trace.record(
                                        Phase::Planning,
                                        "plan-cache",
                                        "not cached: the plan does not verifiably thread every \
                                         query literal through its text, so replaying it under \
                                         different literals would be unsafe",
                                    );
                                }
                            }
                        }
                    }
                    return Ok(output);
                }
                Err((error, replan_requested)) => {
                    if replan_requested && replans < self.config.max_replans {
                        replans += 1;
                        planning_note = Some(format!(
                            "A previous plan failed with the error: {error}. Produce a corrected plan."
                        ));
                        trace.record(
                            Phase::Recovery,
                            "replan",
                            format!("attempt {replans}: {error}"),
                        );
                        decisions_out.clear();
                        continue;
                    }
                    return Err(error);
                }
            }
        }
    }

    /// Build the per-query executor with the session's batch configuration
    /// and `Arc`-shared perception cache attached — used identically by the
    /// live mapping loop and the plan-cache replay path.
    fn make_executor(&self) -> Executor {
        // No per-executor exec pin here: `run_scheduled` already scopes the
        // captured `exec` configuration around the whole query, and
        // `Executor::with_exec_config` remains available for direct executor
        // users.
        let mut executor = Executor::new(self.lake.catalog().clone(), self.lake.images().clone());
        if let Some(batch) = self.config.llm_batch {
            executor = executor.with_batch_config(batch);
        }
        // Share the session-scoped answer cache: each query gets a fresh
        // executor, but the cache (and therefore every previously computed
        // perception answer) survives across queries.
        if let Some(cache) = &self.perception_cache {
            executor = executor.with_perception_cache(Arc::clone(cache));
        }
        executor
    }

    /// Assemble the query output from the last executed step — shared by the
    /// live mapping loop and the plan-cache replay path.
    fn finish_output(
        &self,
        executor: &Executor,
        last_outcome: Option<StepOutcome>,
    ) -> CoreResult<QueryOutput> {
        match last_outcome {
            Some(StepOutcome::Plot { plot, table }) => Ok(QueryOutput::Plot {
                plot,
                // Shallow: the plot table's columns stay shared.
                table: table.as_ref().clone(),
            }),
            Some(StepOutcome::Table { name, .. }) => {
                let table = executor
                    .intermediate()
                    .table(&name)
                    .map(|t| t.as_ref().clone())
                    .map_err(CoreError::Engine)?;
                Ok(QueryOutput::from_table(table))
            }
            None => Err(CoreError::PlanningFailed {
                message: "the plan contained no executable steps".into(),
            }),
        }
    }

    /// Replay a validated plan from the plan cache: execute the cached
    /// operator decisions step by step with **zero** LLM calls — no mapping
    /// prompts, and deliberately no per-step error recovery (a cached plan
    /// that fails is not worth analyzing; the caller evicts it and replans
    /// live). Cancellation checkpoints match the live execution loop.
    fn execute_cached(
        &self,
        plan: &LogicalPlan,
        decisions: &[OperatorDecision],
        decisions_out: &mut Vec<OperatorDecision>,
        trace: &mut ExecutionTrace,
        cancel: &CancelToken,
    ) -> CoreResult<QueryOutput> {
        let mut executor = self.make_executor();
        let mut last_outcome: Option<StepOutcome> = None;
        for (step, decision) in plan.steps.iter().zip(decisions) {
            self.check_cancel(cancel, trace, "between plan steps")?;
            trace.record(
                Phase::Mapping,
                "decision",
                format!(
                    "Step {}: {} ({})",
                    step.number,
                    decision.operator.name(),
                    decision.arguments.join("; ")
                ),
            );
            self.check_cancel(cancel, trace, "before a step execution")?;
            match executor.execute_traced(step, decision, trace) {
                Ok(outcome) => {
                    trace.record(Phase::Execution, "observation", outcome.observation());
                    decisions_out.push(decision.clone());
                    last_outcome = Some(outcome);
                }
                Err(error) => {
                    trace.record(Phase::Execution, "error", error.to_string());
                    return Err(error);
                }
            }
        }
        self.finish_output(&executor, last_outcome)
    }

    fn discover(
        &self,
        query: &str,
        trace: &mut ExecutionTrace,
        cancel: &CancelToken,
    ) -> CoreResult<(Catalog, Vec<RelevantColumn>)> {
        // Dense-retrieval substitute: keep the top-k sources.
        let top = self.retriever.top_k(query, self.config.retrieval_top_k);
        trace.record(Phase::Discovery, "retrieved", top.join(", "));
        if top.is_empty() {
            return Err(CoreError::NoRelevantData {
                query: query.to_string(),
            });
        }
        let mut catalog = Catalog::new();
        for name in &top {
            if let Ok(table) = self.lake.catalog().table(name) {
                catalog.register_shared(std::sync::Arc::clone(table));
            }
        }
        for fk in self.lake.catalog().foreign_keys() {
            if catalog.contains(&fk.from_table) && catalog.contains(&fk.to_table) {
                catalog.add_foreign_key(fk.clone());
            }
        }

        let relevant_columns = if self.config.llm_discovery {
            let prompt = self.prompts.discovery_prompt(&catalog, query);
            let response = self.complete(&prompt, trace, Phase::Discovery, cancel)?;
            self.parse_relevant_response(&response, &catalog)
        } else {
            lexical_relevant_columns(&self.lake, query, self.config.example_values)
        };
        trace.record(
            Phase::Discovery,
            "relevant-columns",
            relevant_columns
                .iter()
                .map(|c| format!("{}.{}", c.table, c.column))
                .collect::<Vec<_>>()
                .join(", "),
        );
        Ok((catalog, relevant_columns))
    }

    fn parse_relevant_response(&self, response: &str, catalog: &Catalog) -> Vec<RelevantColumn> {
        let mut out = Vec::new();
        for line in response.lines() {
            let Some(rest) = line.trim().strip_prefix("Relevant:") else {
                continue;
            };
            let Some((table, column)) = rest.trim().split_once('.') else {
                continue;
            };
            let (table, column) = (table.trim().to_string(), column.trim().to_string());
            let examples = catalog
                .table(&table)
                .and_then(|t| t.example_values(&column, self.config.example_values))
                .unwrap_or_default();
            out.push(RelevantColumn {
                table,
                column,
                examples,
            });
        }
        out
    }

    fn plan(
        &self,
        query: &str,
        catalog: &Catalog,
        relevant_columns: &[RelevantColumn],
        note: Option<&str>,
        trace: &mut ExecutionTrace,
        cancel: &CancelToken,
    ) -> CoreResult<LogicalPlan> {
        let query_with_note = match note {
            Some(note) => format!("{query} ({note})"),
            None => query.to_string(),
        };
        let prompt = self
            .prompts
            .planning_prompt(catalog, &query_with_note, relevant_columns);
        let response = self.complete(&prompt, trace, Phase::Planning, cancel)?;
        let plan = LogicalPlan::parse(&response).map_err(|e| CoreError::PlanningFailed {
            message: e.to_string(),
        })?;
        if plan.is_empty() {
            return Err(CoreError::PlanningFailed {
                message: "the planning phase returned an empty plan".into(),
            });
        }
        trace.record(Phase::Planning, "plan", plan.render());
        Ok(plan)
    }

    /// Map every step to an operator and execute it. Returns the final output
    /// plus a cleanliness flag (`true` when no step needed error recovery —
    /// the bar for plan-cache insertion), or `(error, replan_requested)` on
    /// failure.
    #[allow(clippy::type_complexity, clippy::too_many_arguments)]
    fn map_and_execute(
        &self,
        query: &str,
        catalog: &Catalog,
        relevant_columns: &[RelevantColumn],
        plan: &LogicalPlan,
        decisions_out: &mut Vec<OperatorDecision>,
        trace: &mut ExecutionTrace,
        cancel: &CancelToken,
    ) -> Result<(QueryOutput, bool), (CoreError, bool)> {
        let mut executor = self.make_executor();
        let mut observations: Vec<String> = Vec::new();
        let mut last_outcome: Option<StepOutcome> = None;
        let mut clean = true;

        // Non-interleaved ablation: decide every operator before executing
        // any. Without observations the mapping prompts are independent, so
        // they are pipelined through one `complete_batch` dispatch instead
        // of one round trip per step. Trade-off: the whole batch is served
        // before the first response is inspected, so an early mapping
        // failure no longer spares the remaining steps' completions (the
        // per-step loop stopped at the first failure).
        let predecided: Option<Vec<OperatorDecision>> = if self.config.interleaved {
            None
        } else {
            // One checkpoint guards the whole pipelined dispatch, mirroring
            // the per-dispatch check of the interleaved path.
            self.check_cancel(cancel, trace, "before the pipelined mapping dispatch")
                .map_err(|e| (e, false))?;
            let phase_start = Instant::now();
            let prompts: Vec<Conversation> = plan
                .steps
                .iter()
                .map(|step| {
                    self.prompts.mapping_prompt(
                        catalog,
                        &Catalog::new(),
                        query,
                        step,
                        relevant_columns,
                        &[],
                        None,
                    )
                })
                .collect();
            for prompt in &prompts {
                trace.record(Phase::Mapping, "prompt", prompt.render());
                trace.record_llm_call(prompt.approx_tokens());
            }
            let responses = self.llm.complete_batch_cancellable(&prompts, cancel);
            // Record every completed response before parsing any: the whole
            // batch was served and billed, so the trace must show it even
            // when an early response fails to parse.
            for response in responses.iter().flatten() {
                trace.record(Phase::Mapping, "response", response.clone());
            }
            let mut all = Vec::new();
            for response in responses {
                let response = match response {
                    Err(LlmError::Cancelled) => {
                        return Err((self.dispatch_cancelled(trace), false));
                    }
                    response => response.map_err(|e| (CoreError::from(e), false))?,
                };
                all.push(
                    OperatorDecision::parse(&response).map_err(|e| (CoreError::from(e), false))?,
                );
            }
            trace.record_phase_duration(Phase::Mapping, phase_start.elapsed());
            Some(all)
        };

        for (index, step) in plan.steps.iter().enumerate() {
            // Checked between plan steps: a cancelled query stops before
            // mapping or executing the next step.
            self.check_cancel(cancel, trace, "between plan steps")
                .map_err(|e| (e, false))?;
            let mut attempt = 0usize;
            let mut error_note: Option<String> = None;
            loop {
                attempt += 1;
                let decision = match &predecided {
                    Some(all) => all[index].clone(),
                    None => {
                        let phase_start = Instant::now();
                        let decided = self.decide_step(
                            query,
                            catalog,
                            executor.intermediate(),
                            relevant_columns,
                            step,
                            &observations,
                            error_note.as_deref(),
                            trace,
                            cancel,
                        );
                        trace.record_phase_duration(Phase::Mapping, phase_start.elapsed());
                        decided.map_err(|e| (e, false))?
                    }
                };
                trace.record(
                    Phase::Mapping,
                    "decision",
                    format!(
                        "Step {}: {} ({})",
                        step.number,
                        decision.operator.name(),
                        decision.arguments.join("; ")
                    ),
                );

                // Checked before each step execution — which is where this
                // step's perception batches would dispatch.
                self.check_cancel(cancel, trace, "before a step execution")
                    .map_err(|e| (e, false))?;
                let step_result = executor.execute_traced(step, &decision, trace);
                match step_result {
                    Ok(outcome) => {
                        let observation = outcome.observation();
                        trace.record(Phase::Execution, "observation", observation.clone());
                        observations.push(observation);
                        decisions_out.push(decision);
                        last_outcome = Some(outcome);
                        break;
                    }
                    Err(error) => {
                        trace.record(Phase::Execution, "error", error.to_string());
                        decisions_out.push(decision.clone());
                        clean = false;
                        if attempt >= self.config.max_step_attempts {
                            return Err((
                                CoreError::PlanFailed {
                                    step: step.number,
                                    step_description: step.description.clone(),
                                    message: error.to_string(),
                                    attempts: attempt,
                                },
                                false,
                            ));
                        }
                        // Error recovery (§3.2): ask the model what went wrong.
                        let phase_start = Instant::now();
                        let analysis =
                            self.analyze_error(query, plan, step, &decision, &error, trace, cancel);
                        trace.record_phase_duration(Phase::Recovery, phase_start.elapsed());
                        let analysis = analysis.map_err(|e| (e, false))?;
                        if analysis.should_replan() {
                            return Err((
                                CoreError::PlanFailed {
                                    step: step.number,
                                    step_description: step.description.clone(),
                                    message: error.to_string(),
                                    attempts: attempt,
                                },
                                true,
                            ));
                        }
                        error_note = Some(format!("The error was: {error}. {}", analysis.fix));
                    }
                }
            }
        }

        self.finish_output(&executor, last_outcome)
            .map(|output| (output, clean))
            .map_err(|e| (e, false))
    }

    #[allow(clippy::too_many_arguments)]
    fn decide_step(
        &self,
        query: &str,
        catalog: &Catalog,
        intermediate: &Catalog,
        relevant_columns: &[RelevantColumn],
        step: &LogicalStep,
        observations: &[String],
        error_note: Option<&str>,
        trace: &mut ExecutionTrace,
        cancel: &CancelToken,
    ) -> CoreResult<OperatorDecision> {
        let prompt = self.prompts.mapping_prompt(
            catalog,
            intermediate,
            query,
            step,
            relevant_columns,
            observations,
            error_note,
        );
        let response = self.complete(&prompt, trace, Phase::Mapping, cancel)?;
        Ok(OperatorDecision::parse(&response)?)
    }

    #[allow(clippy::too_many_arguments)]
    fn analyze_error(
        &self,
        query: &str,
        plan: &LogicalPlan,
        step: &LogicalStep,
        decision: &OperatorDecision,
        error: &CoreError,
        trace: &mut ExecutionTrace,
        cancel: &CancelToken,
    ) -> CoreResult<ErrorAnalysis> {
        let prompt = self.prompts.error_prompt(
            query,
            &plan.render(),
            &format!("Step {}: {}", step.number, step.description),
            &format!(
                "Operator: {}, Arguments: ({})",
                decision.operator.name(),
                decision.arguments.join("; ")
            ),
            &error.to_string(),
        );
        let response = self.complete(&prompt, trace, Phase::Recovery, cancel)?;
        let analysis = ErrorAnalysis::parse(&response)?;
        trace.record(Phase::Recovery, "analysis", analysis.render());
        Ok(analysis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving::QueryStatus;
    use caesura_data::{generate_artwork, generate_rotowire, ArtworkConfig, RotowireConfig};
    use caesura_engine::Value;
    use caesura_llm::SimulatedLlm;

    fn artwork_session() -> Caesura {
        let data = generate_artwork(&ArtworkConfig::small());
        Caesura::new(data.lake, Arc::new(SimulatedLlm::gpt4()))
    }

    #[test]
    fn figure1_query_runs_end_to_end_and_produces_a_plot() {
        let session = artwork_session();
        let run = session
            .run("Plot the number of paintings depicting Madonna and Child for each century!");
        let output = run.output.expect("the figure-1 query should execute");
        assert_eq!(output.kind(), "plot");
        let plot = output.plot().unwrap();
        assert_eq!(plot.spec.x_column, "century");
        assert!(run.logical_plan.unwrap().len() >= 5);
        assert!(run.trace.llm_calls() >= 6);
    }

    #[test]
    fn simple_count_query_returns_a_single_value() {
        let session = artwork_session();
        let data = generate_artwork(&ArtworkConfig::small());
        let output = session
            .query("How many paintings are in the museum?")
            .unwrap();
        assert_eq!(output.kind(), "value");
        assert_eq!(
            output.as_value().unwrap(),
            &Value::Int(data.records.len() as i64)
        );
    }

    #[test]
    fn figure4_query1_returns_one_row_per_team_with_correct_maxima() {
        let data = generate_rotowire(&RotowireConfig::small());
        let session = Caesura::new(data.lake.clone(), Arc::new(SimulatedLlm::gpt4()));
        let output = session
            .query("For every team, what is the highest number of points they scored in a game?")
            .unwrap();
        let table = output.table().expect("expected a table output").clone();
        // Every team that played at least one game appears with its ground-truth maximum.
        for row in table.rows() {
            let team = row.get(0).as_str().unwrap().to_string();
            let reported = row.get(1).as_int().unwrap();
            let expected = data.max_points_of(&team).unwrap();
            assert_eq!(reported, expected, "wrong maximum for {team}");
        }
    }

    #[test]
    fn non_interleaved_mode_still_answers_relational_queries() {
        let data = generate_rotowire(&RotowireConfig::small());
        let config = CaesuraConfig {
            interleaved: false,
            ..CaesuraConfig::default()
        };
        let session = Caesura::with_config(data.lake, Arc::new(SimulatedLlm::gpt4()), config);
        let output = session
            .query("For each conference, how many teams are there?")
            .unwrap();
        assert_eq!(output.kind(), "table");
        assert_eq!(output.table().unwrap().num_rows(), 2);
    }

    #[test]
    fn llm_discovery_mode_runs() {
        let data = generate_artwork(&ArtworkConfig::small());
        let config = CaesuraConfig {
            llm_discovery: true,
            ..CaesuraConfig::default()
        };
        let session = Caesura::with_config(data.lake, Arc::new(SimulatedLlm::gpt4()), config);
        let run = session.run("How many paintings belong to the Impressionism movement?");
        assert!(run.succeeded(), "failed: {:?}", run.output.err());
    }

    #[test]
    fn run_records_a_full_trace() {
        let session = artwork_session();
        let run = session.run("How many paintings depict a horse?");
        assert!(run.trace.events_of(Phase::Planning).len() >= 2);
        assert!(!run.trace.events_of(Phase::Mapping).is_empty());
        assert!(run.trace.prompt_tokens() > 0);
    }

    #[test]
    fn run_records_wall_clock_phase_timings() {
        let session = artwork_session();
        let run = session.run("How many paintings depict a horse?");
        let timings = run.trace.timings();
        assert!(timings.total() > std::time::Duration::ZERO);
        assert!(timings.measured() <= timings.total());
        assert!(timings.of(Phase::Planning) > std::time::Duration::ZERO);
        assert_eq!(run.latency(), timings.total());
        assert!(timings.end_to_end() >= timings.total());
    }

    #[test]
    fn submitted_queries_complete_with_handles_and_stats() {
        let data = generate_artwork(&ArtworkConfig::small());
        let config = CaesuraConfig {
            session_workers: Some(2),
            session_queue: Some(8),
            ..CaesuraConfig::default()
        };
        let session = Caesura::with_config(data.lake, Arc::new(SimulatedLlm::gpt4()), config);
        assert_eq!(session.serving_stats().workers, 2);
        assert_eq!(session.serving_stats().queue_depth, 8);
        assert_eq!(session.serving_stats().completed, 0);

        let first = session.submit("How many paintings are in the museum?");
        let second = session.submit("How many paintings depict a horse?");
        assert_eq!(first.query(), "How many paintings are in the museum?");
        let first = first.wait();
        let second = second.wait();
        assert!(first.succeeded(), "failed: {:?}", first.output.err());
        assert!(second.succeeded(), "failed: {:?}", second.output.err());

        let stats = session.serving_stats();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.cancelled, 0);
        assert_eq!(stats.queued, 0);
        assert_eq!(stats.in_flight, 0);
    }

    #[test]
    fn poll_transitions_to_finished() {
        let session = artwork_session();
        let handle = session.submit("How many paintings are in the museum?");
        // Wait for completion via polling only.
        let mut run = None;
        for _ in 0..1000 {
            if let Some(done) = handle.poll() {
                run = Some(done);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let run = run.expect("query did not finish within the polling budget");
        assert!(run.succeeded());
        assert_eq!(handle.status(), QueryStatus::Finished);
        // The handle is still usable after poll; wait returns the same run.
        assert_eq!(handle.wait().output, run.output);
    }

    #[test]
    fn serialized_scheduler_preserves_submission_order() {
        let data = generate_artwork(&ArtworkConfig::small());
        let config = CaesuraConfig {
            session_workers: Some(1),
            ..CaesuraConfig::default()
        };
        let session = Caesura::with_config(data.lake, Arc::new(SimulatedLlm::gpt4()), config);
        let handles: Vec<_> = [
            "How many paintings are in the museum?",
            "How many paintings depict a horse?",
        ]
        .iter()
        .map(|q| session.submit(q))
        .collect();
        for handle in handles {
            assert!(handle.wait().succeeded());
        }
        assert_eq!(session.serving_stats().completed, 2);
    }
}
