//! Physical-operator execution against a data lake.
//!
//! The executor owns the intermediate state of one query: the base catalog of
//! the lake, the scratch catalog of tables produced by executed steps, and the
//! simulated perception models. Each [`OperatorDecision`] is executed
//! immediately after the mapping phase decides it (interleaved execution,
//! §3.1), and returns an observation string that is fed back into the next
//! mapping prompt.
//!
//! Perception operators (VisualQA / TextQA / Image Select) route through the
//! gather → dedup → cache → batch → scatter pipeline of
//! `caesura_modal::batch`: the executor pins the [`BatchConfig`] for the
//! query, optionally shares the session's
//! [`PerceptionCache`] (so answers survive across the session's queries),
//! and accumulates the per-dispatch [`BatchStats`] — including failed
//! dispatches, whose model calls were paid just the same — behind
//! [`Executor::perception_stats`].

use crate::error::{CoreError, CoreResult};
use caesura_engine::{parallel, sql, Catalog, ExecConfig, Table};
use caesura_llm::{LogicalStep, OperatorDecision};
use caesura_modal::operators::{
    apply_image_select_with, apply_plot, apply_python_udf_cached, apply_text_qa_with,
    apply_visual_qa_with, parse_result_dtype,
};
use caesura_modal::{
    BatchConfig, BatchStats, ImageSelectModel, ImageStore, OperatorKind, PerceptionCache, Plot,
    TextQaModel, TransformCodegen, VisualQaModel,
};
use std::sync::Arc;

/// The result of executing one physical step.
#[derive(Debug, Clone)]
pub enum StepOutcome {
    /// A (possibly new) table was produced and registered under `name`.
    Table {
        /// Name the result was registered under.
        name: String,
        /// The observation text describing the result to the LLM.
        observation: String,
        /// Number of rows of the result.
        num_rows: usize,
    },
    /// A plot was produced (terminal step).
    Plot {
        /// The plot.
        plot: Plot,
        /// The table the plot was rendered from (shared, not copied).
        table: Arc<Table>,
    },
}

impl StepOutcome {
    /// The observation string fed back to the mapping prompt.
    pub fn observation(&self) -> String {
        match self {
            StepOutcome::Table { observation, .. } => observation.clone(),
            StepOutcome::Plot { plot, .. } => format!(
                "A {} plot with '{}' on the X-axis and '{}' on the Y-axis has been produced.",
                plot.spec.kind.name(),
                plot.spec.x_column,
                plot.spec.y_column
            ),
        }
    }
}

/// Executes physical operators and tracks intermediate tables.
pub struct Executor {
    base: Catalog,
    intermediate: Catalog,
    images: ImageStore,
    visual_qa: VisualQaModel,
    text_qa: TextQaModel,
    image_select: ImageSelectModel,
    codegen: TransformCodegen,
    /// The most recently produced table name.
    last_output: Option<String>,
    /// Optional pinned execution configuration for the relational operators.
    exec: Option<ExecConfig>,
    /// Batching configuration for the perception-operator model calls.
    batch: BatchConfig,
    /// Optional session-scoped perception answer cache, shared (`Arc`) with
    /// the owning session so answers survive across queries.
    cache: Option<Arc<PerceptionCache>>,
    /// Accumulated perception call accounting across executed steps.
    perception: BatchStats,
}

impl Executor {
    /// Create an executor over a lake's catalog and image store.
    pub fn new(base: Catalog, images: ImageStore) -> Self {
        Executor {
            base,
            intermediate: Catalog::new(),
            images,
            visual_qa: VisualQaModel::new(),
            text_qa: TextQaModel::new(),
            image_select: ImageSelectModel::new(),
            codegen: TransformCodegen::new(),
            last_output: None,
            exec: None,
            batch: BatchConfig::default(),
            cache: None,
            perception: BatchStats::default(),
        }
    }

    /// Pin the execution configuration (worker threads, morsel size) every
    /// operator executed by this executor runs under.
    pub fn with_exec_config(mut self, config: ExecConfig) -> Self {
        self.exec = Some(config);
        self
    }

    /// Pin the perception-call batching configuration (batch size) for the
    /// multi-modal operators executed by this executor.
    pub fn with_batch_config(mut self, config: BatchConfig) -> Self {
        self.batch = config;
        self
    }

    /// Attach a perception answer cache. The cache is `Arc`-shared — a
    /// session passes the same cache to every executor it creates, so
    /// answers survive across plan steps *and* across queries (see
    /// `caesura_modal::cache` for why cached answers are provably the
    /// answers the models would give). Executors without a cache behave
    /// byte-for-byte as before.
    pub fn with_perception_cache(mut self, cache: Arc<PerceptionCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached perception answer cache, if any.
    pub fn perception_cache(&self) -> Option<&Arc<PerceptionCache>> {
        self.cache.as_ref()
    }

    /// Accumulated perception-operator call accounting (rows walked, unique
    /// model calls dispatched, batches, calls saved by dedup) across every
    /// step executed so far.
    pub fn perception_stats(&self) -> BatchStats {
        self.perception
    }

    /// Replace the perception models (e.g. to attach a noise model).
    pub fn with_models(
        mut self,
        visual_qa: VisualQaModel,
        text_qa: TextQaModel,
        image_select: ImageSelectModel,
    ) -> Self {
        self.visual_qa = visual_qa;
        self.text_qa = text_qa;
        self.image_select = image_select;
        self
    }

    /// The catalog of intermediate tables produced so far (used to render the
    /// mapping prompt's "intermediate tables" section).
    pub fn intermediate(&self) -> &Catalog {
        &self.intermediate
    }

    /// The base catalog of the data lake.
    pub fn base(&self) -> &Catalog {
        &self.base
    }

    /// The most recently produced table, if any (shared handle).
    pub fn last_table(&self) -> Option<&Arc<Table>> {
        let name = self.last_output.as_ref()?;
        self.intermediate.table(name).ok()
    }

    /// Reset the intermediate state (used when CAESURA backtracks to the
    /// planning phase after an unrecoverable error).
    pub fn reset(&mut self) {
        self.intermediate = Catalog::new();
        self.last_output = None;
    }

    /// Base and intermediate tables merged into one catalog for SQL execution.
    /// Every registration is an `Arc` bump — no table data moves.
    fn combined(&self) -> Catalog {
        let mut combined = self.base.clone();
        for table in self.intermediate.tables() {
            combined.register_shared(Arc::clone(table));
        }
        combined
    }

    /// Resolve an input table by name, searching intermediate tables first.
    /// Returns a shared handle; the columns stay owned by the catalogs.
    fn input_table(&self, name: &str) -> CoreResult<Arc<Table>> {
        if let Ok(table) = self.intermediate.table_shared(name) {
            return Ok(table);
        }
        if let Ok(table) = self.base.table_shared(name) {
            return Ok(table);
        }
        // Fall back to the most recent output (plans sometimes refer to the
        // "current" table by a stale name).
        if let Some(table) = self.last_table() {
            return Ok(Arc::clone(table));
        }
        Err(CoreError::MissingInput {
            table: name.to_string(),
        })
    }

    fn step_input(&self, step: &LogicalStep) -> CoreResult<Arc<Table>> {
        match step.inputs.first() {
            Some(name) => self.input_table(name),
            None => self
                .last_table()
                .map(Arc::clone)
                .ok_or(CoreError::MissingInput {
                    table: "(no input specified)".to_string(),
                }),
        }
    }

    fn register_result(
        &mut self,
        step: &LogicalStep,
        table: Table,
        new_columns: &[String],
    ) -> StepOutcome {
        let name = if step.output.is_empty() || step.output == "plot" {
            format!("step_{}_result", step.number)
        } else {
            step.output.clone()
        };
        let table = table.renamed(name.clone());
        let observation = table.observation(new_columns);
        let num_rows = table.num_rows();
        self.intermediate.register(table);
        self.last_output = Some(name.clone());
        StepOutcome::Table {
            name,
            observation,
            num_rows,
        }
    }

    /// Execute one operator decision for one logical step.
    pub fn execute(
        &mut self,
        step: &LogicalStep,
        decision: &OperatorDecision,
    ) -> CoreResult<StepOutcome> {
        match self.exec {
            Some(config) => parallel::with_config(config, || self.execute_inner(step, decision)),
            None => self.execute_inner(step, decision),
        }
    }

    /// [`Executor::execute`] plus trace accounting: records the step's
    /// execution-phase wall clock and its perception-call delta (including
    /// for failed attempts, whose dispatches were paid just the same) on
    /// `trace`. The session's live mapping loop and its plan-cache replay
    /// path both go through here, so cached and live executions account
    /// identically.
    pub fn execute_traced(
        &mut self,
        step: &LogicalStep,
        decision: &OperatorDecision,
        trace: &mut crate::trace::ExecutionTrace,
    ) -> CoreResult<StepOutcome> {
        use crate::trace::{PerceptionCalls, Phase};
        let perception_before = self.perception_stats();
        let phase_start = std::time::Instant::now();
        let result = self.execute(step, decision);
        trace.record_phase_duration(Phase::Execution, phase_start.elapsed());
        let delta = self.perception_stats().since(&perception_before);
        if delta.rows > 0 || delta.unique_requests > 0 {
            trace.record(Phase::Execution, "perception", delta.summary());
            trace.record_perception(PerceptionCalls {
                rows: delta.rows,
                // "calls" are model calls that actually reached the backend:
                // cache hits never dispatch.
                calls: delta.dispatched_requests(),
                batches: delta.batches,
                saved_calls: delta.saved_calls,
                cache_hits: delta.cache_hits,
                cache_misses: delta.cache_misses,
                cache_evictions: delta.cache_evictions,
                disk_hits: delta.disk_hits,
                disk_misses: delta.disk_misses,
                disk_writes: delta.disk_writes,
            });
        }
        result
    }

    fn execute_inner(
        &mut self,
        step: &LogicalStep,
        decision: &OperatorDecision,
    ) -> CoreResult<StepOutcome> {
        let args = &decision.arguments;
        let expect_args = |n: usize| -> CoreResult<()> {
            if args.len() < n {
                Err(CoreError::Modal(
                    caesura_modal::ModalError::InvalidArguments {
                        operator: decision.operator.name().to_string(),
                        message: format!("expected at least {n} argument(s), got {}", args.len()),
                    },
                ))
            } else {
                Ok(())
            }
        };
        match decision.operator {
            OperatorKind::SqlJoin | OperatorKind::SqlAggregation | OperatorKind::Sql => {
                expect_args(1)?;
                let result = sql::run_sql(&self.combined(), &args[0])?;
                Ok(self.register_result(step, result, &step.new_columns))
            }
            OperatorKind::SqlSelection => {
                expect_args(1)?;
                let input = self.step_input(step)?;
                // The argument is either a bare condition or a full SELECT.
                let result = if args[0].trim().to_uppercase().starts_with("SELECT") {
                    sql::run_sql(&self.combined(), &args[0])?
                } else {
                    let condition = sql::parse_expression(&args[0])?;
                    caesura_engine::ops::filter(input.as_ref(), &condition)?
                };
                Ok(self.register_result(step, result, &[]))
            }
            OperatorKind::VisualQa => {
                expect_args(3)?;
                let input = self.step_input(step)?;
                let dtype = parse_result_dtype(args.get(3).map(String::as_str).unwrap_or("str"));
                let (stats, result) = apply_visual_qa_with(
                    input.as_ref(),
                    &self.images,
                    &self.visual_qa,
                    &args[0],
                    &args[1],
                    &args[2],
                    dtype,
                    &self.batch,
                    self.cache.as_deref(),
                );
                // Absorb before `?`: failed dispatches still made their calls.
                self.perception.absorb(&stats);
                Ok(self.register_result(step, result?, &[args[1].clone()]))
            }
            OperatorKind::TextQa => {
                expect_args(3)?;
                let input = self.step_input(step)?;
                let dtype = parse_result_dtype(args.get(3).map(String::as_str).unwrap_or("str"));
                let (stats, result) = apply_text_qa_with(
                    input.as_ref(),
                    &self.text_qa,
                    &args[0],
                    &args[1],
                    &args[2],
                    dtype,
                    &self.batch,
                    self.cache.as_deref(),
                );
                self.perception.absorb(&stats);
                Ok(self.register_result(step, result?, &[args[1].clone()]))
            }
            OperatorKind::ImageSelect => {
                expect_args(2)?;
                let input = self.step_input(step)?;
                let (stats, result) = apply_image_select_with(
                    input.as_ref(),
                    &self.images,
                    &self.image_select,
                    &args[0],
                    &args[1],
                    &self.batch,
                    self.cache.as_deref(),
                );
                self.perception.absorb(&stats);
                Ok(self.register_result(step, result?, &[]))
            }
            OperatorKind::PythonUdf => {
                expect_args(2)?;
                let input = self.step_input(step)?;
                let (stats, result) = apply_python_udf_cached(
                    input.as_ref(),
                    &self.codegen,
                    &args[0],
                    &args[1],
                    self.cache.as_deref(),
                );
                self.perception.absorb(&stats);
                Ok(self.register_result(step, result?, &[args[1].clone()]))
            }
            OperatorKind::Plot => {
                expect_args(3)?;
                let input = self.step_input(step)?;
                let plot = apply_plot(input.as_ref(), &args[0], &args[1], &args[2])?;
                Ok(StepOutcome::Plot { plot, table: input })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesura_data::{generate_artwork, ArtworkConfig};
    use caesura_llm::LogicalStep;

    fn executor() -> Executor {
        let data = generate_artwork(&ArtworkConfig::small());
        Executor::new(data.lake.catalog().clone(), data.lake.images().clone())
    }

    fn step(
        number: usize,
        description: &str,
        inputs: Vec<&str>,
        output: &str,
        new: Vec<&str>,
    ) -> LogicalStep {
        LogicalStep::new(
            number,
            description,
            inputs.into_iter().map(String::from).collect(),
            output,
            new.into_iter().map(String::from).collect(),
        )
    }

    fn decision(op: OperatorKind, args: Vec<&str>) -> OperatorDecision {
        OperatorDecision {
            step_number: 1,
            reasoning: String::new(),
            operator: op,
            arguments: args.into_iter().map(String::from).collect(),
        }
    }

    #[test]
    fn figure4_query2_pipeline_executes_end_to_end() {
        let mut executor = executor();
        // Step 1: join.
        let outcome = executor
            .execute(
                &step(1, "Join", vec!["paintings_metadata", "painting_images"], "joined_table", vec![]),
                &decision(
                    OperatorKind::SqlJoin,
                    vec!["SELECT * FROM paintings_metadata JOIN painting_images ON paintings_metadata.img_path = painting_images.img_path"],
                ),
            )
            .unwrap();
        assert!(matches!(outcome, StepOutcome::Table { ref name, .. } if name == "joined_table"));

        // Step 2: VisualQA sword count.
        let outcome = executor
            .execute(
                &step(
                    2,
                    "Extract swords",
                    vec!["joined_table"],
                    "joined_table",
                    vec!["num_swords"],
                ),
                &decision(
                    OperatorKind::VisualQa,
                    vec![
                        "image",
                        "num_swords",
                        "How many swords are depicted?",
                        "int",
                    ],
                ),
            )
            .unwrap();
        assert!(outcome.observation().contains("num_swords"));

        // Step 3: Python century.
        executor
            .execute(
                &step(
                    3,
                    "Extract century",
                    vec!["joined_table"],
                    "joined_table",
                    vec!["century"],
                ),
                &decision(
                    OperatorKind::PythonUdf,
                    vec![
                        "Extract the century from the dates in the 'inception' column",
                        "century",
                    ],
                ),
            )
            .unwrap();

        // Step 4: aggregation.
        executor
            .execute(
                &step(4, "Aggregate", vec!["joined_table"], "result_table", vec!["max_num_swords"]),
                &decision(
                    OperatorKind::SqlAggregation,
                    vec!["SELECT century, MAX(num_swords) AS max_num_swords FROM joined_table GROUP BY century"],
                ),
            )
            .unwrap();

        // Step 5: plot.
        let outcome = executor
            .execute(
                &step(5, "Plot", vec!["result_table"], "plot", vec![]),
                &decision(OperatorKind::Plot, vec!["bar", "century", "max_num_swords"]),
            )
            .unwrap();
        match outcome {
            StepOutcome::Plot { plot, table } => {
                assert!(!plot.points.is_empty());
                assert!(table.schema().contains("max_num_swords"));
            }
            other => panic!("expected a plot outcome, got: {other:?}"),
        }
    }

    #[test]
    fn selection_accepts_bare_conditions_and_observes_row_counts() {
        let mut executor = executor();
        let outcome = executor
            .execute(
                &step(1, "Select", vec!["paintings_metadata"], "filtered", vec![]),
                &decision(OperatorKind::SqlSelection, vec!["movement = 'Baroque'"]),
            )
            .unwrap();
        match outcome {
            StepOutcome::Table { name, num_rows, .. } => {
                assert_eq!(name, "filtered");
                assert!(num_rows < 40);
            }
            other => panic!("expected a table outcome, got: {other:?}"),
        }
    }

    #[test]
    fn missing_tables_and_bad_arguments_produce_descriptive_errors() {
        let mut executor = executor();
        let err = executor
            .execute(
                &step(1, "Select", vec!["nonexistent_table"], "x", vec![]),
                &decision(OperatorKind::SqlSelection, vec!["a = 1"]),
            )
            .unwrap_err();
        assert!(err.to_string().contains("nonexistent_table"));

        let err = executor
            .execute(
                &step(1, "Plot", vec!["paintings_metadata"], "plot", vec![]),
                &decision(OperatorKind::Plot, vec!["bar"]),
            )
            .unwrap_err();
        assert!(err.to_string().contains("argument"));

        let err = executor
            .execute(
                &step(1, "VQA", vec!["paintings_metadata"], "x", vec!["n"]),
                &decision(
                    OperatorKind::VisualQa,
                    vec!["title", "n", "How many swords are depicted?", "int"],
                ),
            )
            .unwrap_err();
        assert!(err.to_string().contains("IMAGE"));
    }

    #[test]
    fn reset_clears_intermediate_state() {
        let mut executor = executor();
        executor
            .execute(
                &step(1, "Select", vec!["paintings_metadata"], "filtered", vec![]),
                &decision(OperatorKind::SqlSelection, vec!["genre = 'portrait'"]),
            )
            .unwrap();
        assert!(executor.last_table().is_some());
        executor.reset();
        assert!(executor.last_table().is_none());
        assert!(executor.intermediate().is_empty());
    }
}
