//! Error type for the CAESURA core.

use caesura_engine::EngineError;
use caesura_llm::LlmError;
use caesura_modal::ModalError;
use std::fmt;

/// Result alias for the core crate.
pub type CoreResult<T> = Result<T, CoreError>;

/// Errors raised while planning or executing a query.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The relational engine failed.
    Engine(EngineError),
    /// A multi-modal operator failed.
    Modal(ModalError),
    /// The language model failed or produced unparseable output.
    Llm(LlmError),
    /// The plan could not be executed even after error recovery.
    PlanFailed {
        /// The step that ultimately failed.
        step: usize,
        /// Description of that step.
        step_description: String,
        /// The last error message.
        message: String,
        /// How many recovery attempts were made.
        attempts: usize,
    },
    /// The planning phase produced an empty or unusable plan.
    PlanningFailed {
        /// Why planning failed.
        message: String,
    },
    /// The discovery phase found no relevant data for the query.
    NoRelevantData {
        /// The query that could not be grounded.
        query: String,
    },
    /// An operator decision referenced a table that does not exist.
    MissingInput {
        /// The table that was not found.
        table: String,
    },
    /// The query was cancelled through its `QueryHandle` before it could
    /// complete. Cancellation is cooperative: the session checks for it
    /// between plan steps and before every LLM / perception dispatch, so a
    /// cancelled run stops at the next checkpoint without leaving partial
    /// state behind (each query owns a fresh executor).
    Cancelled,
    /// The query's worker panicked mid-run (a bug in an operator or a
    /// panicking model client). The scheduler catches the unwind so the
    /// submitter's `wait()` still returns — with this error — and the
    /// worker thread survives to serve subsequent queries.
    Internal {
        /// The panic payload, rendered as text.
        message: String,
    },
    /// The persistent cache store could not be opened at session
    /// construction — most commonly because another live session holds the
    /// directory's lock file (see `caesura_store::StoreError::Locked`), or
    /// because the directory is not creatable/writable. Only
    /// [`Caesura::try_with_config`](crate::Caesura::try_with_config)
    /// surfaces this; queries themselves never fail with it (store write
    /// errors during a run are swallowed by the cache tiers).
    StoreUnavailable {
        /// The underlying store error, rendered as text.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Engine(e) => write!(f, "{e}"),
            CoreError::Modal(e) => write!(f, "{e}"),
            CoreError::Llm(e) => write!(f, "{e}"),
            CoreError::PlanFailed {
                step,
                step_description,
                message,
                attempts,
            } => write!(
                f,
                "step {step} ('{step_description}') could not be executed after {attempts} attempt(s): {message}"
            ),
            CoreError::PlanningFailed { message } => {
                write!(f, "the planning phase failed: {message}")
            }
            CoreError::NoRelevantData { query } => {
                write!(f, "no relevant data sources were found for the query '{query}'")
            }
            CoreError::MissingInput { table } => {
                write!(f, "the plan references table '{table}' which has not been produced")
            }
            CoreError::Cancelled => write!(f, "the query was cancelled before it completed"),
            CoreError::Internal { message } => {
                write!(f, "the query's worker panicked: {message}")
            }
            CoreError::StoreUnavailable { message } => {
                write!(f, "the persistent cache store could not be opened: {message}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}

impl From<ModalError> for CoreError {
    fn from(e: ModalError) -> Self {
        CoreError::Modal(e)
    }
}

impl From<LlmError> for CoreError {
    fn from(e: LlmError) -> Self {
        CoreError::Llm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let err: CoreError = EngineError::execution("boom").into();
        assert!(matches!(err, CoreError::Engine(_)));
        let err: CoreError = ModalError::TransformRuntime {
            message: "bad".into(),
        }
        .into();
        assert!(matches!(err, CoreError::Modal(_)));
        let err: CoreError = LlmError::MalformedPrompt {
            message: "bad".into(),
        }
        .into();
        assert!(matches!(err, CoreError::Llm(_)));
        let err = CoreError::PlanFailed {
            step: 3,
            step_description: "Select rows".into(),
            message: "unknown column".into(),
            attempts: 2,
        };
        let text = err.to_string();
        assert!(text.contains("step 3"));
        assert!(text.contains("2 attempt"));
        assert!(CoreError::Cancelled.to_string().contains("cancelled"));
    }
}
