//! Concurrent session serving: the scheduler behind [`Caesura::submit`].
//!
//! The CAESURA loop spends most of its wall clock waiting on LLM round trips
//! (plan → map → execute, §3.1 of the paper), and PR 1–4 made everything
//! underneath `Caesura` concurrency-ready: `Arc`-shared tables, a sharded
//! perception cache, a morsel worker pool, `&self` queries. This module adds
//! the missing serving surface on top — a session-owned scheduler that lets
//! N in-flight queries share one lake, one retriever index, and one
//! perception cache:
//!
//! * the scheduler — a persistent worker pool (`CaesuraConfig.session_workers`
//!   / `CAESURA_SESSION_WORKERS`, default hardware parallelism) pulling jobs
//!   from a **bounded** submission queue (`CaesuraConfig.session_queue` /
//!   `CAESURA_SESSION_QUEUE`, default 64). A full queue applies backpressure:
//!   `submit` blocks until a slot frees, `try_submit` returns `None`.
//!   Workers spawn lazily on the first submission and are joined when the
//!   session drops; at that point the queue is drained — every accepted
//!   query still completes.
//! * [`QueryHandle`] — the submitter's side of one scheduled query:
//!   blocking [`wait`](QueryHandle::wait), non-blocking
//!   [`poll`](QueryHandle::poll) / [`status`](QueryHandle::status),
//!   cooperative [`cancel`](QueryHandle::cancel), and a live
//!   [`subscribe`](QueryHandle::subscribe) stream of trace events.
//! * [`ServingStats`] — queue-depth / in-flight / completed counters, read
//!   through [`Caesura::serving_stats`].
//!
//! [`Caesura::submit`]: crate::Caesura::submit
//! [`Caesura::serving_stats`]: crate::Caesura::serving_stats

use crate::error::CoreError;
use crate::session::{QueryRun, SessionCore};
use crate::trace::TraceEvent;
use caesura_engine::ExecConfig;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, Once};
use std::thread::JoinHandle;
use std::time::Instant;

/// Default bound of the submission queue when neither
/// `CaesuraConfig.session_queue` nor `CAESURA_SESSION_QUEUE` is set.
pub const DEFAULT_QUEUE_DEPTH: usize = 64;

/// Lock a job-state mutex, recovering from poisoning: a panicking query is
/// caught and reported as `CoreError::Internal`, and the per-job state it
/// may have poisoned (result slot, subscriber list) must stay usable so the
/// submitter's `wait()` and the worker's cleanup still work.
fn lock_job<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Scheduler worker count described by the environment:
/// `CAESURA_SESSION_WORKERS`, or hardware parallelism when unset.
pub(crate) fn workers_from_env() -> usize {
    std::env::var("CAESURA_SESSION_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Submission-queue bound described by the environment:
/// `CAESURA_SESSION_QUEUE`, or [`DEFAULT_QUEUE_DEPTH`] when unset.
pub(crate) fn queue_depth_from_env() -> usize {
    std::env::var("CAESURA_SESSION_QUEUE")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_QUEUE_DEPTH)
}

/// Where a submitted query currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStatus {
    /// Accepted into the submission queue, not yet picked up by a worker.
    Queued,
    /// A scheduler worker is running it.
    Running,
    /// The run finished (successfully, with an error, or cancelled) and its
    /// [`QueryRun`] is available.
    Finished,
}

/// Counters of a session's serving scheduler, read via
/// [`Caesura::serving_stats`](crate::Caesura::serving_stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// Queries accepted but not yet picked up by a worker.
    pub queued: usize,
    /// Queries a worker is currently running.
    pub in_flight: usize,
    /// Queries that finished (including cancelled ones).
    pub completed: usize,
    /// Finished queries whose outcome was `CoreError::Cancelled`.
    pub cancelled: usize,
    /// Worker threads of the scheduler pool.
    pub workers: usize,
    /// Bound of the submission queue.
    pub queue_depth: usize,
}

struct Slot {
    status: QueryStatus,
    result: Option<QueryRun>,
}

/// Shared state of one scheduled query: the cancellation flag, the result
/// slot the worker fills, and the live trace subscribers.
pub(crate) struct JobState {
    query: String,
    cancelled: AtomicBool,
    slot: Mutex<Slot>,
    done: Condvar,
    subscribers: Arc<Mutex<Vec<Sender<TraceEvent>>>>,
    submitted: Instant,
    exec: ExecConfig,
}

impl JobState {
    fn new(query: &str, exec: ExecConfig) -> Self {
        JobState {
            query: query.to_string(),
            cancelled: AtomicBool::new(false),
            slot: Mutex::new(Slot {
                status: QueryStatus::Queued,
                result: None,
            }),
            done: Condvar::new(),
            subscribers: Arc::new(Mutex::new(Vec::new())),
            submitted: Instant::now(),
            exec,
        }
    }

    pub(crate) fn query(&self) -> &str {
        &self.query
    }

    pub(crate) fn cancel_flag(&self) -> &AtomicBool {
        &self.cancelled
    }

    pub(crate) fn exec(&self) -> ExecConfig {
        self.exec
    }

    pub(crate) fn queue_wait(&self) -> std::time::Duration {
        self.submitted.elapsed()
    }

    /// A [`TraceSink`](crate::trace::TraceSink) forwarding events to every
    /// live subscriber. Holds only the subscriber list (not the job), so a
    /// stored `QueryRun` can never keep its own job state alive.
    pub(crate) fn subscriber_sink(&self) -> crate::trace::TraceSink {
        let subscribers = Arc::clone(&self.subscribers);
        Arc::new(move |event: &TraceEvent| {
            let mut subscribers = lock_job(&subscribers);
            subscribers.retain(|sender| sender.send(event.clone()).is_ok());
        })
    }

    fn mark_running(&self) {
        lock_job(&self.slot).status = QueryStatus::Running;
    }

    /// Store the finished run, wake waiters, and drop every subscriber
    /// sender so live streams see a disconnect and terminate.
    fn finish(&self, run: QueryRun) {
        {
            let mut slot = lock_job(&self.slot);
            slot.status = QueryStatus::Finished;
            slot.result = Some(run);
        }
        self.done.notify_all();
        lock_job(&self.subscribers).clear();
    }
}

/// The submitter's side of one query scheduled via
/// [`Caesura::submit`](crate::Caesura::submit).
///
/// # Drop semantics
///
/// Dropping a handle **detaches** it: the query is not cancelled — it still
/// runs (or finishes running), frees its scheduler slot, updates
/// [`ServingStats`], and warms the session's perception cache; only the
/// ability to observe its result is lost. Call [`QueryHandle::cancel`] first
/// if the work itself should stop.
///
/// # Cancellation semantics
///
/// [`cancel`](QueryHandle::cancel) is cooperative and returns immediately:
/// it raises a flag the running query checks between plan steps and before
/// every LLM / perception dispatch. At the next checkpoint the run stops
/// with [`CoreError::Cancelled`] and a `Phase::Recovery` "cancelled" trace
/// event; a query cancelled while still queued never executes at all (its
/// run record carries the cancellation trace event and zero LLM calls). An
/// in-flight model call is never interrupted mid-dispatch — bounded by one
/// dispatch, not preempted.
pub struct QueryHandle {
    state: Arc<JobState>,
}

impl QueryHandle {
    /// The query text this handle tracks.
    pub fn query(&self) -> &str {
        &self.state.query
    }

    /// Non-blocking lifecycle probe.
    pub fn status(&self) -> QueryStatus {
        lock_job(&self.state.slot).status
    }

    /// Whether [`QueryHandle::cancel`] has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.state.cancelled.load(Ordering::Acquire)
    }

    /// Non-blocking result probe: `Some(run)` once the query finished,
    /// `None` while it is queued or running. The handle stays usable — the
    /// returned run is a clone (cheap: tables are `Arc`-shared).
    pub fn poll(&self) -> Option<QueryRun> {
        lock_job(&self.state.slot).result.clone()
    }

    /// Block until the query finishes and return its run record. Equivalent
    /// to the pre-serving blocking API: `session.run(q)` is exactly
    /// `session.submit(q).wait()`.
    pub fn wait(self) -> QueryRun {
        let mut slot = lock_job(&self.state.slot);
        while slot.result.is_none() {
            slot = self
                .state
                .done
                .wait(slot)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        slot.result.take().expect("checked above")
    }

    /// Request cooperative cancellation (see the type-level docs for the
    /// exact semantics). Returns immediately; `wait` observes the outcome.
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::Release);
    }

    /// Subscribe to the query's trace events as they are recorded, instead
    /// of reading `QueryRun::trace` only after completion. Events recorded
    /// *after* this call are delivered; subscribing to a query that already
    /// started misses its earlier events (they are still in the final
    /// trace). The channel disconnects when the query finishes, so
    /// `for event in handle.subscribe()` terminates on its own.
    pub fn subscribe(&self) -> Receiver<TraceEvent> {
        let (sender, receiver) = channel();
        // Register under the subscriber lock; `finish` clears this list
        // after storing the result, so a sender registered to an
        // already-finished query would at worst linger until the job state
        // drops — guard with a status check to disconnect immediately.
        let slot = lock_job(&self.state.slot);
        if slot.status != QueryStatus::Finished {
            lock_job(&self.state.subscribers).push(sender);
        }
        drop(slot);
        receiver
    }
}

struct Shared {
    queue: Mutex<VecDeque<Arc<JobState>>>,
    job_ready: Condvar,
    space_ready: Condvar,
    shutdown: AtomicBool,
    queued: AtomicUsize,
    in_flight: AtomicUsize,
    completed: AtomicUsize,
    cancelled: AtomicUsize,
    workers: usize,
    queue_depth: usize,
}

/// The session-owned scheduler: a bounded submission queue drained by a
/// persistent pool of worker threads, each running queries against the
/// `Arc`-shared [`SessionCore`].
pub(crate) struct Scheduler {
    shared: Arc<Shared>,
    spawn: Once,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    pub(crate) fn new(workers: usize, queue_depth: usize) -> Self {
        Scheduler {
            shared: Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                job_ready: Condvar::new(),
                space_ready: Condvar::new(),
                shutdown: AtomicBool::new(false),
                queued: AtomicUsize::new(0),
                in_flight: AtomicUsize::new(0),
                completed: AtomicUsize::new(0),
                cancelled: AtomicUsize::new(0),
                workers: workers.max(1),
                queue_depth: queue_depth.max(1),
            }),
            spawn: Once::new(),
            workers: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn stats(&self) -> ServingStats {
        ServingStats {
            queued: self.shared.queued.load(Ordering::Acquire),
            in_flight: self.shared.in_flight.load(Ordering::Acquire),
            completed: self.shared.completed.load(Ordering::Acquire),
            cancelled: self.shared.cancelled.load(Ordering::Acquire),
            workers: self.shared.workers,
            queue_depth: self.shared.queue_depth,
        }
    }

    /// Spawn the worker pool on first use (sessions that only construct —
    /// tests, config probes — never pay for idle threads).
    fn ensure_workers(&self, session: &Arc<SessionCore>) {
        self.spawn.call_once(|| {
            let mut workers = self.workers.lock().expect("scheduler worker lock");
            for index in 0..self.shared.workers {
                let shared = Arc::clone(&self.shared);
                let session = Arc::clone(session);
                let handle = std::thread::Builder::new()
                    .name(format!("caesura-serve-{index}"))
                    .spawn(move || worker_loop(shared, session))
                    .expect("failed to spawn a scheduler worker thread");
                workers.push(handle);
            }
        });
    }

    /// Enqueue a query, blocking while the submission queue is full
    /// (backpressure).
    pub(crate) fn submit(
        &self,
        session: &Arc<SessionCore>,
        query: &str,
        exec: ExecConfig,
    ) -> QueryHandle {
        self.ensure_workers(session);
        let state = Arc::new(JobState::new(query, exec));
        let mut queue = self.shared.queue.lock().expect("submission queue lock");
        while queue.len() >= self.shared.queue_depth {
            queue = self
                .shared
                .space_ready
                .wait(queue)
                .expect("submission queue lock");
        }
        queue.push_back(Arc::clone(&state));
        self.shared.queued.fetch_add(1, Ordering::AcqRel);
        drop(queue);
        self.shared.job_ready.notify_one();
        QueryHandle { state }
    }

    /// Enqueue a query if a submission slot is free; `None` when the queue
    /// is at capacity.
    pub(crate) fn try_submit(
        &self,
        session: &Arc<SessionCore>,
        query: &str,
        exec: ExecConfig,
    ) -> Option<QueryHandle> {
        self.ensure_workers(session);
        let state = Arc::new(JobState::new(query, exec));
        let mut queue = self.shared.queue.lock().expect("submission queue lock");
        if queue.len() >= self.shared.queue_depth {
            return None;
        }
        queue.push_back(Arc::clone(&state));
        self.shared.queued.fetch_add(1, Ordering::AcqRel);
        drop(queue);
        self.shared.job_ready.notify_one();
        Some(QueryHandle { state })
    }
}

impl Drop for Scheduler {
    /// Shut the pool down: workers drain the remaining queue (every accepted
    /// query still completes — detached handles included), then exit and are
    /// joined, so a dropped session never leaks scheduler threads.
    fn drop(&mut self) {
        {
            // Store the shutdown flag *under the queue mutex*: an idle worker
            // checks the flag while holding the lock and then releases it
            // atomically inside `job_ready.wait`, so a store + notify landing
            // in that check-to-wait window without the lock would be a lost
            // wakeup (the worker would sleep forever and `join` would hang).
            let _queue = self.shared.queue.lock().expect("submission queue lock");
            self.shared.shutdown.store(true, Ordering::Release);
        }
        self.shared.job_ready.notify_all();
        let mut workers = self.workers.lock().expect("scheduler worker lock");
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, session: Arc<SessionCore>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("submission queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.job_ready.wait(queue).expect("submission queue lock");
            }
        };
        shared.queued.fetch_sub(1, Ordering::AcqRel);
        shared.space_ready.notify_one();
        shared.in_flight.fetch_add(1, Ordering::AcqRel);
        job.mark_running();
        // Catch panics from the query (a buggy operator, a panicking model
        // client): the submitter's `wait()` must still return — with
        // `CoreError::Internal` — and this worker must survive to serve
        // subsequent queries. Pre-serving, a panic in `run()` reached the
        // caller on its own thread; an unguarded panic here would instead
        // strand the waiter forever and silently shrink the pool.
        let run =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| session.run_scheduled(&job)))
                .unwrap_or_else(|payload| {
                    let message = if let Some(text) = payload.downcast_ref::<&str>() {
                        (*text).to_string()
                    } else if let Some(text) = payload.downcast_ref::<String>() {
                        text.clone()
                    } else {
                        "non-string panic payload".to_string()
                    };
                    QueryRun {
                        query: job.query().to_string(),
                        logical_plan: None,
                        decisions: Vec::new(),
                        output: Err(CoreError::Internal { message }),
                        trace: crate::trace::ExecutionTrace::new(),
                    }
                });
        let was_cancelled = matches!(run.output, Err(CoreError::Cancelled));
        // Update the counters *before* waking waiters: a submitter observing
        // `wait()` return must see its query in `completed`.
        shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        shared.completed.fetch_add(1, Ordering::AcqRel);
        if was_cancelled {
            shared.cancelled.fetch_add(1, Ordering::AcqRel);
        }
        job.finish(run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_clamp_to_at_least_one() {
        // The env readers themselves are exercised through real sessions; here
        // we pin the constructor clamps that protect against zero knobs.
        let scheduler = Scheduler::new(0, 0);
        let stats = scheduler.stats();
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.queue_depth, 1);
        assert_eq!(stats.completed, 0);
        assert_eq!(DEFAULT_QUEUE_DEPTH, 64);
    }

    #[test]
    fn handle_status_and_cancel_flag_are_observable_before_scheduling() {
        let state = Arc::new(JobState::new("q", ExecConfig::sequential()));
        let handle = QueryHandle {
            state: Arc::clone(&state),
        };
        assert_eq!(handle.status(), QueryStatus::Queued);
        assert_eq!(handle.query(), "q");
        assert!(handle.poll().is_none());
        assert!(!handle.is_cancelled());
        handle.cancel();
        assert!(handle.is_cancelled());
        assert!(state.cancel_flag().load(Ordering::Acquire));
    }

    #[test]
    fn subscribe_after_finish_disconnects_immediately() {
        let state = Arc::new(JobState::new("q", ExecConfig::sequential()));
        state.finish(QueryRun {
            query: "q".into(),
            logical_plan: None,
            decisions: Vec::new(),
            output: Err(CoreError::Cancelled),
            trace: crate::trace::ExecutionTrace::new(),
        });
        let handle = QueryHandle { state };
        assert_eq!(handle.status(), QueryStatus::Finished);
        let receiver = handle.subscribe();
        // No sender was registered: the stream terminates without events.
        assert!(receiver.iter().next().is_none());
    }
}
