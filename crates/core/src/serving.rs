//! Concurrent session serving: the scheduler behind [`Caesura::submit`].
//!
//! The CAESURA loop spends most of its wall clock waiting on LLM round trips
//! (plan → map → execute, §3.1 of the paper), and PR 1–4 made everything
//! underneath `Caesura` concurrency-ready: `Arc`-shared tables, a sharded
//! perception cache, a morsel worker pool, `&self` queries. This module adds
//! the serving surface on top — a session-owned scheduler that lets N
//! in-flight queries share one lake, one retriever index, and one perception
//! cache:
//!
//! * the scheduler — a persistent worker pool (`CaesuraConfig.session_workers`
//!   / `CAESURA_SESSION_WORKERS`, default hardware parallelism) pulling jobs
//!   from a **bounded** submission queue (`CaesuraConfig.session_queue` /
//!   `CAESURA_SESSION_QUEUE`, default 64). Since PR 8 the ready queue is
//!   tenant-aware (see [`sched`](crate::sched)): priority tiers preempt at
//!   dequeue, deficit round robin shares each tier across tenants, and
//!   per-tenant admission quotas bound queued + in-flight queries. A full
//!   queue applies backpressure: `submit` blocks until a slot frees, while
//!   the fail-fast `try_submit` / `submit_with` return a typed
//!   [`AdmissionError`]. Workers spawn lazily on the first submission and
//!   are joined when the session drops; at that point the queue is drained —
//!   every accepted query still completes.
//! * [`QueryHandle`] — the submitter's side of one scheduled query:
//!   blocking [`wait`](QueryHandle::wait) /
//!   [`wait_timeout`](QueryHandle::wait_timeout), non-blocking
//!   [`poll`](QueryHandle::poll) / [`status`](QueryHandle::status),
//!   cooperative [`cancel`](QueryHandle::cancel), and a live
//!   [`subscribe`](QueryHandle::subscribe) stream of trace events.
//! * [`ServingStats`] — aggregate queue-depth / in-flight / completed
//!   counters ([`Caesura::serving_stats`]), broken out per tenant by
//!   [`Caesura::tenant_stats`].
//!
//! [`Caesura::submit`]: crate::Caesura::submit
//! [`Caesura::serving_stats`]: crate::Caesura::serving_stats
//! [`Caesura::tenant_stats`]: crate::Caesura::tenant_stats

use crate::error::CoreError;
use crate::sched::{
    AdmissionError, Priority, SchedPolicy, SubmitOptions, TenantCounters, TenantQueues,
    TenantServingStats,
};
use crate::session::{QueryRun, SessionCore};
use crate::trace::{SchedulingInfo, TraceEvent};
use caesura_engine::ExecConfig;
use caesura_llm::CancelToken;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, Once};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default bound of the submission queue when neither
/// `CaesuraConfig.session_queue` nor `CAESURA_SESSION_QUEUE` is set.
pub const DEFAULT_QUEUE_DEPTH: usize = 64;

/// Lock a job-state mutex, recovering from poisoning: a panicking query is
/// caught and reported as `CoreError::Internal`, and the per-job state it
/// may have poisoned (result slot, subscriber list) must stay usable so the
/// submitter's `wait()` and the worker's cleanup still work.
fn lock_job<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Scheduler worker count described by the environment:
/// `CAESURA_SESSION_WORKERS`, or hardware parallelism when unset.
pub(crate) fn workers_from_env() -> usize {
    std::env::var("CAESURA_SESSION_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Submission-queue bound described by the environment:
/// `CAESURA_SESSION_QUEUE`, or [`DEFAULT_QUEUE_DEPTH`] when unset.
pub(crate) fn queue_depth_from_env() -> usize {
    std::env::var("CAESURA_SESSION_QUEUE")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_QUEUE_DEPTH)
}

/// Where a submitted query currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStatus {
    /// Accepted into the submission queue, not yet picked up by a worker.
    Queued,
    /// A scheduler worker is running it.
    Running,
    /// The run finished (successfully, with an error, or cancelled) and its
    /// [`QueryRun`] is available.
    Finished,
}

/// Aggregate counters of a session's serving scheduler, read via
/// [`Caesura::serving_stats`](crate::Caesura::serving_stats). Per-tenant
/// breakdowns come from
/// [`Caesura::tenant_stats`](crate::Caesura::tenant_stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// Queries accepted but not yet picked up by a worker.
    pub queued: usize,
    /// Queries a worker is currently running.
    pub in_flight: usize,
    /// Queries that finished (including cancelled ones).
    pub completed: usize,
    /// Finished queries whose outcome was `CoreError::Cancelled`.
    pub cancelled: usize,
    /// Fail-fast submissions turned away with an
    /// [`AdmissionError`] (never enqueued, never
    /// counted anywhere else).
    pub rejected: usize,
    /// Worker threads of the scheduler pool.
    pub workers: usize,
    /// Bound of the submission queue.
    pub queue_depth: usize,
}

struct Slot {
    status: QueryStatus,
    result: Option<QueryRun>,
}

/// Shared state of one scheduled query: the cancel token, the result slot
/// the worker fills, the live trace subscribers, and its scheduling
/// identity (tenant / priority / deadline).
pub(crate) struct JobState {
    query: String,
    tenant: Arc<str>,
    priority: Priority,
    deadline: Option<Duration>,
    default_options: bool,
    cancel: CancelToken,
    slot: Mutex<Slot>,
    done: Condvar,
    subscribers: Arc<Mutex<Vec<Sender<TraceEvent>>>>,
    submitted: Instant,
    exec: ExecConfig,
}

impl JobState {
    fn new(query: &str, exec: ExecConfig, options: &SubmitOptions) -> Self {
        let cancel = match options.deadline {
            Some(budget) => CancelToken::with_deadline(Instant::now() + budget),
            None => CancelToken::new(),
        };
        JobState {
            query: query.to_string(),
            tenant: Arc::from(options.tenant_name()),
            priority: options.priority,
            deadline: options.deadline,
            default_options: options.is_default(),
            cancel,
            slot: Mutex::new(Slot {
                status: QueryStatus::Queued,
                result: None,
            }),
            done: Condvar::new(),
            subscribers: Arc::new(Mutex::new(Vec::new())),
            submitted: Instant::now(),
            exec,
        }
    }

    pub(crate) fn query(&self) -> &str {
        &self.query
    }

    pub(crate) fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    fn tenant(&self) -> &Arc<str> {
        &self.tenant
    }

    pub(crate) fn exec(&self) -> ExecConfig {
        self.exec
    }

    pub(crate) fn queue_wait(&self) -> Duration {
        self.submitted.elapsed()
    }

    /// The scheduling identity recorded in the run's trace — `None` for
    /// default-path submissions (default tenant, default priority, no
    /// deadline), whose traces stay byte-identical to the PR 5 scheduler.
    pub(crate) fn scheduling_info(&self) -> Option<SchedulingInfo> {
        if self.default_options {
            return None;
        }
        Some(SchedulingInfo {
            tenant: self.tenant.to_string(),
            priority: self.priority,
            deadline: self.deadline,
        })
    }

    /// A [`TraceSink`](crate::trace::TraceSink) forwarding events to every
    /// live subscriber. Holds only the subscriber list (not the job), so a
    /// stored `QueryRun` can never keep its own job state alive.
    pub(crate) fn subscriber_sink(&self) -> crate::trace::TraceSink {
        let subscribers = Arc::clone(&self.subscribers);
        Arc::new(move |event: &TraceEvent| {
            let mut subscribers = lock_job(&subscribers);
            subscribers.retain(|sender| sender.send(event.clone()).is_ok());
        })
    }

    fn mark_running(&self) {
        lock_job(&self.slot).status = QueryStatus::Running;
    }

    /// Store the finished run, wake waiters, and drop every subscriber
    /// sender so live streams see a disconnect and terminate.
    fn finish(&self, run: QueryRun) {
        {
            let mut slot = lock_job(&self.slot);
            slot.status = QueryStatus::Finished;
            slot.result = Some(run);
        }
        self.done.notify_all();
        lock_job(&self.subscribers).clear();
    }
}

/// The submitter's side of one query scheduled via
/// [`Caesura::submit`](crate::Caesura::submit) /
/// [`Caesura::submit_with`](crate::Caesura::submit_with).
///
/// # Drop semantics
///
/// Dropping a handle **detaches** it: the query is not cancelled — it still
/// runs (or finishes running), frees its scheduler slot, updates
/// [`ServingStats`], and warms the session's perception cache; only the
/// ability to observe its result is lost. Call [`QueryHandle::cancel`] first
/// if the work itself should stop.
///
/// # Cancellation semantics
///
/// [`cancel`](QueryHandle::cancel) is cooperative and returns immediately:
/// it fires a [`CancelToken`] the running query
/// checks between plan steps, before every LLM / perception dispatch, and —
/// for cancellation-aware transports — **while a dispatch is in flight**, so
/// cancellation latency is bounded by the transport's polling interval, not
/// by a full model round trip. At the next check the run stops with
/// [`CoreError::Cancelled`] and a `Phase::Recovery` "cancelled" trace event;
/// a query cancelled while still queued never executes at all (its run
/// record carries the cancellation trace event and zero LLM calls). A
/// submission deadline fires the same token when its budget expires.
pub struct QueryHandle {
    state: Arc<JobState>,
}

impl std::fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryHandle")
            .field("query", &self.query())
            .field("tenant", &self.tenant())
            .field("priority", &self.priority())
            .field("status", &self.status())
            .finish_non_exhaustive()
    }
}

impl QueryHandle {
    /// The query text this handle tracks.
    pub fn query(&self) -> &str {
        &self.state.query
    }

    /// The tenant this query was submitted under.
    pub fn tenant(&self) -> &str {
        &self.state.tenant
    }

    /// The priority tier this query was submitted at.
    pub fn priority(&self) -> Priority {
        self.state.priority
    }

    /// Non-blocking lifecycle probe.
    pub fn status(&self) -> QueryStatus {
        lock_job(&self.state.slot).status
    }

    /// Whether [`QueryHandle::cancel`] has been requested. (A pending
    /// deadline that has not expired — or expired without anyone asking —
    /// does not count as a cancel *request*.)
    pub fn is_cancelled(&self) -> bool {
        self.state.cancel.cancel_requested()
    }

    /// Non-blocking result probe: `Some(run)` once the query finished,
    /// `None` while it is queued or running. The handle stays usable — the
    /// returned run is a clone (cheap: tables are `Arc`-shared).
    pub fn poll(&self) -> Option<QueryRun> {
        lock_job(&self.state.slot).result.clone()
    }

    /// Block until the query finishes and return its run record. Equivalent
    /// to the pre-serving blocking API: `session.run(q)` is exactly
    /// `session.submit(q).wait()`.
    pub fn wait(self) -> QueryRun {
        let mut slot = lock_job(&self.state.slot);
        while slot.result.is_none() {
            slot = self
                .state
                .done
                .wait(slot)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        slot.result.take().expect("checked above")
    }

    /// Block until the query finishes or `timeout` elapses: `Some(run)` on
    /// completion, `None` on timeout. Unlike [`wait`](QueryHandle::wait)
    /// the handle stays usable (the run is a clone, like
    /// [`poll`](QueryHandle::poll)), so callers can keep waiting, cancel,
    /// or detach after a timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<QueryRun> {
        let deadline = Instant::now() + timeout;
        let mut slot = lock_job(&self.state.slot);
        loop {
            if slot.result.is_some() {
                return slot.result.clone();
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            slot = self
                .state
                .done
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .0;
        }
    }

    /// Request cooperative cancellation (see the type-level docs for the
    /// exact semantics). Returns immediately; `wait` observes the outcome.
    pub fn cancel(&self) {
        self.state.cancel.cancel();
    }

    /// Subscribe to the query's trace events as they are recorded, instead
    /// of reading `QueryRun::trace` only after completion. Events recorded
    /// *after* this call are delivered; subscribing to a query that already
    /// started misses its earlier events (they are still in the final
    /// trace). The channel disconnects when the query finishes, so
    /// `for event in handle.subscribe()` terminates on its own.
    pub fn subscribe(&self) -> Receiver<TraceEvent> {
        let (sender, receiver) = channel();
        // Register under the subscriber lock; `finish` clears this list
        // after storing the result, so a sender registered to an
        // already-finished query would at worst linger until the job state
        // drops — guard with a status check to disconnect immediately.
        let slot = lock_job(&self.state.slot);
        if slot.status != QueryStatus::Finished {
            lock_job(&self.state.subscribers).push(sender);
        }
        drop(slot);
        receiver
    }
}

/// Everything the scheduler mutates under one mutex: the tenant-aware ready
/// queue and the per-tenant counters. One lock keeps admission (quota
/// checks against queued + in-flight) atomic with the queue itself.
struct SchedState {
    queues: TenantQueues<Arc<JobState>>,
    tenants: BTreeMap<Arc<str>, TenantCounters>,
}

struct Shared {
    state: Mutex<SchedState>,
    job_ready: Condvar,
    space_ready: Condvar,
    shutdown: AtomicBool,
    queued: AtomicUsize,
    in_flight: AtomicUsize,
    completed: AtomicUsize,
    cancelled: AtomicUsize,
    rejected: AtomicUsize,
    workers: usize,
    queue_depth: usize,
}

/// The session-owned scheduler: a bounded, tenant-aware submission queue
/// drained by a persistent pool of worker threads, each running queries
/// against the `Arc`-shared [`SessionCore`].
pub(crate) struct Scheduler {
    shared: Arc<Shared>,
    spawn: Once,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    pub(crate) fn new(workers: usize, queue_depth: usize, policy: SchedPolicy) -> Self {
        Scheduler {
            shared: Arc::new(Shared {
                state: Mutex::new(SchedState {
                    queues: TenantQueues::new(policy),
                    tenants: BTreeMap::new(),
                }),
                job_ready: Condvar::new(),
                space_ready: Condvar::new(),
                shutdown: AtomicBool::new(false),
                queued: AtomicUsize::new(0),
                in_flight: AtomicUsize::new(0),
                completed: AtomicUsize::new(0),
                cancelled: AtomicUsize::new(0),
                rejected: AtomicUsize::new(0),
                workers: workers.max(1),
                queue_depth: queue_depth.max(1),
            }),
            spawn: Once::new(),
            workers: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn stats(&self) -> ServingStats {
        ServingStats {
            queued: self.shared.queued.load(Ordering::Acquire),
            in_flight: self.shared.in_flight.load(Ordering::Acquire),
            completed: self.shared.completed.load(Ordering::Acquire),
            cancelled: self.shared.cancelled.load(Ordering::Acquire),
            rejected: self.shared.rejected.load(Ordering::Acquire),
            workers: self.shared.workers,
            queue_depth: self.shared.queue_depth,
        }
    }

    pub(crate) fn tenant_stats(&self) -> Vec<TenantServingStats> {
        let state = self.shared.state.lock().expect("submission queue lock");
        state
            .tenants
            .iter()
            .map(|(tenant, counters)| counters.snapshot(tenant))
            .collect()
    }

    /// Spawn the worker pool on first use (sessions that only construct —
    /// tests, config probes — never pay for idle threads).
    fn ensure_workers(&self, session: &Arc<SessionCore>) {
        self.spawn.call_once(|| {
            let mut workers = self.workers.lock().expect("scheduler worker lock");
            for index in 0..self.shared.workers {
                let shared = Arc::clone(&self.shared);
                let session = Arc::clone(session);
                let handle = std::thread::Builder::new()
                    .name(format!("caesura-serve-{index}"))
                    .spawn(move || worker_loop(shared, session))
                    .expect("failed to spawn a scheduler worker thread");
                workers.push(handle);
            }
        });
    }

    /// Enqueue a query, blocking while the submission queue is full or the
    /// tenant is at its quota (backpressure).
    pub(crate) fn submit(
        &self,
        session: &Arc<SessionCore>,
        query: &str,
        exec: ExecConfig,
        options: SubmitOptions,
    ) -> QueryHandle {
        self.submit_inner(session, query, exec, options, true)
            .expect(
                "a blocking submission is only rejected when the session is shutting down or the \
                 deadline budget is zero",
            )
    }

    /// Enqueue a query if it passes admission; a typed [`AdmissionError`]
    /// otherwise (the query was never enqueued).
    pub(crate) fn submit_with(
        &self,
        session: &Arc<SessionCore>,
        query: &str,
        exec: ExecConfig,
        options: SubmitOptions,
    ) -> Result<QueryHandle, AdmissionError> {
        self.submit_inner(session, query, exec, options, false)
    }

    fn submit_inner(
        &self,
        session: &Arc<SessionCore>,
        query: &str,
        exec: ExecConfig,
        options: SubmitOptions,
        blocking: bool,
    ) -> Result<QueryHandle, AdmissionError> {
        self.ensure_workers(session);
        let state = Arc::new(JobState::new(query, exec, &options));
        if let Some(deadline) = options.deadline {
            if deadline == Duration::ZERO {
                self.reject(state.tenant());
                return Err(AdmissionError::DeadlineUnmeetable { deadline });
            }
        }
        let mut sched = self.shared.state.lock().expect("submission queue lock");
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                drop(sched);
                self.reject(state.tenant());
                return Err(AdmissionError::ShuttingDown);
            }
            let queue_full = sched.queues.len() >= self.shared.queue_depth;
            let quota = sched.queues.policy().tenant_quota;
            let over_quota = quota.is_some_and(|quota| {
                sched
                    .tenants
                    .get(state.tenant())
                    .map(|c| c.queued + c.in_flight >= quota)
                    .unwrap_or(false)
            });
            if !queue_full && !over_quota {
                sched
                    .queues
                    .push(state.tenant(), state.priority, Arc::clone(&state));
                sched
                    .tenants
                    .entry(Arc::clone(state.tenant()))
                    .or_default()
                    .queued += 1;
                self.shared.queued.fetch_add(1, Ordering::AcqRel);
                drop(sched);
                self.shared.job_ready.notify_one();
                return Ok(QueryHandle { state });
            }
            if !blocking {
                // The more specific reason wins: a tenant at quota is told
                // so even when the queue is also full.
                let error = if over_quota {
                    AdmissionError::TenantOverQuota {
                        tenant: state.tenant().to_string(),
                        quota: quota.expect("over_quota implies a quota"),
                    }
                } else {
                    AdmissionError::QueueFull {
                        depth: self.shared.queue_depth,
                    }
                };
                drop(sched);
                self.reject(state.tenant());
                return Err(error);
            }
            sched = self
                .shared
                .space_ready
                .wait(sched)
                .expect("submission queue lock");
        }
    }

    /// Count a turned-away submission, globally and for its tenant.
    fn reject(&self, tenant: &Arc<str>) {
        self.shared.rejected.fetch_add(1, Ordering::AcqRel);
        let mut sched = self.shared.state.lock().expect("submission queue lock");
        sched
            .tenants
            .entry(Arc::clone(tenant))
            .or_default()
            .rejected += 1;
    }
}

impl Drop for Scheduler {
    /// Shut the pool down: workers drain the remaining queue (every accepted
    /// query still completes — detached handles included), then exit and are
    /// joined, so a dropped session never leaks scheduler threads.
    fn drop(&mut self) {
        {
            // Store the shutdown flag *under the queue mutex*: an idle worker
            // checks the flag while holding the lock and then releases it
            // atomically inside `job_ready.wait`, so a store + notify landing
            // in that check-to-wait window without the lock would be a lost
            // wakeup (the worker would sleep forever and `join` would hang).
            let _state = self.shared.state.lock().expect("submission queue lock");
            self.shared.shutdown.store(true, Ordering::Release);
        }
        self.shared.job_ready.notify_all();
        self.shared.space_ready.notify_all();
        let mut workers = self.workers.lock().expect("scheduler worker lock");
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, session: Arc<SessionCore>) {
    loop {
        let job = {
            let mut sched = shared.state.lock().expect("submission queue lock");
            loop {
                if let Some(job) = sched.queues.pop() {
                    // Per-tenant pickup bookkeeping under the same lock that
                    // guards admission, so quota checks never see a torn
                    // queued/in-flight pair.
                    let wait = job.queue_wait();
                    let counters = sched.tenants.entry(Arc::clone(job.tenant())).or_default();
                    counters.queued = counters.queued.saturating_sub(1);
                    counters.in_flight += 1;
                    counters.queue_wait += wait;
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                sched = shared.job_ready.wait(sched).expect("submission queue lock");
            }
        };
        shared.queued.fetch_sub(1, Ordering::AcqRel);
        shared.space_ready.notify_all();
        shared.in_flight.fetch_add(1, Ordering::AcqRel);
        job.mark_running();
        // Catch panics from the query (a buggy operator, a panicking model
        // client): the submitter's `wait()` must still return — with
        // `CoreError::Internal` — and this worker must survive to serve
        // subsequent queries. Pre-serving, a panic in `run()` reached the
        // caller on its own thread; an unguarded panic here would instead
        // strand the waiter forever and silently shrink the pool.
        let run =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| session.run_scheduled(&job)))
                .unwrap_or_else(|payload| {
                    let message = if let Some(text) = payload.downcast_ref::<&str>() {
                        (*text).to_string()
                    } else if let Some(text) = payload.downcast_ref::<String>() {
                        text.clone()
                    } else {
                        "non-string panic payload".to_string()
                    };
                    QueryRun {
                        query: job.query().to_string(),
                        logical_plan: None,
                        decisions: Vec::new(),
                        output: Err(CoreError::Internal { message }),
                        trace: crate::trace::ExecutionTrace::new(),
                    }
                });
        let was_cancelled = matches!(run.output, Err(CoreError::Cancelled));
        // Update the counters *before* waking waiters: a submitter observing
        // `wait()` return must see its query in `completed`.
        shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        shared.completed.fetch_add(1, Ordering::AcqRel);
        if was_cancelled {
            shared.cancelled.fetch_add(1, Ordering::AcqRel);
        }
        {
            let mut sched = shared.state.lock().expect("submission queue lock");
            let counters = sched.tenants.entry(Arc::clone(job.tenant())).or_default();
            counters.in_flight = counters.in_flight.saturating_sub(1);
            counters.completed += 1;
            if was_cancelled {
                counters.cancelled += 1;
            }
        }
        // Completion frees a quota slot: wake submitters blocked on the
        // tenant quota, not just on queue space.
        shared.space_ready.notify_all();
        job.finish(run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_clamp_to_at_least_one() {
        // The env readers themselves are exercised through real sessions; here
        // we pin the constructor clamps that protect against zero knobs.
        let scheduler = Scheduler::new(0, 0, SchedPolicy::default());
        let stats = scheduler.stats();
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.queue_depth, 1);
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.rejected, 0);
        assert!(scheduler.tenant_stats().is_empty());
        assert_eq!(DEFAULT_QUEUE_DEPTH, 64);
    }

    #[test]
    fn handle_status_and_cancel_token_are_observable_before_scheduling() {
        let state = Arc::new(JobState::new(
            "q",
            ExecConfig::sequential(),
            &SubmitOptions::default(),
        ));
        let handle = QueryHandle {
            state: Arc::clone(&state),
        };
        assert_eq!(handle.status(), QueryStatus::Queued);
        assert_eq!(handle.query(), "q");
        assert_eq!(handle.tenant(), crate::sched::DEFAULT_TENANT);
        assert_eq!(handle.priority(), Priority::INTERACTIVE);
        assert!(handle.poll().is_none());
        assert!(!handle.is_cancelled());
        assert!(state.scheduling_info().is_none());
        handle.cancel();
        assert!(handle.is_cancelled());
        assert!(state.cancel_token().is_cancelled());
    }

    #[test]
    fn non_default_options_carry_scheduling_info() {
        let options = SubmitOptions::for_tenant("acme")
            .batch()
            .with_deadline(Duration::from_secs(9));
        let state = JobState::new("q", ExecConfig::sequential(), &options);
        let info = state.scheduling_info().expect("non-default submission");
        assert_eq!(info.tenant, "acme");
        assert_eq!(info.priority, Priority::BATCH);
        assert_eq!(info.deadline, Some(Duration::from_secs(9)));
        // The deadline budget armed the token.
        assert!(state.cancel_token().deadline().is_some());
        assert!(!state.cancel_token().is_cancelled());
    }

    #[test]
    fn wait_timeout_times_out_then_observes_completion() {
        let state = Arc::new(JobState::new(
            "q",
            ExecConfig::sequential(),
            &SubmitOptions::default(),
        ));
        let handle = QueryHandle {
            state: Arc::clone(&state),
        };
        assert!(handle.wait_timeout(Duration::from_millis(10)).is_none());
        state.finish(QueryRun {
            query: "q".into(),
            logical_plan: None,
            decisions: Vec::new(),
            output: Err(CoreError::Cancelled),
            trace: crate::trace::ExecutionTrace::new(),
        });
        let run = handle
            .wait_timeout(Duration::from_secs(5))
            .expect("finished");
        assert!(run.cancelled());
        // The handle stays usable after a successful wait_timeout.
        assert!(handle.poll().is_some());
    }

    #[test]
    fn subscribe_after_finish_disconnects_immediately() {
        let state = Arc::new(JobState::new(
            "q",
            ExecConfig::sequential(),
            &SubmitOptions::default(),
        ));
        state.finish(QueryRun {
            query: "q".into(),
            logical_plan: None,
            decisions: Vec::new(),
            output: Err(CoreError::Cancelled),
            trace: crate::trace::ExecutionTrace::new(),
        });
        let handle = QueryHandle { state };
        assert_eq!(handle.status(), QueryStatus::Finished);
        let receiver = handle.subscribe();
        // No sender was registered: the stream terminates without events.
        assert!(receiver.iter().next().is_none());
    }
}
