//! Tenant-aware scheduling policy: priority tiers, deficit-round-robin
//! tenant lanes, and typed admission control.
//!
//! PR 5's scheduler was a single FIFO: fine for one caller, but under mixed
//! traffic a batch tenant that floods the queue starves every interactive
//! query behind it, and a full queue can only *block* the submitter. This
//! module supplies the policy layer [`serving`](crate::serving) plugs in:
//!
//! * [`SubmitOptions`] — who a query belongs to ([tenant](SubmitOptions::tenant)),
//!   how urgent it is ([priority](SubmitOptions::priority)), and how long it
//!   may take ([deadline](SubmitOptions::deadline)).
//! * [`AdmissionError`] — the typed reasons a fail-fast submission is turned
//!   away: queue full, tenant over quota, deadline unmeetable, shutdown.
//! * `TenantQueues` (private) — the ready queue itself: priority tiers, each holding
//!   one FIFO lane per tenant, drained by deficit round robin. A higher tier
//!   always preempts a lower one **at dequeue** (running queries are never
//!   interrupted); within a tier, tenants share capacity in proportion to
//!   their configured weights.
//! * [`TenantServingStats`] — per-tenant counters surfaced through
//!   [`Caesura::tenant_stats`](crate::Caesura::tenant_stats).
//!
//! With one tenant at one priority (every default-path submission), a tiered
//! DRR queue degenerates to exactly the old FIFO — pop order equals push
//! order — which is what keeps the blocking wrappers byte-identical to the
//! PR 5 scheduler (`tests/serving_control_plane.rs` pins this). Setting
//! `CAESURA_FAIR_SCHED=0` additionally forces the single-FIFO code path for
//! *all* submissions, the degenerate row the CI matrix runs.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Default number of priority tiers when neither
/// `CaesuraConfig.priority_tiers` nor `CAESURA_PRIORITY_TIERS` is set:
/// interactive above batch.
pub const DEFAULT_PRIORITY_TIERS: usize = 2;

/// Whether fair scheduling is enabled per the environment:
/// `CAESURA_FAIR_SCHED`, default on; `0` / `off` / `false` selects the
/// single-FIFO ordering of the PR 5 scheduler.
pub(crate) fn fair_sched_from_env() -> bool {
    match std::env::var("CAESURA_FAIR_SCHED") {
        Ok(value) => {
            let value = value.trim().to_ascii_lowercase();
            !matches!(value.as_str(), "0" | "off" | "false")
        }
        Err(_) => true,
    }
}

/// Priority-tier count described by the environment:
/// `CAESURA_PRIORITY_TIERS`, default [`DEFAULT_PRIORITY_TIERS`], min 1.
pub(crate) fn priority_tiers_from_env() -> usize {
    std::env::var("CAESURA_PRIORITY_TIERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_PRIORITY_TIERS)
}

/// Per-tenant admission quota described by the environment:
/// `CAESURA_TENANT_QUOTA`, bounding each tenant's queued + in-flight
/// queries; unset / `0` / `off` / `false` means unlimited (`None`).
pub(crate) fn tenant_quota_from_env() -> Option<usize> {
    std::env::var("CAESURA_TENANT_QUOTA")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Scheduling priority of a submission: a tier index, lower = more urgent.
///
/// The scheduler dequeues strictly by tier — an [interactive](Priority::INTERACTIVE)
/// query always runs before a queued [batch](Priority::BATCH) one — so tiers
/// express *preemption at dequeue*, while weights within a tier express
/// *sharing*. Priorities beyond the configured tier count
/// (`CAESURA_PRIORITY_TIERS`, default 2) are clamped to the lowest tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(u8);

impl Priority {
    /// The most urgent tier (0): short, latency-sensitive queries.
    pub const INTERACTIVE: Priority = Priority(0);
    /// The default background tier (1): throughput-oriented bulk work.
    pub const BATCH: Priority = Priority(1);

    /// An explicit tier index (0 = most urgent).
    pub const fn tier(index: u8) -> Priority {
        Priority(index)
    }

    /// This priority's tier index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl Default for Priority {
    /// Interactive: the default-path wrappers (`submit`/`run`/`query`)
    /// submit at the most urgent tier, so their behaviour is unchanged by
    /// batch traffic — and byte-identical to PR 5 when no batch traffic
    /// exists.
    fn default() -> Self {
        Priority::INTERACTIVE
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "interactive"),
            1 => write!(f, "batch"),
            tier => write!(f, "tier {tier}"),
        }
    }
}

/// The tenant name used when a submission does not specify one.
pub const DEFAULT_TENANT: &str = "default";

/// Options of one submission via
/// [`Caesura::submit_with`](crate::Caesura::submit_with).
///
/// The default value — default tenant, [`Priority::INTERACTIVE`], no
/// deadline — is exactly what the plain `submit`/`try_submit`/`run`/`query`
/// wrappers use.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SubmitOptions {
    /// The tenant this query belongs to; `None` means [`DEFAULT_TENANT`].
    /// Each tenant gets its own FIFO lane in the fair scheduler and its own
    /// row in [`Caesura::tenant_stats`](crate::Caesura::tenant_stats).
    pub tenant: Option<String>,
    /// The priority tier (see [`Priority`]).
    pub priority: Priority,
    /// Optional deadline **budget**, measured from submission. When it
    /// expires the query's cancel token fires: a queued query never starts,
    /// a running one stops at its next checkpoint or mid-dispatch (for
    /// cancellation-aware transports), reporting `CoreError::Cancelled`. A
    /// zero budget is rejected at admission as
    /// [`AdmissionError::DeadlineUnmeetable`].
    pub deadline: Option<Duration>,
}

impl SubmitOptions {
    /// Default options: default tenant, interactive priority, no deadline.
    pub fn new() -> Self {
        SubmitOptions::default()
    }

    /// Options for a named tenant (interactive, no deadline).
    pub fn for_tenant(tenant: impl Into<String>) -> Self {
        SubmitOptions {
            tenant: Some(tenant.into()),
            ..SubmitOptions::default()
        }
    }

    /// Set the priority to [`Priority::BATCH`].
    pub fn batch(mut self) -> Self {
        self.priority = Priority::BATCH;
        self
    }

    /// Set an explicit priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Set a deadline budget, measured from submission.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The effective tenant name.
    pub fn tenant_name(&self) -> &str {
        self.tenant.as_deref().unwrap_or(DEFAULT_TENANT)
    }

    /// Whether these options are indistinguishable from a plain `submit`:
    /// such submissions carry no [`SchedulingInfo`](crate::SchedulingInfo)
    /// in their trace, keeping default-path runs byte-identical to PR 5.
    pub(crate) fn is_default(&self) -> bool {
        self.tenant_name() == DEFAULT_TENANT
            && self.priority == Priority::default()
            && self.deadline.is_none()
    }
}

/// Why a fail-fast submission ([`Caesura::submit_with`] /
/// [`Caesura::try_submit`]) was turned away. The query was **not** enqueued;
/// nothing ran and no handle exists.
///
/// [`Caesura::submit_with`]: crate::Caesura::submit_with
/// [`Caesura::try_submit`]: crate::Caesura::try_submit
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The submission queue is at capacity (`CAESURA_SESSION_QUEUE`).
    /// Retry after backoff, or use the blocking `submit` for backpressure.
    QueueFull {
        /// The queue bound that was hit.
        depth: usize,
    },
    /// The tenant already has `quota` queries queued or in flight
    /// (`CAESURA_TENANT_QUOTA`).
    TenantOverQuota {
        /// The tenant that hit its quota.
        tenant: String,
        /// The configured per-tenant quota.
        quota: usize,
    },
    /// The requested deadline budget cannot possibly be met (it was zero —
    /// already expired at submission time).
    DeadlineUnmeetable {
        /// The rejected budget.
        deadline: Duration,
    },
    /// The session is shutting down and accepts no new queries.
    ShuttingDown,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull { depth } => {
                write!(f, "the submission queue is full ({depth} slots)")
            }
            AdmissionError::TenantOverQuota { tenant, quota } => write!(
                f,
                "tenant '{tenant}' is at its admission quota of {quota} queued + in-flight queries"
            ),
            AdmissionError::DeadlineUnmeetable { deadline } => write!(
                f,
                "the deadline budget of {deadline:?} is unmeetable (already expired at submission)"
            ),
            AdmissionError::ShuttingDown => {
                write!(f, "the session is shutting down and accepts no new queries")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// The scheduling policy a session's scheduler runs under, resolved once at
/// session construction from `CaesuraConfig` / the environment.
#[derive(Debug, Clone)]
pub(crate) struct SchedPolicy {
    /// Fair scheduling on (tiers + DRR lanes) or off (single FIFO).
    pub fair: bool,
    /// Number of priority tiers (≥ 1); priorities clamp to the lowest tier.
    pub tiers: usize,
    /// Per-tenant bound on queued + in-flight queries; `None` = unlimited.
    pub tenant_quota: Option<usize>,
    /// DRR weight per tenant name; unlisted tenants weigh 1.
    pub weights: Vec<(String, u32)>,
}

impl Default for SchedPolicy {
    fn default() -> Self {
        SchedPolicy {
            fair: true,
            tiers: DEFAULT_PRIORITY_TIERS,
            tenant_quota: None,
            weights: Vec::new(),
        }
    }
}

impl SchedPolicy {
    /// The DRR weight of a tenant (≥ 1).
    fn weight_of(&self, tenant: &str) -> u32 {
        self.weights
            .iter()
            .find(|(name, _)| name == tenant)
            .map(|&(_, weight)| weight.max(1))
            .unwrap_or(1)
    }

    /// The tier a priority lands in under this policy.
    pub(crate) fn effective_tier(&self, priority: Priority) -> usize {
        priority.index().min(self.tiers.saturating_sub(1))
    }
}

/// Per-tenant serving counters, read via
/// [`Caesura::tenant_stats`](crate::Caesura::tenant_stats). The aggregate
/// counters across all tenants equal
/// [`ServingStats`](crate::ServingStats)' corresponding fields.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantServingStats {
    /// The tenant name ([`DEFAULT_TENANT`] for plain submissions).
    pub tenant: String,
    /// Queries accepted but not yet picked up by a worker.
    pub queued: usize,
    /// Queries a worker is currently running.
    pub in_flight: usize,
    /// Queries that finished (including cancelled ones).
    pub completed: usize,
    /// Finished queries whose outcome was `CoreError::Cancelled`.
    pub cancelled: usize,
    /// Fail-fast submissions turned away with an [`AdmissionError`].
    pub rejected: usize,
    /// Total time this tenant's picked-up queries spent waiting in the
    /// queue. Divide by `completed + in_flight` for the mean queue wait —
    /// the number the fair scheduler improves for interactive tenants under
    /// batch floods (see `BENCH_serving.json`).
    pub total_queue_wait: Duration,
}

/// Running per-tenant counters, kept under the scheduler's queue mutex.
#[derive(Debug, Default)]
pub(crate) struct TenantCounters {
    pub queued: usize,
    pub in_flight: usize,
    pub completed: usize,
    pub cancelled: usize,
    pub rejected: usize,
    pub queue_wait: Duration,
}

impl TenantCounters {
    pub(crate) fn snapshot(&self, tenant: &str) -> TenantServingStats {
        TenantServingStats {
            tenant: tenant.to_string(),
            queued: self.queued,
            in_flight: self.in_flight,
            completed: self.completed,
            cancelled: self.cancelled,
            rejected: self.rejected,
            total_queue_wait: self.queue_wait,
        }
    }
}

/// One tenant's FIFO lane within a tier.
struct Lane<T> {
    tenant: Arc<str>,
    weight: u32,
    /// Deficit counter: how many more pops this lane may take before the
    /// round-robin cursor moves on. Refilled to `weight` when the cursor
    /// arrives with the counter at zero.
    deficit: u32,
    queue: VecDeque<T>,
}

/// One priority tier: tenant lanes drained by deficit round robin.
struct Tier<T> {
    lanes: Vec<Lane<T>>,
    cursor: usize,
}

impl<T> Tier<T> {
    fn new() -> Self {
        Tier {
            lanes: Vec::new(),
            cursor: 0,
        }
    }

    fn lane_mut(&mut self, tenant: &Arc<str>, weight: u32) -> &mut Lane<T> {
        if let Some(index) = self.lanes.iter().position(|l| l.tenant == *tenant) {
            return &mut self.lanes[index];
        }
        self.lanes.push(Lane {
            tenant: Arc::clone(tenant),
            weight: weight.max(1),
            deficit: 0,
            queue: VecDeque::new(),
        });
        self.lanes.last_mut().expect("just pushed")
    }

    /// Deficit round robin: starting at the cursor, skip empty lanes
    /// (zeroing their deficit so they restart fresh), refill the first
    /// non-empty lane's deficit if exhausted, and pop one item at a cost of
    /// one deficit unit. The cursor stays on a lane until its deficit (=
    /// weight) is spent, so a weight-w tenant takes w consecutive pops per
    /// round before yielding.
    fn pop(&mut self) -> Option<T> {
        let lanes = self.lanes.len();
        // Two sweeps bound the scan: one may spend skipping empty lanes,
        // the second is guaranteed to land on a non-empty lane if any.
        for _ in 0..lanes.saturating_mul(2) {
            let cursor = self.cursor;
            let lane = &mut self.lanes[cursor];
            if lane.queue.is_empty() {
                lane.deficit = 0;
                self.cursor = (cursor + 1) % lanes;
                continue;
            }
            if lane.deficit == 0 {
                lane.deficit = lane.weight;
            }
            lane.deficit -= 1;
            let item = lane.queue.pop_front();
            if lane.queue.is_empty() {
                lane.deficit = 0;
            }
            if lane.deficit == 0 {
                self.cursor = (cursor + 1) % lanes;
            }
            return item;
        }
        None
    }

    fn is_empty(&self) -> bool {
        self.lanes.iter().all(|l| l.queue.is_empty())
    }
}

/// The scheduler's ready queue: priority tiers over per-tenant DRR lanes,
/// or a single FIFO when fair scheduling is disabled.
///
/// Generic over the queued item so the policy is unit-testable without
/// constructing job state; the serving layer instantiates it with
/// `Arc<JobState>`.
pub(crate) struct TenantQueues<T> {
    policy: SchedPolicy,
    tiers: Vec<Tier<T>>,
    /// The degenerate `CAESURA_FAIR_SCHED=0` path: one FIFO, pop order =
    /// push order regardless of tenant or priority.
    fifo: VecDeque<T>,
    len: usize,
}

impl<T> TenantQueues<T> {
    pub(crate) fn new(policy: SchedPolicy) -> Self {
        let tiers = if policy.fair {
            (0..policy.tiers.max(1)).map(|_| Tier::new()).collect()
        } else {
            Vec::new()
        };
        TenantQueues {
            policy,
            tiers,
            fifo: VecDeque::new(),
            len: 0,
        }
    }

    pub(crate) fn policy(&self) -> &SchedPolicy {
        &self.policy
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Enqueue an item on its tenant's lane in the priority's (clamped)
    /// tier — or at the FIFO tail when fair scheduling is off.
    pub(crate) fn push(&mut self, tenant: &Arc<str>, priority: Priority, item: T) {
        self.len += 1;
        if !self.policy.fair {
            self.fifo.push_back(item);
            return;
        }
        let tier = self.policy.effective_tier(priority);
        let weight = self.policy.weight_of(tenant);
        self.tiers[tier]
            .lane_mut(tenant, weight)
            .queue
            .push_back(item);
    }

    /// Dequeue the next item: the highest non-empty tier wins (interactive
    /// preempts batch **at dequeue**), DRR across that tier's tenants.
    pub(crate) fn pop(&mut self) -> Option<T> {
        if !self.policy.fair {
            let item = self.fifo.pop_front();
            if item.is_some() {
                self.len -= 1;
            }
            return item;
        }
        for tier in &mut self.tiers {
            if tier.is_empty() {
                continue;
            }
            if let Some(item) = tier.pop() {
                self.len -= 1;
                return Some(item);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant(name: &str) -> Arc<str> {
        Arc::from(name)
    }

    fn drain<T>(queues: &mut TenantQueues<T>) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(item) = queues.pop() {
            out.push(item);
        }
        out
    }

    #[test]
    fn single_tenant_single_priority_is_fifo() {
        let mut queues = TenantQueues::new(SchedPolicy::default());
        let a = tenant(DEFAULT_TENANT);
        for i in 0..5 {
            queues.push(&a, Priority::default(), i);
        }
        assert_eq!(queues.len(), 5);
        assert_eq!(drain(&mut queues), vec![0, 1, 2, 3, 4]);
        assert_eq!(queues.len(), 0);
    }

    #[test]
    fn fair_disabled_is_fifo_across_tenants_and_priorities() {
        let mut queues = TenantQueues::new(SchedPolicy {
            fair: false,
            ..SchedPolicy::default()
        });
        queues.push(&tenant("a"), Priority::BATCH, "a-batch");
        queues.push(&tenant("b"), Priority::INTERACTIVE, "b-inter");
        queues.push(&tenant("a"), Priority::INTERACTIVE, "a-inter");
        assert_eq!(drain(&mut queues), vec!["a-batch", "b-inter", "a-inter"]);
    }

    #[test]
    fn higher_tier_preempts_lower_at_dequeue() {
        let mut queues = TenantQueues::new(SchedPolicy::default());
        let a = tenant("a");
        queues.push(&a, Priority::BATCH, "b1");
        queues.push(&a, Priority::BATCH, "b2");
        queues.push(&a, Priority::INTERACTIVE, "i1");
        assert_eq!(queues.pop(), Some("i1"));
        queues.push(&a, Priority::INTERACTIVE, "i2");
        assert_eq!(drain(&mut queues), vec!["i2", "b1", "b2"]);
    }

    #[test]
    fn equal_weight_tenants_alternate_within_a_tier() {
        let mut queues = TenantQueues::new(SchedPolicy::default());
        let (a, b) = (tenant("a"), tenant("b"));
        for i in 0..3 {
            queues.push(&a, Priority::default(), format!("a{i}"));
        }
        for i in 0..3 {
            queues.push(&b, Priority::default(), format!("b{i}"));
        }
        assert_eq!(drain(&mut queues), vec!["a0", "b0", "a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn weights_give_proportionally_more_consecutive_pops() {
        let mut queues = TenantQueues::new(SchedPolicy {
            weights: vec![("heavy".to_string(), 2)],
            ..SchedPolicy::default()
        });
        let (heavy, light) = (tenant("heavy"), tenant("light"));
        for i in 0..4 {
            queues.push(&heavy, Priority::default(), format!("h{i}"));
        }
        for i in 0..2 {
            queues.push(&light, Priority::default(), format!("l{i}"));
        }
        // weight 2 vs 1: heavy takes two pops per round.
        assert_eq!(drain(&mut queues), vec!["h0", "h1", "l0", "h2", "h3", "l1"]);
    }

    #[test]
    fn priorities_clamp_to_the_lowest_tier() {
        let policy = SchedPolicy {
            tiers: 2,
            ..SchedPolicy::default()
        };
        assert_eq!(policy.effective_tier(Priority::INTERACTIVE), 0);
        assert_eq!(policy.effective_tier(Priority::BATCH), 1);
        assert_eq!(policy.effective_tier(Priority::tier(7)), 1);

        let mut queues = TenantQueues::new(SchedPolicy {
            tiers: 1,
            ..SchedPolicy::default()
        });
        let a = tenant("a");
        queues.push(&a, Priority::BATCH, "b");
        queues.push(&a, Priority::INTERACTIVE, "i");
        // One tier: priorities collapse, FIFO within the lane.
        assert_eq!(drain(&mut queues), vec!["b", "i"]);
    }

    #[test]
    fn an_emptied_lane_restarts_with_a_fresh_deficit() {
        let mut queues = TenantQueues::new(SchedPolicy::default());
        let (a, b) = (tenant("a"), tenant("b"));
        queues.push(&a, Priority::default(), "a0");
        assert_eq!(queues.pop(), Some("a0"));
        // Lane `a` went empty; later traffic interleaves fairly from scratch.
        queues.push(&a, Priority::default(), "a1");
        queues.push(&a, Priority::default(), "a2");
        queues.push(&b, Priority::default(), "b0");
        let order = drain(&mut queues);
        assert_eq!(order.len(), 3);
        // b0 is not starved behind both a's.
        assert!(order[..2].contains(&"b0"), "order was {order:?}");
    }

    #[test]
    fn submit_options_defaults_and_builders() {
        let default = SubmitOptions::new();
        assert!(default.is_default());
        assert_eq!(default.tenant_name(), DEFAULT_TENANT);
        assert_eq!(default.priority, Priority::INTERACTIVE);
        assert!(default.deadline.is_none());

        let options = SubmitOptions::for_tenant("acme")
            .batch()
            .with_deadline(Duration::from_secs(5));
        assert!(!options.is_default());
        assert_eq!(options.tenant_name(), "acme");
        assert_eq!(options.priority, Priority::BATCH);
        assert_eq!(options.deadline, Some(Duration::from_secs(5)));
        assert!(!SubmitOptions::new().batch().is_default());
        assert_eq!(
            SubmitOptions::new()
                .with_priority(Priority::tier(3))
                .priority,
            Priority::tier(3)
        );
    }

    #[test]
    fn admission_errors_display_their_cause() {
        assert!(AdmissionError::QueueFull { depth: 4 }
            .to_string()
            .contains("full"));
        let text = AdmissionError::TenantOverQuota {
            tenant: "acme".into(),
            quota: 2,
        }
        .to_string();
        assert!(text.contains("acme") && text.contains('2'));
        assert!(AdmissionError::DeadlineUnmeetable {
            deadline: Duration::ZERO,
        }
        .to_string()
        .contains("unmeetable"));
        assert!(AdmissionError::ShuttingDown
            .to_string()
            .contains("shutting down"));
    }

    #[test]
    fn priority_display_names_the_well_known_tiers() {
        assert_eq!(Priority::INTERACTIVE.to_string(), "interactive");
        assert_eq!(Priority::BATCH.to_string(), "batch");
        assert_eq!(Priority::tier(3).to_string(), "tier 3");
        assert!(Priority::INTERACTIVE < Priority::BATCH);
    }
}
