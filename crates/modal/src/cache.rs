//! Session-scoped perception answer cache.
//!
//! PR 3's batching layer ([`crate::batch`]) deduplicates identical
//! `(input, question)` perception requests *within* one operator invocation.
//! This module extends that collapse across plan steps and across queries: a
//! [`PerceptionCache`] owned by the session (and shared by every executor the
//! session creates) remembers the answer of every successful perception call,
//! so a question re-asked by a later plan step — or by a back-to-back query
//! over the same lake — never reaches the [`PerceptionBackend`](crate::batch::PerceptionBackend) again.
//!
//! ## Why caching cannot change an answer
//!
//! The cache key is the same modality-separated `(input, question)` identity
//! the dedup index uses, refined by a per-operator [`CacheScope`]:
//!
//! * [`PerceptionBackend`](crate::batch::PerceptionBackend) implementations are required to answer a given
//!   `(input, question)` pair deterministically (the dedup layer already
//!   reuses one answer for every duplicate row, and the simulated models
//!   derive their noise from exactly this pair). A cached answer is therefore
//!   provably the answer the model would have given.
//! * The scope keeps *different backends* from sharing answers: VisualQA and
//!   Image Select both ask about images, but route through different models —
//!   the same `(image, question)` pair may legitimately produce a typed count
//!   for one and a yes/no match for the other. Scoping restores the
//!   per-operator identity under which determinism is guaranteed.
//! * Errors are **never** cached: a failed request is re-dispatched on every
//!   attempt, exactly like the uncached path (and NULL-input rows never reach
//!   the cache at all — they are answered NULL before the batch layer).
//!
//! `tests/property_cache.rs` asserts byte-identical outputs versus the
//! uncached path across cache sizes (including tiny capacities that force
//! eviction), thread counts, and batch sizes.
//!
//! ## Bounded memory, sharded locking
//!
//! The cache holds at most [`CacheConfig::capacity`] entries, evicting the
//! least-recently-used entry on overflow. Entries are distributed over up to
//! [`PerceptionCache::MAX_SHARDS`] independently locked shards whose
//! capacities sum to the configured total, so concurrent queries (e.g. the
//! stress harness racing sessions over one `Arc`-shared catalog) contend on
//! a shard, never on the whole cache — and never on the morsel worker pool,
//! which stays lock-free. LRU order is tracked per shard, making eviction an
//! approximation of global LRU (the approximation affects only *which* entry
//! is re-computed later, never any answer).
//!
//! ## Knobs
//!
//! [`CacheConfig`] defaults to the `CAESURA_PERCEPTION_CACHE` environment
//! variable: unset uses [`CacheConfig::DEFAULT_CAPACITY`], a number sets the
//! entry capacity, and `0` / `off` / `false` disables caching entirely —
//! byte-for-byte preserving the pre-cache behaviour (the batch layer then
//! dispatches every unique request, as before). Sessions pin the knob via
//! `CaesuraConfig::perception_cache`.

use crate::batch::PerceptionInput;
use crate::transform::TransformProgram;
use caesura_engine::{DateValue, Schema, Value};
use caesura_store::CacheStore;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Configuration of the session-scoped perception answer cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum number of cached answers across all shards. `0` disables the
    /// cache entirely (the byte-for-byte pre-cache behaviour).
    pub capacity: usize,
}

impl CacheConfig {
    /// Default entry capacity when `CAESURA_PERCEPTION_CACHE` is unset.
    ///
    /// Entries are small (the input key is `Arc`-shared with the table
    /// columns; the value is one extracted answer), so the default is sized
    /// for whole-lake workloads rather than single queries.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// A configuration with an explicit entry capacity (`0` = off).
    pub fn new(capacity: usize) -> Self {
        CacheConfig { capacity }
    }

    /// The disabled configuration: no cache is created, and perception
    /// dispatch behaves exactly as before this subsystem existed.
    pub fn off() -> Self {
        CacheConfig { capacity: 0 }
    }

    /// Whether this configuration creates a cache at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The configuration described by the environment:
    /// `CAESURA_PERCEPTION_CACHE` — unset uses
    /// [`Self::DEFAULT_CAPACITY`], `0` / `off` / `false` disables the cache,
    /// any other number is the entry capacity (unparseable values fall back
    /// to the default, mirroring the other `CAESURA_*` knobs).
    pub fn from_env() -> Self {
        match std::env::var("CAESURA_PERCEPTION_CACHE") {
            Err(_) => CacheConfig::new(Self::DEFAULT_CAPACITY),
            Ok(raw) => {
                let value = raw.trim().to_lowercase();
                if value == "off" || value == "false" || value == "0" {
                    CacheConfig::off()
                } else {
                    value
                        .parse::<usize>()
                        .ok()
                        .filter(|&c| c > 0)
                        .map(CacheConfig::new)
                        .unwrap_or(CacheConfig::new(Self::DEFAULT_CAPACITY))
                }
            }
        }
    }

    /// Build the cache this configuration describes (`None` when disabled).
    pub fn build(&self) -> Option<PerceptionCache> {
        if self.is_enabled() {
            Some(PerceptionCache::with_capacity(self.capacity))
        } else {
            None
        }
    }
}

impl Default for CacheConfig {
    /// The environment-described configuration, read once per process (the
    /// same caching pattern as [`crate::BatchConfig`]); use
    /// [`CacheConfig::from_env`] directly to re-read the environment.
    fn default() -> Self {
        static DEFAULT: OnceLock<CacheConfig> = OnceLock::new();
        *DEFAULT.get_or_init(CacheConfig::from_env)
    }
}

/// The per-operator namespace of a cache entry.
///
/// Each perception operator routes through its own backend, and answer
/// determinism is only guaranteed *per backend*: VisualQA and Image Select
/// both ask about images, but the same `(image, question)` pair may produce
/// a typed value for one and a match decision for the other. Scoping the key
/// keeps those keyspaces disjoint, exactly like the dedup index separates
/// documents from images.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheScope {
    /// TextQA answers about text documents.
    TextQa,
    /// VisualQA answers about images.
    VisualQa,
    /// Image Select match decisions about images.
    ImageSelect,
}

impl CacheScope {
    const COUNT: usize = 3;

    fn index(self) -> usize {
        match self {
            CacheScope::TextQa => 0,
            CacheScope::VisualQa => 1,
            CacheScope::ImageSelect => 2,
        }
    }

    /// Stable name used in on-disk keys (never reuse a name for a different
    /// operator — the disk tier outlives any one process).
    fn disk_name(self) -> &'static str {
        match self {
            CacheScope::TextQa => "text_qa",
            CacheScope::VisualQa => "visual_qa",
            CacheScope::ImageSelect => "image_select",
        }
    }
}

/// Lifetime counters of one [`PerceptionCache`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered from the cache (model calls avoided).
    pub hits: usize,
    /// Probes that fell through to the backend.
    pub misses: usize,
    /// Entries stored (one per successfully answered miss).
    pub insertions: usize,
    /// Entries evicted to respect the capacity bound.
    pub evictions: usize,
    /// Memory-tier misses answered from the attached disk store.
    pub disk_hits: usize,
    /// Disk-tier probes that found nothing (true cold misses).
    pub disk_misses: usize,
    /// Answers written through to the attached disk store.
    pub disk_writes: usize,
}

/// One cached answer plus its position in the shard's LRU order.
#[derive(Debug)]
struct Entry {
    value: Value,
    tick: u64,
}

/// The reverse key stored in the LRU order, pointing back into the index
/// (`Arc`-shared with the index keys, so touches never copy strings).
#[derive(Debug)]
struct LruKey {
    scope: usize,
    input: Arc<str>,
    question: Arc<str>,
}

/// The scope-separated nested index of one shard (same shape as the dedup
/// index): input key → question → entry.
type ScopeIndex = HashMap<Arc<str>, HashMap<Arc<str>, Entry>>;

/// One independently locked slice of the cache.
#[derive(Debug, Default)]
struct Shard {
    /// Entry capacity of this shard (the shard capacities sum to the
    /// configured total).
    capacity: usize,
    /// Monotonic access clock; higher tick = more recently used.
    tick: u64,
    /// Nested so probes borrow `&str` and the `Arc<str>` keys share the
    /// document storage with the requests.
    index: [ScopeIndex; CacheScope::COUNT],
    /// LRU order: access tick → key of the entry touched at that tick.
    /// `lru.len()` is the shard's live entry count.
    lru: BTreeMap<u64, LruKey>,
}

impl Shard {
    /// Move an entry's tick to the front of the LRU order, reusing the
    /// entry's existing key (no allocation).
    fn touch(lru: &mut BTreeMap<u64, LruKey>, entry: &mut Entry, tick: u64) {
        let key = lru
            .remove(&entry.tick)
            .expect("a live cache entry has an LRU slot");
        entry.tick = tick;
        lru.insert(tick, key);
    }
}

/// A bounded, sharded, LRU map from scoped `(input, question)` pairs to the
/// answers a [`PerceptionBackend`](crate::batch::PerceptionBackend) gave them. See the [module docs](self)
/// for the correctness argument and locking model.
#[derive(Debug)]
pub struct PerceptionCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    insertions: AtomicUsize,
    evictions: AtomicUsize,
    disk_hits: AtomicUsize,
    disk_misses: AtomicUsize,
    disk_writes: AtomicUsize,
    capacity: usize,
    /// Optional durable tier below the shards (see [`caesura_store`]). Keys
    /// carry the backend identity, so entries written by one model
    /// configuration never answer for another.
    disk: Option<Arc<CacheStore>>,
}

impl PerceptionCache {
    /// Upper bound on the number of lock shards. Small capacities use fewer
    /// shards (down to one) so the configured bound stays exact.
    pub const MAX_SHARDS: usize = 16;

    /// A cache holding at most `capacity` answers (clamped to ≥ 1; use
    /// [`CacheConfig::build`] to express "off" as the absence of a cache).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        // Small caches use fewer shards (down to one) so per-shard eviction
        // stays close to true LRU; each shard holds at least a handful of
        // entries before the shard count maxes out.
        let shard_count = (capacity / 4).clamp(1, Self::MAX_SHARDS);
        let base = capacity / shard_count;
        let extra = capacity % shard_count;
        let shards = (0..shard_count)
            .map(|i| {
                Mutex::new(Shard {
                    capacity: base + usize::from(i < extra),
                    ..Shard::default()
                })
            })
            .collect();
        PerceptionCache {
            shards,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            insertions: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            disk_hits: AtomicUsize::new(0),
            disk_misses: AtomicUsize::new(0),
            disk_writes: AtomicUsize::new(0),
            capacity,
            disk: None,
        }
    }

    /// Attach a durable tier below the in-memory shards. Memory misses then
    /// probe the store (keyed by backend identity) before dispatching, and
    /// successful answers are written through.
    pub fn attach_disk(&mut self, store: Arc<CacheStore>) {
        self.disk = Some(store);
    }

    /// Whether a disk tier is attached.
    pub fn has_disk(&self) -> bool {
        self.disk.is_some()
    }

    /// The configured entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of answers currently cached (across all shards; a racing
    /// snapshot under concurrent use).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("perception cache shard lock").lru.len())
            .sum()
    }

    /// Whether no answer is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit/miss/insertion/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_misses: self.disk_misses.load(Ordering::Relaxed),
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
        }
    }

    /// FNV-1a over the scoped key, used only to pick a shard (entry identity
    /// is decided by the exact nested-index lookup, never by this hash).
    fn shard_of(&self, scope: CacheScope, input: &str, question: &str) -> usize {
        let mut hash: u64 = 0xcbf29ce484222325;
        for byte in [scope.index() as u8]
            .iter()
            .copied()
            .chain(input.bytes())
            .chain([0x1u8])
            .chain(question.bytes())
        {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100000001b3);
        }
        (hash % self.shards.len() as u64) as usize
    }

    /// Look up the cached answer of a scoped `(input, question)` pair,
    /// refreshing its LRU position on a hit.
    pub fn get(&self, scope: CacheScope, input: &PerceptionInput, question: &str) -> Option<Value> {
        let key = input.cache_key();
        let mut guard = self.shards[self.shard_of(scope, key, question)]
            .lock()
            .expect("perception cache shard lock");
        let shard = &mut *guard;
        shard.tick += 1;
        let tick = shard.tick;
        let found = shard.index[scope.index()]
            .get_mut(key)
            .and_then(|by_question| by_question.get_mut(question));
        match found {
            Some(entry) => {
                Shard::touch(&mut shard.lru, entry, tick);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store the answer of a scoped `(input, question)` pair, evicting the
    /// shard's least-recently-used entry if the shard is full. Returns the
    /// number of evictions performed (0 or 1).
    ///
    /// Callers must only insert **successful** answers: errors are never
    /// cached, so failed requests are re-dispatched on every attempt exactly
    /// like the uncached path.
    pub fn insert(
        &self,
        scope: CacheScope,
        input: &PerceptionInput,
        question: &str,
        value: Value,
    ) -> usize {
        let key = input.cache_key();
        let mut guard = self.shards[self.shard_of(scope, key, question)]
            .lock()
            .expect("perception cache shard lock");
        let shard = &mut *guard;
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(entry) = shard.index[scope.index()]
            .get_mut(key)
            .and_then(|by_question| by_question.get_mut(question))
        {
            // Another worker (or an earlier batch) stored this key already.
            // Answers are deterministic per key, so only the LRU position
            // needs refreshing.
            Shard::touch(&mut shard.lru, entry, tick);
            return 0;
        }
        // Build the scoped key once; index and LRU share it via `Arc`.
        let input_key = input.shared_key();
        let question_key: Arc<str> = Arc::from(question);
        shard.index[scope.index()]
            .entry(Arc::clone(&input_key))
            .or_default()
            .insert(Arc::clone(&question_key), Entry { value, tick });
        shard.lru.insert(
            tick,
            LruKey {
                scope: scope.index(),
                input: input_key,
                question: question_key,
            },
        );
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if shard.lru.len() <= shard.capacity {
            return 0;
        }
        // Evict the least-recently-used entry of this shard.
        let (_, victim) = shard
            .lru
            .pop_first()
            .expect("a full shard has an LRU entry");
        if let Some(by_question) = shard.index[victim.scope].get_mut(&victim.input) {
            by_question.remove(&victim.question);
            if by_question.is_empty() {
                shard.index[victim.scope].remove(&victim.input);
            }
        }
        self.evictions.fetch_add(1, Ordering::Relaxed);
        1
    }

    /// Probe the disk tier for a memory miss. Returns the stored answer
    /// without touching the in-memory shards (callers warm the memory tier
    /// via [`Self::insert`] so the hit also counts as a memory insertion).
    ///
    /// `identity` is the answering backend's version string
    /// ([`crate::batch::PerceptionBackend::identity`]): it namespaces every
    /// key, so a store written under one model configuration can never
    /// answer for another. No-op `None` when no disk tier is attached.
    pub fn disk_get(
        &self,
        identity: &str,
        scope: CacheScope,
        input: &PerceptionInput,
        question: &str,
    ) -> Option<Value> {
        let store = self.disk.as_ref()?;
        let key = disk_key(identity, scope, input, question);
        let decoded = store.get(&key).and_then(|bytes| decode_value(&bytes));
        match decoded {
            Some(value) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                self.disk_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Write a successful answer through to the disk tier (no-op without
    /// one). Returns whether a record was durably appended; write errors are
    /// swallowed — the disk tier is an optimization, and a failed write
    /// costs at most a future cold miss.
    pub fn disk_put(
        &self,
        identity: &str,
        scope: CacheScope,
        input: &PerceptionInput,
        question: &str,
        value: &Value,
    ) -> bool {
        let Some(store) = self.disk.as_ref() else {
            return false;
        };
        let key = disk_key(identity, scope, input, question);
        let written = store.put(&key, &encode_value(value)).is_ok();
        if written {
            self.disk_writes.fetch_add(1, Ordering::Relaxed);
        }
        written
    }

    /// Speculative-prefetch hook: warm the in-memory tier from disk for a
    /// set of pending `(input, question)` perception requests before they
    /// are dispatched. Returns how many answers were warmed.
    ///
    /// Wrong guesses are harmless — a prefetched answer is still the correct
    /// answer for its key, it merely occupies an LRU slot. Callers that know
    /// a table's likely next-step requests (e.g. the scheduler, or a future
    /// speculative planner) can warm them here so the batch probe in
    /// [`crate::batch::PerceptionBatch::dispatch_cached`] hits memory
    /// directly.
    pub fn prefetch<'a, I>(&self, identity: &str, scope: CacheScope, requests: I) -> usize
    where
        I: IntoIterator<Item = (&'a PerceptionInput, &'a str)>,
    {
        if self.disk.is_none() {
            return 0;
        }
        let mut warmed = 0;
        for (input, question) in requests {
            if let Some(value) = self.disk_get(identity, scope, input, question) {
                self.insert(scope, input, question, value);
                warmed += 1;
            }
        }
        warmed
    }

    /// Probe the disk tier for a compiled transform program — the Python-UDF
    /// substitute's "description → code" call, which stands in for a GPT-4
    /// codegen round trip in the paper.
    ///
    /// Unlike the perception operators the codegen has **no memory tier**:
    /// compilation is deterministic and in-process, so re-compiling within a
    /// session costs nothing real. What the disk tier buys is restart
    /// fidelity — a warmed session replays the plan without re-issuing the
    /// (simulated) codegen call, exactly like the perception answers. With no
    /// disk tier attached this returns `None` without counting anything, so
    /// the in-memory-only configuration behaves byte-identically to the
    /// pre-store code.
    ///
    /// A disk hit is counted only when the stored program decodes and
    /// validates against `schema`; a missing or undecodable entry counts as a
    /// disk miss and the caller compiles fresh.
    pub fn transform_disk_get(
        &self,
        identity: &str,
        description: &str,
        schema: &Schema,
    ) -> Option<TransformProgram> {
        let store = self.disk.as_ref()?;
        let key = transform_disk_key(identity, description, &schema.to_string());
        let decoded = store
            .get(&key)
            .and_then(|bytes| TransformProgram::from_cache_bytes(&bytes, schema));
        match decoded {
            Some(program) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                Some(program)
            }
            None => {
                self.disk_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Write a freshly compiled transform program through to the disk tier
    /// (no-op without one). The write is **round-trip validated**: the
    /// program is only persisted when decoding its own encoding reproduces it
    /// exactly, so a cached compile can never behave differently from a fresh
    /// one — a program whose rendering does not re-parse is simply recompiled
    /// on every restart. Returns whether a record was durably appended.
    pub fn transform_disk_put(
        &self,
        identity: &str,
        description: &str,
        schema: &Schema,
        program: &TransformProgram,
    ) -> bool {
        let Some(store) = self.disk.as_ref() else {
            return false;
        };
        let bytes = program.cache_bytes();
        if TransformProgram::from_cache_bytes(&bytes, schema).as_ref() != Some(program) {
            return false;
        }
        let key = transform_disk_key(identity, description, &schema.to_string());
        let written = store.put(&key, &bytes).is_ok();
        if written {
            self.disk_writes.fetch_add(1, Ordering::Relaxed);
        }
        written
    }
}

/// The on-disk key of a cached transform compile: length-prefixed
/// `(identity, "transform", description, schema fingerprint)` parts plus the
/// kind byte `t`, so transform entries can never collide with the
/// document/image perception keyspaces of [`disk_key`].
fn transform_disk_key(identity: &str, description: &str, schema_fp: &str) -> Vec<u8> {
    let parts: [&[u8]; 4] = [
        identity.as_bytes(),
        b"transform",
        description.as_bytes(),
        schema_fp.as_bytes(),
    ];
    let mut out = Vec::with_capacity(17 + parts.iter().map(|p| p.len()).sum::<usize>());
    for part in parts {
        out.extend_from_slice(&(part.len() as u32).to_le_bytes());
        out.extend_from_slice(part);
    }
    out.extend_from_slice(b"t");
    out
}

/// The on-disk key of a scoped perception answer: length-prefixed
/// `(identity, scope, input kind + key, question)` parts, so no part can
/// masquerade as another regardless of its content.
fn disk_key(identity: &str, scope: CacheScope, input: &PerceptionInput, question: &str) -> Vec<u8> {
    let kind: &[u8] = match input {
        PerceptionInput::Document(_) => b"d",
        PerceptionInput::Image(_) => b"i",
    };
    let parts: [&[u8]; 4] = [
        identity.as_bytes(),
        scope.disk_name().as_bytes(),
        input.cache_key().as_bytes(),
        question.as_bytes(),
    ];
    let mut out = Vec::with_capacity(17 + parts.iter().map(|p| p.len()).sum::<usize>());
    for part in parts {
        out.extend_from_slice(&(part.len() as u32).to_le_bytes());
        out.extend_from_slice(part);
    }
    out.extend_from_slice(kind);
    out
}

/// Serialize a [`Value`] for the disk tier: a tag byte plus a fixed or
/// length-prefixed payload. (No serde in this workspace — the codec is
/// hand-rolled and pinned by round-trip tests.)
fn encode_value(value: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    let push_str = |out: &mut Vec<u8>, tag: u8, s: &str| {
        out.push(tag);
        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    };
    match value {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(3);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => push_str(&mut out, 4, s),
        Value::Date(d) => {
            out.push(5);
            out.extend_from_slice(&d.year.to_le_bytes());
            out.push(d.month);
            out.push(d.day);
        }
        Value::Image(s) => push_str(&mut out, 6, s),
        Value::Text(s) => push_str(&mut out, 7, s),
    }
    out
}

/// Inverse of [`encode_value`]. `None` on any malformed payload (the disk
/// tier then treats the entry as a miss — cold start, never a wrong answer).
fn decode_value(bytes: &[u8]) -> Option<Value> {
    let (&tag, rest) = bytes.split_first()?;
    let take_str = |rest: &[u8]| -> Option<Arc<str>> {
        let len = u32::from_le_bytes(rest.get(..4)?.try_into().ok()?) as usize;
        let payload = rest.get(4..4 + len)?;
        if rest.len() != 4 + len {
            return None;
        }
        Some(Arc::from(std::str::from_utf8(payload).ok()?))
    };
    match tag {
        0 => rest.is_empty().then_some(Value::Null),
        1 => match rest {
            [0] => Some(Value::Bool(false)),
            [1] => Some(Value::Bool(true)),
            _ => None,
        },
        2 => Some(Value::Int(i64::from_le_bytes(rest.try_into().ok()?))),
        3 => Some(Value::Float(f64::from_bits(u64::from_le_bytes(
            rest.try_into().ok()?,
        )))),
        4 => Some(Value::Str(take_str(rest)?)),
        5 => {
            let [y0, y1, y2, y3, month, day] = rest else {
                return None;
            };
            Some(Value::Date(DateValue::new(
                i32::from_le_bytes([*y0, *y1, *y2, *y3]),
                *month,
                *day,
            )))
        }
        6 => Some(Value::Image(take_str(rest)?)),
        7 => Some(Value::Text(take_str(rest)?)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(text: &str) -> PerceptionInput {
        PerceptionInput::Document(text.into())
    }

    #[test]
    fn config_parses_capacity_and_off_modes() {
        assert!(CacheConfig::new(10).is_enabled());
        assert!(!CacheConfig::off().is_enabled());
        assert!(CacheConfig::off().build().is_none());
        assert_eq!(
            CacheConfig::new(10).build().unwrap().capacity(),
            10,
            "explicit capacities survive the build"
        );
    }

    #[test]
    fn hits_return_the_stored_answer() {
        let cache = PerceptionCache::with_capacity(8);
        let input = doc("report A");
        assert_eq!(cache.get(CacheScope::TextQa, &input, "Who won?"), None);
        cache.insert(CacheScope::TextQa, &input, "Who won?", Value::str("Heat"));
        assert_eq!(
            cache.get(CacheScope::TextQa, &input, "Who won?"),
            Some(Value::str("Heat"))
        );
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn scopes_and_modalities_never_share_entries() {
        let cache = PerceptionCache::with_capacity(8);
        let image = PerceptionInput::Image(crate::ImageObject::new("img/1.png"));
        // A document whose text equals an image key, asked the same question.
        let document = doc("img/1.png");
        cache.insert(CacheScope::VisualQa, &image, "Q?", Value::Int(1));
        assert_eq!(cache.get(CacheScope::TextQa, &document, "Q?"), None);
        // The same image under a different operator scope is a different key.
        assert_eq!(cache.get(CacheScope::ImageSelect, &image, "Q?"), None);
        assert_eq!(
            cache.get(CacheScope::VisualQa, &image, "Q?"),
            Some(Value::Int(1))
        );
    }

    #[test]
    fn capacity_one_evicts_the_previous_entry() {
        let cache = PerceptionCache::with_capacity(1);
        let a = doc("a");
        let b = doc("b");
        assert_eq!(cache.insert(CacheScope::TextQa, &a, "Q?", Value::Int(1)), 0);
        assert_eq!(cache.insert(CacheScope::TextQa, &b, "Q?", Value::Int(2)), 1);
        assert_eq!(cache.get(CacheScope::TextQa, &a, "Q?"), None);
        assert_eq!(cache.get(CacheScope::TextQa, &b, "Q?"), Some(Value::Int(2)));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn lru_keeps_recently_used_entries() {
        // One shard of capacity 2: touching `a` makes `b` the LRU victim.
        let cache = PerceptionCache::with_capacity(2);
        let (a, b, c) = (doc("a"), doc("b"), doc("c"));
        cache.insert(CacheScope::TextQa, &a, "Q?", Value::Int(1));
        cache.insert(CacheScope::TextQa, &b, "Q?", Value::Int(2));
        assert_eq!(cache.get(CacheScope::TextQa, &a, "Q?"), Some(Value::Int(1)));
        cache.insert(CacheScope::TextQa, &c, "Q?", Value::Int(3));
        assert_eq!(cache.get(CacheScope::TextQa, &b, "Q?"), None, "b was LRU");
        assert_eq!(cache.get(CacheScope::TextQa, &a, "Q?"), Some(Value::Int(1)));
        assert_eq!(cache.get(CacheScope::TextQa, &c, "Q?"), Some(Value::Int(3)));
    }

    #[test]
    fn reinserting_an_existing_key_does_not_grow_or_evict() {
        let cache = PerceptionCache::with_capacity(1);
        let a = doc("a");
        cache.insert(CacheScope::TextQa, &a, "Q?", Value::Int(1));
        assert_eq!(cache.insert(CacheScope::TextQa, &a, "Q?", Value::Int(1)), 0);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().insertions, 1);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn shard_capacities_sum_to_the_configured_total() {
        for capacity in [1, 2, 5, 16, 17, 100, 4096] {
            let cache = PerceptionCache::with_capacity(capacity);
            let total: usize = cache
                .shards
                .iter()
                .map(|s| s.lock().unwrap().capacity)
                .sum();
            assert_eq!(total, capacity, "capacity {capacity}");
            assert!(cache.shards.len() <= PerceptionCache::MAX_SHARDS);
        }
    }

    #[test]
    fn concurrent_mixed_use_stays_bounded_and_consistent() {
        let cache = std::sync::Arc::new(PerceptionCache::with_capacity(32));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..200 {
                        let input = doc(&format!("doc {}", (t * 7 + i) % 50));
                        let question = format!("Q{}?", i % 5);
                        if let Some(value) = cache.get(CacheScope::TextQa, &input, &question) {
                            assert_eq!(value, Value::Int(((t * 7 + i) % 50) as i64));
                        } else {
                            cache.insert(
                                CacheScope::TextQa,
                                &input,
                                &question,
                                Value::Int(((t * 7 + i) % 50) as i64),
                            );
                        }
                    }
                });
            }
        });
        assert!(
            cache.len() <= 32,
            "capacity bound violated: {}",
            cache.len()
        );
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 800);
    }

    #[test]
    fn value_codec_round_trips_every_variant() {
        let values = [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Float(2.5),
            Value::Float(f64::NAN),
            Value::str("hello \u{1f}\u{F8FF} world"),
            Value::Date(DateValue::new(1889, 3, 0)),
            Value::image("img/1.png"),
            Value::text("a longer document\nwith lines"),
        ];
        for value in values {
            let encoded = encode_value(&value);
            let decoded = decode_value(&encoded).expect("decode");
            // NaN != NaN under PartialEq; compare the encodings instead.
            assert_eq!(encode_value(&decoded), encoded, "{value:?}");
        }
        assert_eq!(decode_value(&[]), None);
        assert_eq!(decode_value(&[99]), None);
        assert_eq!(decode_value(&[4, 10, 0, 0, 0, b'x']), None, "short string");
    }

    #[test]
    fn disk_tier_round_trips_and_isolates_identities() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("caesura-cache-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(CacheStore::open(&dir).expect("open store"));

        let mut cache = PerceptionCache::with_capacity(8);
        assert!(!cache.has_disk());
        cache.attach_disk(Arc::clone(&store));
        assert!(cache.has_disk());

        let input = doc("report A");
        assert_eq!(
            cache.disk_get("model-a", CacheScope::TextQa, &input, "Q?"),
            None
        );
        cache.disk_put("model-a", CacheScope::TextQa, &input, "Q?", &Value::Int(7));
        assert_eq!(
            cache.disk_get("model-a", CacheScope::TextQa, &input, "Q?"),
            Some(Value::Int(7))
        );
        // A different backend identity never sees the entry.
        assert_eq!(
            cache.disk_get("model-b", CacheScope::TextQa, &input, "Q?"),
            None
        );
        // Nor does a different scope under the same identity.
        let image = PerceptionInput::Image(crate::ImageObject::new("report A"));
        assert_eq!(
            cache.disk_get("model-a", CacheScope::VisualQa, &image, "Q?"),
            None
        );
        let stats = cache.stats();
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(stats.disk_misses, 3);
        assert_eq!(stats.disk_writes, 1);
        drop(cache);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prefetch_warms_the_memory_tier() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("caesura-cache-prefetch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(CacheStore::open(&dir).expect("open store"));

        let seeder = {
            let mut cache = PerceptionCache::with_capacity(8);
            cache.attach_disk(Arc::clone(&store));
            cache
        };
        let (a, b) = (doc("a"), doc("b"));
        seeder.disk_put("m", CacheScope::TextQa, &a, "Q?", &Value::Int(1));

        let mut cache = PerceptionCache::with_capacity(8);
        cache.attach_disk(Arc::clone(&store));
        let requests = [(&a, "Q?"), (&b, "Q?")];
        let warmed = cache.prefetch("m", CacheScope::TextQa, requests.iter().copied());
        assert_eq!(warmed, 1, "only the stored request warms");
        // The warmed answer now hits memory without another disk probe.
        assert_eq!(cache.get(CacheScope::TextQa, &a, "Q?"), Some(Value::Int(1)));
        assert_eq!(cache.get(CacheScope::TextQa, &b, "Q?"), None);
        drop((cache, seeder, store));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
