//! Session-scoped perception answer cache.
//!
//! PR 3's batching layer ([`crate::batch`]) deduplicates identical
//! `(input, question)` perception requests *within* one operator invocation.
//! This module extends that collapse across plan steps and across queries: a
//! [`PerceptionCache`] owned by the session (and shared by every executor the
//! session creates) remembers the answer of every successful perception call,
//! so a question re-asked by a later plan step — or by a back-to-back query
//! over the same lake — never reaches the [`PerceptionBackend`](crate::batch::PerceptionBackend) again.
//!
//! ## Why caching cannot change an answer
//!
//! The cache key is the same modality-separated `(input, question)` identity
//! the dedup index uses, refined by a per-operator [`CacheScope`]:
//!
//! * [`PerceptionBackend`](crate::batch::PerceptionBackend) implementations are required to answer a given
//!   `(input, question)` pair deterministically (the dedup layer already
//!   reuses one answer for every duplicate row, and the simulated models
//!   derive their noise from exactly this pair). A cached answer is therefore
//!   provably the answer the model would have given.
//! * The scope keeps *different backends* from sharing answers: VisualQA and
//!   Image Select both ask about images, but route through different models —
//!   the same `(image, question)` pair may legitimately produce a typed count
//!   for one and a yes/no match for the other. Scoping restores the
//!   per-operator identity under which determinism is guaranteed.
//! * Errors are **never** cached: a failed request is re-dispatched on every
//!   attempt, exactly like the uncached path (and NULL-input rows never reach
//!   the cache at all — they are answered NULL before the batch layer).
//!
//! `tests/property_cache.rs` asserts byte-identical outputs versus the
//! uncached path across cache sizes (including tiny capacities that force
//! eviction), thread counts, and batch sizes.
//!
//! ## Bounded memory, sharded locking
//!
//! The cache holds at most [`CacheConfig::capacity`] entries, evicting the
//! least-recently-used entry on overflow. Entries are distributed over up to
//! [`PerceptionCache::MAX_SHARDS`] independently locked shards whose
//! capacities sum to the configured total, so concurrent queries (e.g. the
//! stress harness racing sessions over one `Arc`-shared catalog) contend on
//! a shard, never on the whole cache — and never on the morsel worker pool,
//! which stays lock-free. LRU order is tracked per shard, making eviction an
//! approximation of global LRU (the approximation affects only *which* entry
//! is re-computed later, never any answer).
//!
//! ## Knobs
//!
//! [`CacheConfig`] defaults to the `CAESURA_PERCEPTION_CACHE` environment
//! variable: unset uses [`CacheConfig::DEFAULT_CAPACITY`], a number sets the
//! entry capacity, and `0` / `off` / `false` disables caching entirely —
//! byte-for-byte preserving the pre-cache behaviour (the batch layer then
//! dispatches every unique request, as before). Sessions pin the knob via
//! `CaesuraConfig::perception_cache`.

use crate::batch::PerceptionInput;
use caesura_engine::Value;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Configuration of the session-scoped perception answer cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum number of cached answers across all shards. `0` disables the
    /// cache entirely (the byte-for-byte pre-cache behaviour).
    pub capacity: usize,
}

impl CacheConfig {
    /// Default entry capacity when `CAESURA_PERCEPTION_CACHE` is unset.
    ///
    /// Entries are small (the input key is `Arc`-shared with the table
    /// columns; the value is one extracted answer), so the default is sized
    /// for whole-lake workloads rather than single queries.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// A configuration with an explicit entry capacity (`0` = off).
    pub fn new(capacity: usize) -> Self {
        CacheConfig { capacity }
    }

    /// The disabled configuration: no cache is created, and perception
    /// dispatch behaves exactly as before this subsystem existed.
    pub fn off() -> Self {
        CacheConfig { capacity: 0 }
    }

    /// Whether this configuration creates a cache at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The configuration described by the environment:
    /// `CAESURA_PERCEPTION_CACHE` — unset uses
    /// [`Self::DEFAULT_CAPACITY`], `0` / `off` / `false` disables the cache,
    /// any other number is the entry capacity (unparseable values fall back
    /// to the default, mirroring the other `CAESURA_*` knobs).
    pub fn from_env() -> Self {
        match std::env::var("CAESURA_PERCEPTION_CACHE") {
            Err(_) => CacheConfig::new(Self::DEFAULT_CAPACITY),
            Ok(raw) => {
                let value = raw.trim().to_lowercase();
                if value == "off" || value == "false" || value == "0" {
                    CacheConfig::off()
                } else {
                    value
                        .parse::<usize>()
                        .ok()
                        .filter(|&c| c > 0)
                        .map(CacheConfig::new)
                        .unwrap_or(CacheConfig::new(Self::DEFAULT_CAPACITY))
                }
            }
        }
    }

    /// Build the cache this configuration describes (`None` when disabled).
    pub fn build(&self) -> Option<PerceptionCache> {
        if self.is_enabled() {
            Some(PerceptionCache::with_capacity(self.capacity))
        } else {
            None
        }
    }
}

impl Default for CacheConfig {
    /// The environment-described configuration, read once per process (the
    /// same caching pattern as [`crate::BatchConfig`]); use
    /// [`CacheConfig::from_env`] directly to re-read the environment.
    fn default() -> Self {
        static DEFAULT: OnceLock<CacheConfig> = OnceLock::new();
        *DEFAULT.get_or_init(CacheConfig::from_env)
    }
}

/// The per-operator namespace of a cache entry.
///
/// Each perception operator routes through its own backend, and answer
/// determinism is only guaranteed *per backend*: VisualQA and Image Select
/// both ask about images, but the same `(image, question)` pair may produce
/// a typed value for one and a match decision for the other. Scoping the key
/// keeps those keyspaces disjoint, exactly like the dedup index separates
/// documents from images.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheScope {
    /// TextQA answers about text documents.
    TextQa,
    /// VisualQA answers about images.
    VisualQa,
    /// Image Select match decisions about images.
    ImageSelect,
}

impl CacheScope {
    const COUNT: usize = 3;

    fn index(self) -> usize {
        match self {
            CacheScope::TextQa => 0,
            CacheScope::VisualQa => 1,
            CacheScope::ImageSelect => 2,
        }
    }
}

/// Lifetime counters of one [`PerceptionCache`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered from the cache (model calls avoided).
    pub hits: usize,
    /// Probes that fell through to the backend.
    pub misses: usize,
    /// Entries stored (one per successfully answered miss).
    pub insertions: usize,
    /// Entries evicted to respect the capacity bound.
    pub evictions: usize,
}

/// One cached answer plus its position in the shard's LRU order.
#[derive(Debug)]
struct Entry {
    value: Value,
    tick: u64,
}

/// The reverse key stored in the LRU order, pointing back into the index
/// (`Arc`-shared with the index keys, so touches never copy strings).
#[derive(Debug)]
struct LruKey {
    scope: usize,
    input: Arc<str>,
    question: Arc<str>,
}

/// The scope-separated nested index of one shard (same shape as the dedup
/// index): input key → question → entry.
type ScopeIndex = HashMap<Arc<str>, HashMap<Arc<str>, Entry>>;

/// One independently locked slice of the cache.
#[derive(Debug, Default)]
struct Shard {
    /// Entry capacity of this shard (the shard capacities sum to the
    /// configured total).
    capacity: usize,
    /// Monotonic access clock; higher tick = more recently used.
    tick: u64,
    /// Nested so probes borrow `&str` and the `Arc<str>` keys share the
    /// document storage with the requests.
    index: [ScopeIndex; CacheScope::COUNT],
    /// LRU order: access tick → key of the entry touched at that tick.
    /// `lru.len()` is the shard's live entry count.
    lru: BTreeMap<u64, LruKey>,
}

impl Shard {
    /// Move an entry's tick to the front of the LRU order, reusing the
    /// entry's existing key (no allocation).
    fn touch(lru: &mut BTreeMap<u64, LruKey>, entry: &mut Entry, tick: u64) {
        let key = lru
            .remove(&entry.tick)
            .expect("a live cache entry has an LRU slot");
        entry.tick = tick;
        lru.insert(tick, key);
    }
}

/// A bounded, sharded, LRU map from scoped `(input, question)` pairs to the
/// answers a [`PerceptionBackend`](crate::batch::PerceptionBackend) gave them. See the [module docs](self)
/// for the correctness argument and locking model.
#[derive(Debug)]
pub struct PerceptionCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    insertions: AtomicUsize,
    evictions: AtomicUsize,
    capacity: usize,
}

impl PerceptionCache {
    /// Upper bound on the number of lock shards. Small capacities use fewer
    /// shards (down to one) so the configured bound stays exact.
    pub const MAX_SHARDS: usize = 16;

    /// A cache holding at most `capacity` answers (clamped to ≥ 1; use
    /// [`CacheConfig::build`] to express "off" as the absence of a cache).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        // Small caches use fewer shards (down to one) so per-shard eviction
        // stays close to true LRU; each shard holds at least a handful of
        // entries before the shard count maxes out.
        let shard_count = (capacity / 4).clamp(1, Self::MAX_SHARDS);
        let base = capacity / shard_count;
        let extra = capacity % shard_count;
        let shards = (0..shard_count)
            .map(|i| {
                Mutex::new(Shard {
                    capacity: base + usize::from(i < extra),
                    ..Shard::default()
                })
            })
            .collect();
        PerceptionCache {
            shards,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            insertions: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            capacity,
        }
    }

    /// The configured entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of answers currently cached (across all shards; a racing
    /// snapshot under concurrent use).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("perception cache shard lock").lru.len())
            .sum()
    }

    /// Whether no answer is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit/miss/insertion/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// FNV-1a over the scoped key, used only to pick a shard (entry identity
    /// is decided by the exact nested-index lookup, never by this hash).
    fn shard_of(&self, scope: CacheScope, input: &str, question: &str) -> usize {
        let mut hash: u64 = 0xcbf29ce484222325;
        for byte in [scope.index() as u8]
            .iter()
            .copied()
            .chain(input.bytes())
            .chain([0x1u8])
            .chain(question.bytes())
        {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100000001b3);
        }
        (hash % self.shards.len() as u64) as usize
    }

    /// Look up the cached answer of a scoped `(input, question)` pair,
    /// refreshing its LRU position on a hit.
    pub fn get(&self, scope: CacheScope, input: &PerceptionInput, question: &str) -> Option<Value> {
        let key = input.cache_key();
        let mut guard = self.shards[self.shard_of(scope, key, question)]
            .lock()
            .expect("perception cache shard lock");
        let shard = &mut *guard;
        shard.tick += 1;
        let tick = shard.tick;
        let found = shard.index[scope.index()]
            .get_mut(key)
            .and_then(|by_question| by_question.get_mut(question));
        match found {
            Some(entry) => {
                Shard::touch(&mut shard.lru, entry, tick);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store the answer of a scoped `(input, question)` pair, evicting the
    /// shard's least-recently-used entry if the shard is full. Returns the
    /// number of evictions performed (0 or 1).
    ///
    /// Callers must only insert **successful** answers: errors are never
    /// cached, so failed requests are re-dispatched on every attempt exactly
    /// like the uncached path.
    pub fn insert(
        &self,
        scope: CacheScope,
        input: &PerceptionInput,
        question: &str,
        value: Value,
    ) -> usize {
        let key = input.cache_key();
        let mut guard = self.shards[self.shard_of(scope, key, question)]
            .lock()
            .expect("perception cache shard lock");
        let shard = &mut *guard;
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(entry) = shard.index[scope.index()]
            .get_mut(key)
            .and_then(|by_question| by_question.get_mut(question))
        {
            // Another worker (or an earlier batch) stored this key already.
            // Answers are deterministic per key, so only the LRU position
            // needs refreshing.
            Shard::touch(&mut shard.lru, entry, tick);
            return 0;
        }
        // Build the scoped key once; index and LRU share it via `Arc`.
        let input_key = input.shared_key();
        let question_key: Arc<str> = Arc::from(question);
        shard.index[scope.index()]
            .entry(Arc::clone(&input_key))
            .or_default()
            .insert(Arc::clone(&question_key), Entry { value, tick });
        shard.lru.insert(
            tick,
            LruKey {
                scope: scope.index(),
                input: input_key,
                question: question_key,
            },
        );
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if shard.lru.len() <= shard.capacity {
            return 0;
        }
        // Evict the least-recently-used entry of this shard.
        let (_, victim) = shard
            .lru
            .pop_first()
            .expect("a full shard has an LRU entry");
        if let Some(by_question) = shard.index[victim.scope].get_mut(&victim.input) {
            by_question.remove(&victim.question);
            if by_question.is_empty() {
                shard.index[victim.scope].remove(&victim.input);
            }
        }
        self.evictions.fetch_add(1, Ordering::Relaxed);
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(text: &str) -> PerceptionInput {
        PerceptionInput::Document(text.into())
    }

    #[test]
    fn config_parses_capacity_and_off_modes() {
        assert!(CacheConfig::new(10).is_enabled());
        assert!(!CacheConfig::off().is_enabled());
        assert!(CacheConfig::off().build().is_none());
        assert_eq!(
            CacheConfig::new(10).build().unwrap().capacity(),
            10,
            "explicit capacities survive the build"
        );
    }

    #[test]
    fn hits_return_the_stored_answer() {
        let cache = PerceptionCache::with_capacity(8);
        let input = doc("report A");
        assert_eq!(cache.get(CacheScope::TextQa, &input, "Who won?"), None);
        cache.insert(CacheScope::TextQa, &input, "Who won?", Value::str("Heat"));
        assert_eq!(
            cache.get(CacheScope::TextQa, &input, "Who won?"),
            Some(Value::str("Heat"))
        );
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn scopes_and_modalities_never_share_entries() {
        let cache = PerceptionCache::with_capacity(8);
        let image = PerceptionInput::Image(crate::ImageObject::new("img/1.png"));
        // A document whose text equals an image key, asked the same question.
        let document = doc("img/1.png");
        cache.insert(CacheScope::VisualQa, &image, "Q?", Value::Int(1));
        assert_eq!(cache.get(CacheScope::TextQa, &document, "Q?"), None);
        // The same image under a different operator scope is a different key.
        assert_eq!(cache.get(CacheScope::ImageSelect, &image, "Q?"), None);
        assert_eq!(
            cache.get(CacheScope::VisualQa, &image, "Q?"),
            Some(Value::Int(1))
        );
    }

    #[test]
    fn capacity_one_evicts_the_previous_entry() {
        let cache = PerceptionCache::with_capacity(1);
        let a = doc("a");
        let b = doc("b");
        assert_eq!(cache.insert(CacheScope::TextQa, &a, "Q?", Value::Int(1)), 0);
        assert_eq!(cache.insert(CacheScope::TextQa, &b, "Q?", Value::Int(2)), 1);
        assert_eq!(cache.get(CacheScope::TextQa, &a, "Q?"), None);
        assert_eq!(cache.get(CacheScope::TextQa, &b, "Q?"), Some(Value::Int(2)));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn lru_keeps_recently_used_entries() {
        // One shard of capacity 2: touching `a` makes `b` the LRU victim.
        let cache = PerceptionCache::with_capacity(2);
        let (a, b, c) = (doc("a"), doc("b"), doc("c"));
        cache.insert(CacheScope::TextQa, &a, "Q?", Value::Int(1));
        cache.insert(CacheScope::TextQa, &b, "Q?", Value::Int(2));
        assert_eq!(cache.get(CacheScope::TextQa, &a, "Q?"), Some(Value::Int(1)));
        cache.insert(CacheScope::TextQa, &c, "Q?", Value::Int(3));
        assert_eq!(cache.get(CacheScope::TextQa, &b, "Q?"), None, "b was LRU");
        assert_eq!(cache.get(CacheScope::TextQa, &a, "Q?"), Some(Value::Int(1)));
        assert_eq!(cache.get(CacheScope::TextQa, &c, "Q?"), Some(Value::Int(3)));
    }

    #[test]
    fn reinserting_an_existing_key_does_not_grow_or_evict() {
        let cache = PerceptionCache::with_capacity(1);
        let a = doc("a");
        cache.insert(CacheScope::TextQa, &a, "Q?", Value::Int(1));
        assert_eq!(cache.insert(CacheScope::TextQa, &a, "Q?", Value::Int(1)), 0);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().insertions, 1);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn shard_capacities_sum_to_the_configured_total() {
        for capacity in [1, 2, 5, 16, 17, 100, 4096] {
            let cache = PerceptionCache::with_capacity(capacity);
            let total: usize = cache
                .shards
                .iter()
                .map(|s| s.lock().unwrap().capacity)
                .sum();
            assert_eq!(total, capacity, "capacity {capacity}");
            assert!(cache.shards.len() <= PerceptionCache::MAX_SHARDS);
        }
    }

    #[test]
    fn concurrent_mixed_use_stays_bounded_and_consistent() {
        let cache = std::sync::Arc::new(PerceptionCache::with_capacity(32));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..200 {
                        let input = doc(&format!("doc {}", (t * 7 + i) % 50));
                        let question = format!("Q{}?", i % 5);
                        if let Some(value) = cache.get(CacheScope::TextQa, &input, &question) {
                            assert_eq!(value, Value::Int(((t * 7 + i) % 50) as i64));
                        } else {
                            cache.insert(
                                CacheScope::TextQa,
                                &input,
                                &question,
                                Value::Int(((t * 7 + i) % 50) as i64),
                            );
                        }
                    }
                });
            }
        });
        assert!(
            cache.len() <= 32,
            "capacity bound violated: {}",
            cache.len()
        );
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 800);
    }
}
