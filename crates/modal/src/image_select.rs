//! Simulated Image Select model.
//!
//! The paper's fourth multi-modal operator "selects images based on a
//! description and is also based on BLIP-2" (§4). Our substitute scores an
//! image against a free-text description by checking which content words of
//! the description are depicted or appear as attribute values.

use crate::batch::{PerceptionBackend, PerceptionInput, PerceptionRequest};
use crate::error::{ModalError, ModalResult};
use crate::image::{normalize_entity, ImageObject};
use crate::noise::NoiseModel;
use caesura_engine::Value;

/// Words that carry no selective content and are ignored when matching.
const STOPWORDS: &[&str] = &[
    "a",
    "an",
    "the",
    "of",
    "in",
    "on",
    "with",
    "and",
    "or",
    "that",
    "which",
    "is",
    "are",
    "painting",
    "paintings",
    "image",
    "images",
    "picture",
    "pictures",
    "depicting",
    "depicted",
    "showing",
    "shown",
    "containing",
    "contains",
    "where",
    "all",
    "only",
    "select",
];

/// The simulated image-selection model.
#[derive(Debug, Clone, Default)]
pub struct ImageSelectModel {
    noise: NoiseModel,
}

impl ImageSelectModel {
    /// A noiseless model.
    pub fn new() -> Self {
        ImageSelectModel {
            noise: NoiseModel::none(),
        }
    }

    /// A model that corrupts a fraction of its decisions (deterministically).
    pub fn with_noise(noise: NoiseModel) -> Self {
        ImageSelectModel { noise }
    }

    /// The content terms of a description ("paintings depicting Madonna and
    /// Child" → `["madonna", "child"]`).
    pub fn content_terms(description: &str) -> Vec<String> {
        description
            .split(|c: char| !c.is_alphanumeric())
            .map(str::to_lowercase)
            .filter(|w| !w.is_empty() && !STOPWORDS.contains(&w.as_str()))
            .map(|w| normalize_entity(&w))
            .collect()
    }

    /// Whether an image matches a free-text description. Every content term
    /// must be depicted in the image or appear as an attribute value.
    pub fn matches(&self, image: &ImageObject, description: &str) -> bool {
        let terms = Self::content_terms(description);
        let mut result = if terms.is_empty() {
            // A description with no content words matches everything.
            true
        } else {
            terms.iter().all(|term| {
                image.depicts(term) || image.attributes.values().any(|v| v.to_lowercase() == *term)
            })
        };
        let noise_key = format!("{}\u{1}{}", image.key, description);
        if self.noise.should_corrupt(&noise_key) {
            result = !result;
        }
        result
    }
}

impl PerceptionBackend for ImageSelectModel {
    /// Decide a batch request-by-request; the request's `question` carries
    /// the free-text description and the answer is a boolean keep/drop.
    fn answer_batch(&self, requests: &[PerceptionRequest]) -> Vec<ModalResult<Value>> {
        requests
            .iter()
            .map(|request| match &request.input {
                PerceptionInput::Image(image) => {
                    Ok(Value::Bool(self.matches(image, &request.question)))
                }
                PerceptionInput::Document(_) => Err(ModalError::InvalidArguments {
                    operator: "Image Select".to_string(),
                    message: "the Image Select model looks at images, not TEXT documents"
                        .to_string(),
                }),
            })
            .collect()
    }

    /// Decisions depend only on the image annotations and the noise
    /// configuration, so the identity versions exactly those.
    fn identity(&self) -> String {
        format!(
            "sim:image_select:v1:noise={}@{}",
            self.noise.error_rate, self.noise.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn madonna() -> ImageObject {
        ImageObject::new("img/1.png")
            .with_object("Madonna", 1)
            .with_object("Child", 1)
            .with_attribute("style", "renaissance")
    }

    fn irises() -> ImageObject {
        ImageObject::new("img/2.png")
            .with_object("iris", 12)
            .with_object("flower", 12)
            .with_attribute("style", "impressionism")
    }

    #[test]
    fn matches_the_figure1_selection() {
        let model = ImageSelectModel::new();
        assert!(model.matches(&madonna(), "paintings depicting Madonna and Child"));
        assert!(!model.matches(&irises(), "paintings depicting Madonna and Child"));
    }

    #[test]
    fn matches_attribute_values_too() {
        let model = ImageSelectModel::new();
        assert!(model.matches(&irises(), "impressionism paintings"));
        assert!(!model.matches(&madonna(), "impressionism paintings"));
    }

    #[test]
    fn empty_description_matches_everything() {
        let model = ImageSelectModel::new();
        assert!(model.matches(&madonna(), "all the paintings"));
    }

    #[test]
    fn content_terms_strip_stopwords_and_plurals() {
        let terms = ImageSelectModel::content_terms("paintings depicting swords and flowers");
        assert_eq!(terms, vec!["sword", "flower"]);
    }

    #[test]
    fn noise_flips_decisions_deterministically() {
        let model = ImageSelectModel::with_noise(NoiseModel::with_rate(1.0, 5));
        let first = model.matches(&madonna(), "paintings depicting Madonna");
        let second = model.matches(&madonna(), "paintings depicting Madonna");
        assert!(!first);
        assert_eq!(first, second);
    }
}
