//! Simulated VisualQA model (the BLIP-2 substitute).
//!
//! The operator contract matches the paper: given an image and a natural
//! language question, produce a structured answer (an int for counting
//! questions, `yes`/`no` for existence questions, a string for descriptive
//! questions). In the physical plan the operator's arguments are
//! `(image_column, new_column, question, result_dtype)` — see Figure 4, where
//! the VisualQA step is called with
//! `('image', 'num_swords', 'How many swords are depicted?', 'int')`.

use crate::batch::{PerceptionBackend, PerceptionInput, PerceptionRequest};
use crate::error::{ModalError, ModalResult};
use crate::image::{normalize_entity, ImageObject};
use crate::noise::NoiseModel;
use caesura_engine::Value;

/// The kind of question a VisualQA model was asked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VisualQuestion {
    /// "How many X are depicted?" → integer count of entity X.
    Count {
        /// The entity being counted (normalized).
        entity: String,
    },
    /// "Is/Are X depicted?" → yes/no.
    Exists {
        /// The entity phrase (may contain "and"), normalized.
        entity: String,
    },
    /// "What is depicted?" → caption / list of entities.
    Describe,
    /// "What is the `<attribute>`?" → categorical attribute lookup.
    Attribute {
        /// Attribute name, lowercased.
        name: String,
    },
}

/// Parse a natural-language question into a [`VisualQuestion`].
///
/// The recognizer is intentionally small but covers the phrasings the planner
/// generates ("How many swords are depicted?", "Is Madonna and Child
/// depicted?", "What is depicted in the image?", "What is the style?").
pub fn parse_visual_question(question: &str) -> ModalResult<VisualQuestion> {
    let q = question.trim().trim_end_matches('?').to_lowercase();
    let unanswerable = |reason: &str| {
        Err(ModalError::UnanswerableQuestion {
            model: "VisualQA".into(),
            question: question.to_string(),
            reason: reason.to_string(),
        })
    };

    if q.is_empty() {
        return unanswerable("the question is empty");
    }

    // Counting questions.
    if let Some(rest) = q.strip_prefix("how many ") {
        // "how many swords are depicted", "how many swords are depicted on the painting",
        // "how many swords are there", "how many swords".
        let entity = rest
            .split(" are ")
            .next()
            .unwrap_or(rest)
            .split(" is ")
            .next()
            .unwrap_or(rest)
            .split(" do ")
            .next()
            .unwrap_or(rest)
            .split(" can ")
            .next()
            .unwrap_or(rest)
            .trim();
        if entity.is_empty() {
            return unanswerable("could not identify what to count");
        }
        return Ok(VisualQuestion::Count {
            entity: normalize_entity(entity),
        });
    }

    // Existence questions: "is X depicted", "are X depicted", "does the image show X",
    // "is X visible", "is there a X".
    for prefix in ["is there a ", "is there an ", "are there "] {
        if let Some(rest) = q.strip_prefix(prefix) {
            let entity = rest
                .split(" in ")
                .next()
                .unwrap_or(rest)
                .split(" depicted")
                .next()
                .unwrap_or(rest)
                .trim();
            return Ok(VisualQuestion::Exists {
                entity: normalize_entity(entity),
            });
        }
    }
    for prefix in ["is ", "are "] {
        if let Some(rest) = q.strip_prefix(prefix) {
            if let Some(entity) = rest
                .split(" depicted")
                .next()
                .filter(|_| rest.contains("depicted"))
            {
                return Ok(VisualQuestion::Exists {
                    entity: normalize_entity(entity),
                });
            }
            if let Some(entity) = rest
                .split(" visible")
                .next()
                .filter(|_| rest.contains("visible"))
            {
                return Ok(VisualQuestion::Exists {
                    entity: normalize_entity(entity),
                });
            }
            if let Some(entity) = rest
                .split(" shown")
                .next()
                .filter(|_| rest.contains("shown"))
            {
                return Ok(VisualQuestion::Exists {
                    entity: normalize_entity(entity),
                });
            }
        }
    }
    if let Some(rest) = q.strip_prefix("does the image show ") {
        return Ok(VisualQuestion::Exists {
            entity: normalize_entity(rest),
        });
    }
    if let Some(rest) = q.strip_prefix("does the painting show ") {
        return Ok(VisualQuestion::Exists {
            entity: normalize_entity(rest),
        });
    }

    // Attribute questions: "what is the style", "what is the dominant color".
    if let Some(rest) = q.strip_prefix("what is the ") {
        let name = rest
            .split(" of ")
            .next()
            .unwrap_or(rest)
            .split(" depicted")
            .next()
            .unwrap_or(rest)
            .trim();
        if !name.is_empty() && name != "image" {
            return Ok(VisualQuestion::Attribute {
                name: name.to_string(),
            });
        }
    }

    // Descriptive questions.
    if q.starts_with("what is depicted")
        || q.starts_with("what does the image show")
        || q.starts_with("describe")
        || q.starts_with("what objects")
    {
        return Ok(VisualQuestion::Describe);
    }

    unanswerable("the question does not match any supported visual question pattern")
}

/// The simulated VisualQA model.
#[derive(Debug, Clone, Default)]
pub struct VisualQaModel {
    noise: NoiseModel,
}

impl VisualQaModel {
    /// A noiseless model.
    pub fn new() -> Self {
        VisualQaModel {
            noise: NoiseModel::none(),
        }
    }

    /// A model that corrupts a fraction of its answers (deterministically).
    pub fn with_noise(noise: NoiseModel) -> Self {
        VisualQaModel { noise }
    }

    /// Answer a question about an image. The returned [`Value`] is an
    /// `Int` for counting questions, a `Str` (`"yes"`/`"no"`) for existence
    /// questions, and a `Str` otherwise — matching the `result_dtype`
    /// argument convention of the paper's VisualQA operator.
    pub fn answer(&self, image: &ImageObject, question: &str) -> ModalResult<Value> {
        let parsed = parse_visual_question(question)?;
        let noise_key = format!("{}\u{1}{}", image.key, question);
        Ok(match parsed {
            VisualQuestion::Count { entity } => {
                let mut count = i64::from(image.count_of(&entity));
                if self.noise.should_corrupt(&noise_key) {
                    count = self.noise.perturb_count(&noise_key, count);
                }
                Value::Int(count)
            }
            VisualQuestion::Exists { entity } => {
                let mut depicted = image.depicts(&entity);
                if self.noise.should_corrupt(&noise_key) {
                    depicted = !depicted;
                }
                Value::str(if depicted { "yes" } else { "no" })
            }
            VisualQuestion::Describe => Value::str(image.caption()),
            VisualQuestion::Attribute { name } => match image.attribute(&name) {
                Some(value) => Value::str(value),
                None => Value::str("unknown"),
            },
        })
    }
}

impl PerceptionBackend for VisualQaModel {
    /// Answer a batch request-by-request; the simulated model has no
    /// per-call overhead, so batching only changes the dispatch granularity.
    fn answer_batch(&self, requests: &[PerceptionRequest]) -> Vec<ModalResult<Value>> {
        requests
            .iter()
            .map(|request| match &request.input {
                PerceptionInput::Image(image) => self.answer(image, &request.question),
                PerceptionInput::Document(_) => Err(ModalError::InvalidArguments {
                    operator: "Visual Question Answering".to_string(),
                    message: "the VisualQA model looks at images, not TEXT documents".to_string(),
                }),
            })
            .collect()
    }

    /// Answers depend only on the image annotations and the noise
    /// configuration, so the identity versions exactly those.
    fn identity(&self) -> String {
        format!(
            "sim:visual_qa:v1:noise={}@{}",
            self.noise.error_rate, self.noise.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image() -> ImageObject {
        ImageObject::new("img/1.png")
            .with_object("Madonna", 1)
            .with_object("Child", 1)
            .with_object("sword", 3)
            .with_attribute("style", "baroque")
            .with_attribute("dominant color", "red")
    }

    #[test]
    fn counting_question_from_figure4() {
        let model = VisualQaModel::new();
        let answer = model
            .answer(&image(), "How many swords are depicted?")
            .unwrap();
        assert_eq!(answer, Value::Int(3));
        let answer = model
            .answer(&image(), "How many horses are depicted?")
            .unwrap();
        assert_eq!(answer, Value::Int(0));
    }

    #[test]
    fn existence_question_from_figure2() {
        let model = VisualQaModel::new();
        let answer = model
            .answer(&image(), "Is Madonna and Child depicted?")
            .unwrap();
        assert_eq!(answer, Value::str("yes"));
        let answer = model.answer(&image(), "Is a horse depicted?").unwrap();
        assert_eq!(answer, Value::str("no"));
    }

    #[test]
    fn alternative_existence_phrasings() {
        let model = VisualQaModel::new();
        for question in [
            "Are swords depicted?",
            "Is there a sword in the painting?",
            "Does the image show swords?",
            "Is a sword visible?",
        ] {
            assert_eq!(
                model.answer(&image(), question).unwrap(),
                Value::str("yes"),
                "failed for {question}"
            );
        }
    }

    #[test]
    fn describe_and_attribute_questions() {
        let model = VisualQaModel::new();
        let caption = model.answer(&image(), "What is depicted?").unwrap();
        assert!(caption.to_string().contains("madonna"));
        let style = model.answer(&image(), "What is the style?").unwrap();
        assert_eq!(style, Value::str("baroque"));
        let color = model
            .answer(&image(), "What is the dominant color?")
            .unwrap();
        assert_eq!(color, Value::str("red"));
        let missing = model.answer(&image(), "What is the genre?").unwrap();
        assert_eq!(missing, Value::str("unknown"));
    }

    #[test]
    fn unparseable_questions_are_rejected_with_reason() {
        let model = VisualQaModel::new();
        let err = model
            .answer(&image(), "Please transcribe the signature")
            .unwrap_err();
        assert!(matches!(err, ModalError::UnanswerableQuestion { .. }));
        assert!(err.to_string().contains("VisualQA"));
    }

    #[test]
    fn noise_flips_answers_deterministically() {
        let noisy = VisualQaModel::with_noise(NoiseModel::with_rate(1.0, 3));
        let a = noisy
            .answer(&image(), "Is Madonna and Child depicted?")
            .unwrap();
        assert_eq!(a, Value::str("no"));
        let b = noisy
            .answer(&image(), "Is Madonna and Child depicted?")
            .unwrap();
        assert_eq!(a, b, "noise must be deterministic");
        let count = noisy
            .answer(&image(), "How many swords are depicted?")
            .unwrap();
        assert_ne!(count, Value::Int(3));
    }

    #[test]
    fn parser_extracts_entities() {
        assert_eq!(
            parse_visual_question("How many swords are depicted?").unwrap(),
            VisualQuestion::Count {
                entity: "sword".into()
            }
        );
        assert_eq!(
            parse_visual_question("Is Madonna and Child depicted?").unwrap(),
            VisualQuestion::Exists {
                entity: "madonna and child".into()
            }
        );
        assert!(parse_visual_question("").is_err());
    }
}
