//! The physical operator vocabulary of CAESURA and the table-level
//! implementations of the multi-modal operators.
//!
//! The paper's prototype exposes four multi-modal operators — VisualQA,
//! TextQA, Python UDFs, and Image Select — plus "all relational operators
//! supported by SQLite" and a plotting operator (§4). [`OperatorKind`]
//! enumerates that vocabulary together with the metadata (name, description,
//! argument signature) that the mapping-phase prompt presents to the language
//! model (Figure 3, right).

use crate::error::{ModalError, ModalResult};
use crate::image::ImageStore;
use crate::image_select::ImageSelectModel;
use crate::plot::{Plot, PlotKind, PlotSpec};
use crate::text_qa::TextQaModel;
use crate::transform::TransformCodegen;
use crate::visual_qa::VisualQaModel;
use caesura_engine::{DataType, Table, Value};

/// Every physical operator CAESURA can place in a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatorKind {
    /// Relational join executed as SQL.
    SqlJoin,
    /// Relational selection executed as SQL (or a bare condition).
    SqlSelection,
    /// Relational grouping/aggregation executed as SQL.
    SqlAggregation,
    /// A general SQL query (projection, sorting, limits, ...).
    Sql,
    /// Visual question answering over an IMAGE column.
    VisualQa,
    /// Text question answering over a TEXT column (question templates).
    TextQa,
    /// Select rows whose image matches a free-text description.
    ImageSelect,
    /// The Python-UDF substitute: compute a new column from a description.
    PythonUdf,
    /// Produce a plot from the final result table.
    Plot,
}

impl OperatorKind {
    /// All operators, in the order they are listed in prompts.
    pub fn all() -> &'static [OperatorKind] {
        &[
            OperatorKind::SqlJoin,
            OperatorKind::SqlSelection,
            OperatorKind::SqlAggregation,
            OperatorKind::Sql,
            OperatorKind::VisualQa,
            OperatorKind::TextQa,
            OperatorKind::ImageSelect,
            OperatorKind::PythonUdf,
            OperatorKind::Plot,
        ]
    }

    /// The canonical operator name used in prompts and plan parsing.
    pub fn name(&self) -> &'static str {
        match self {
            OperatorKind::SqlJoin => "SQL Join",
            OperatorKind::SqlSelection => "SQL Selection",
            OperatorKind::SqlAggregation => "SQL Aggregation",
            OperatorKind::Sql => "SQL Query",
            OperatorKind::VisualQa => "Visual Question Answering",
            OperatorKind::TextQa => "Text Question Answering",
            OperatorKind::ImageSelect => "Image Select",
            OperatorKind::PythonUdf => "Python",
            OperatorKind::Plot => "Plot",
        }
    }

    /// Parse an operator name as produced by the language model; accepts the
    /// canonical names plus common abbreviations.
    pub fn from_name(name: &str) -> Option<OperatorKind> {
        let normalized = name.trim().to_lowercase().replace(['_', '-'], " ");
        Some(match normalized.as_str() {
            "sql join" | "join" | "sql (join)" => OperatorKind::SqlJoin,
            "sql selection" | "selection" | "select" | "sql (selection)" | "filter" => {
                OperatorKind::SqlSelection
            }
            "sql aggregation" | "aggregation" | "aggregate" | "sql (aggregation)" | "group by" => {
                OperatorKind::SqlAggregation
            }
            "sql query" | "sql" | "query" | "projection" | "sort" => OperatorKind::Sql,
            "visual question answering" | "visualqa" | "visual qa" | "vqa" => {
                OperatorKind::VisualQa
            }
            "text question answering" | "textqa" | "text qa" | "tqa" => OperatorKind::TextQa,
            "image select" | "imageselect" | "image selection" => OperatorKind::ImageSelect,
            "python" | "python udf" | "udf" | "transform" => OperatorKind::PythonUdf,
            "plot" | "visualization" | "visualisation" | "chart" => OperatorKind::Plot,
            _ => return None,
        })
    }

    /// The description of the operator rendered into the mapping-phase prompt.
    pub fn description(&self) -> &'static str {
        match self {
            OperatorKind::SqlJoin => {
                "It is useful when you want to combine two tables on a common key column. \
                 The argument is a SQL SELECT statement with a JOIN clause."
            }
            OperatorKind::SqlSelection => {
                "It is useful when you want to keep only the rows of a table that satisfy a \
                 condition on existing columns (e.g. p.madonna_depicted = 'yes'). \
                 The argument is the condition."
            }
            OperatorKind::SqlAggregation => {
                "It is useful when you want to group a table by one or more columns and compute \
                 aggregates such as COUNT, SUM, AVG, MIN or MAX. The argument is a SQL SELECT \
                 statement with a GROUP BY clause."
            }
            OperatorKind::Sql => {
                "It is useful for any other relational processing such as projecting columns, \
                 sorting, or limiting the output. The argument is a SQL SELECT statement."
            }
            OperatorKind::VisualQa => {
                "It is useful when you want to extract structured information from images \
                 (columns of type IMAGE), e.g. to count depicted objects or check what is \
                 depicted. Arguments: (image column; new column name; question; result datatype)."
            }
            OperatorKind::TextQa => {
                "It is useful when you want to extract structured information from text documents \
                 (columns of type TEXT). The question is a template that may reference other \
                 columns in angle brackets, e.g. 'How many points did <name> score?'. \
                 Arguments: (text column; new column name; question template; result datatype)."
            }
            OperatorKind::ImageSelect => {
                "It is useful when you want to select tuples based on what is depicted in images \
                 (columns of type IMAGE). Arguments: (image column; description of the images to keep)."
            }
            OperatorKind::PythonUdf => {
                "It is useful when you need to compute a new column from existing columns, e.g. \
                 extracting the century from a date string or converting values. \
                 Arguments: (description of the transformation; new column name)."
            }
            OperatorKind::Plot => {
                "It is useful as the final step when the user asked for a plot. \
                 Arguments: (plot kind [bar/line/scatter]; x-axis column; y-axis column)."
            }
        }
    }

    /// Whether the operator consumes non-relational modalities.
    pub fn is_multimodal(&self) -> bool {
        matches!(
            self,
            OperatorKind::VisualQa | OperatorKind::TextQa | OperatorKind::ImageSelect
        )
    }

    /// Render the `You can use the following operators:` prompt block.
    pub fn prompt_catalog() -> String {
        OperatorKind::all()
            .iter()
            .map(|op| format!("{}: {}", op.name(), op.description()))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Parse a result-datatype argument ("int", "str", "float", "bool").
pub fn parse_result_dtype(text: &str) -> DataType {
    match text.trim().to_lowercase().as_str() {
        "int" | "integer" | "number" => DataType::Int,
        "float" | "double" | "real" => DataType::Float,
        "bool" | "boolean" => DataType::Bool,
        _ => DataType::Str,
    }
}

/// Apply the VisualQA operator: answer `question` for the image referenced by
/// `image_column` in every row and store the answer in `new_column`.
pub fn apply_visual_qa(
    table: &Table,
    store: &ImageStore,
    model: &VisualQaModel,
    image_column: &str,
    new_column: &str,
    question: &str,
    result_type: DataType,
) -> ModalResult<Table> {
    let schema = table.schema().clone();
    let idx = schema.resolve(image_column).map_err(ModalError::Engine)?;
    let field_type = schema.field(idx).map(|f| f.data_type);
    if field_type != Some(DataType::Image) {
        return Err(ModalError::InvalidArguments {
            operator: OperatorKind::VisualQa.name().to_string(),
            message: format!(
                "column '{image_column}' has type {} but VisualQA requires an IMAGE column",
                field_type.map(|t| t.prompt_name()).unwrap_or("unknown")
            ),
        });
    }
    table
        .with_new_column(new_column, result_type, |_, row| {
            let key = match row.get(idx) {
                Value::Image(key) => key.to_string(),
                Value::Null => return Ok(Value::Null),
                other => other.to_string(),
            };
            let image = store.get(&key).ok_or_else(|| {
                caesura_engine::EngineError::execution(format!(
                    "image '{key}' was not found in the image store"
                ))
            })?;
            let answer = model
                .answer(image, question)
                .map_err(|e| caesura_engine::EngineError::execution(e.to_string()))?;
            Ok(coerce(answer, result_type))
        })
        .map_err(ModalError::Engine)
}

/// Apply the TextQA operator: instantiate `question_template` per row (filling
/// `<column>` placeholders from the row) and answer it against the document in
/// `text_column`, storing the answer in `new_column`.
pub fn apply_text_qa(
    table: &Table,
    model: &TextQaModel,
    text_column: &str,
    new_column: &str,
    question_template: &str,
    result_type: DataType,
) -> ModalResult<Table> {
    let schema = table.schema().clone();
    let idx = schema.resolve(text_column).map_err(ModalError::Engine)?;
    let field_type = schema.field(idx).map(|f| f.data_type);
    if field_type != Some(DataType::Text) {
        return Err(ModalError::InvalidArguments {
            operator: OperatorKind::TextQa.name().to_string(),
            message: format!(
                "column '{text_column}' has type {} but TextQA requires a TEXT column",
                field_type.map(|t| t.prompt_name()).unwrap_or("unknown")
            ),
        });
    }
    // Validate that every placeholder in the template resolves to a column.
    for placeholder in template_placeholders(question_template) {
        if schema.resolve(&placeholder).is_err() {
            return Err(ModalError::InvalidArguments {
                operator: OperatorKind::TextQa.name().to_string(),
                message: format!(
                    "the question template references '<{placeholder}>' but the input table has \
                     no such column (available: {:?})",
                    schema.names()
                ),
            });
        }
    }
    table
        .with_new_column(new_column, result_type, |_, row| {
            let document = match row.get(idx) {
                Value::Text(text) => text.to_string(),
                Value::Null => return Ok(Value::Null),
                other => other.to_string(),
            };
            let question = instantiate_template(question_template, &schema, &row)?;
            let answer = model
                .answer(&document, &question)
                .map_err(|e| caesura_engine::EngineError::execution(e.to_string()))?;
            Ok(coerce(answer, result_type))
        })
        .map_err(ModalError::Engine)
}

/// Apply the Image Select operator: keep only rows whose image matches the
/// description.
pub fn apply_image_select(
    table: &Table,
    store: &ImageStore,
    model: &ImageSelectModel,
    image_column: &str,
    description: &str,
) -> ModalResult<Table> {
    let schema = table.schema().clone();
    let idx = schema.resolve(image_column).map_err(ModalError::Engine)?;
    if schema.field(idx).map(|f| f.data_type) != Some(DataType::Image) {
        return Err(ModalError::InvalidArguments {
            operator: OperatorKind::ImageSelect.name().to_string(),
            message: format!("column '{image_column}' is not an IMAGE column"),
        });
    }
    table
        .filter_rows(|row| {
            let key = match row.get(idx) {
                Value::Image(key) => key.to_string(),
                Value::Null => return Ok(false),
                other => other.to_string(),
            };
            let image = store.get(&key).ok_or_else(|| {
                caesura_engine::EngineError::execution(format!(
                    "image '{key}' was not found in the image store"
                ))
            })?;
            Ok(model.matches(image, description))
        })
        .map_err(ModalError::Engine)
}

/// Apply the Python-UDF substitute: compile the description and compute the
/// new column.
pub fn apply_python_udf(
    table: &Table,
    codegen: &TransformCodegen,
    description: &str,
    new_column: &str,
) -> ModalResult<Table> {
    let program = codegen.compile(description, table.schema())?;
    program.apply(table, new_column)
}

/// Apply the Plot operator to a result table.
pub fn apply_plot(table: &Table, kind: &str, x_column: &str, y_column: &str) -> ModalResult<Plot> {
    let kind = PlotKind::from_name(kind)?;
    Plot::from_table(table, PlotSpec::new(kind, x_column, y_column))
}

/// Placeholders (`<name>`) appearing in a question template.
pub fn template_placeholders(template: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = template;
    while let Some(start) = rest.find('<') {
        if let Some(end) = rest[start..].find('>') {
            let inner = &rest[start + 1..start + end];
            if !inner.is_empty() && !out.contains(&inner.to_string()) {
                out.push(inner.to_string());
            }
            rest = &rest[start + end + 1..];
        } else {
            break;
        }
    }
    out
}

fn instantiate_template(
    template: &str,
    schema: &caesura_engine::Schema,
    row: &caesura_engine::RowRef<'_>,
) -> Result<String, caesura_engine::EngineError> {
    let mut question = template.to_string();
    for placeholder in template_placeholders(template) {
        let idx = schema.resolve(&placeholder)?;
        question = question.replace(&format!("<{placeholder}>"), &row.get(idx).to_string());
    }
    Ok(question)
}

/// Coerce a model answer into the declared result type where possible.
fn coerce(value: Value, target: DataType) -> Value {
    match (target, &value) {
        (DataType::Int, Value::Str(s)) => s.trim().parse::<i64>().map(Value::Int).unwrap_or(value),
        (DataType::Float, Value::Int(i)) => Value::Float(*i as f64),
        (DataType::Float, Value::Str(s)) => {
            s.trim().parse::<f64>().map(Value::Float).unwrap_or(value)
        }
        (DataType::Bool, Value::Str(s)) => match s.to_lowercase().as_str() {
            "yes" | "true" => Value::Bool(true),
            "no" | "false" => Value::Bool(false),
            _ => value,
        },
        (DataType::Str, Value::Int(i)) => Value::str(i.to_string()),
        _ => value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageObject;
    use caesura_engine::{Schema, TableBuilder};

    fn image_store() -> ImageStore {
        let mut store = ImageStore::new();
        store.insert(
            ImageObject::new("img/1.png")
                .with_object("Madonna", 1)
                .with_object("Child", 1)
                .with_object("sword", 2),
        );
        store.insert(ImageObject::new("img/2.png").with_object("iris", 12));
        store
    }

    fn joined_table() -> Table {
        let schema = Schema::from_pairs(&[
            ("title", DataType::Str),
            ("img_path", DataType::Str),
            ("image", DataType::Image),
        ]);
        let mut b = TableBuilder::new("joined_table", schema);
        b.push_row(vec![
            Value::str("Madonna"),
            Value::str("img/1.png"),
            Value::image("img/1.png"),
        ])
        .unwrap();
        b.push_row(vec![
            Value::str("Irises"),
            Value::str("img/2.png"),
            Value::image("img/2.png"),
        ])
        .unwrap();
        b.build()
    }

    fn reports_table() -> Table {
        let schema = Schema::from_pairs(&[("name", DataType::Str), ("report", DataType::Text)]);
        let mut b = TableBuilder::new("final_joined_table", schema);
        let report = "The Spurs defeated the Heat 110-102. The Heat scored 102 points \
                      while the Spurs scored 110 points.";
        b.push_row(vec![Value::str("Heat"), Value::text(report)])
            .unwrap();
        b.push_row(vec![Value::str("Spurs"), Value::text(report)])
            .unwrap();
        b.build()
    }

    #[test]
    fn visual_qa_adds_the_num_swords_column() {
        let out = apply_visual_qa(
            &joined_table(),
            &image_store(),
            &VisualQaModel::new(),
            "image",
            "num_swords",
            "How many swords are depicted?",
            DataType::Int,
        )
        .unwrap();
        assert_eq!(out.value(0, "num_swords").unwrap(), Value::Int(2));
        assert_eq!(out.value(1, "num_swords").unwrap(), Value::Int(0));
    }

    #[test]
    fn visual_qa_rejects_non_image_columns() {
        let err = apply_visual_qa(
            &joined_table(),
            &image_store(),
            &VisualQaModel::new(),
            "title",
            "x",
            "How many swords are depicted?",
            DataType::Int,
        )
        .unwrap_err();
        assert!(err.to_string().contains("IMAGE column"));
    }

    #[test]
    fn text_qa_instantiates_the_template_per_row() {
        let out = apply_text_qa(
            &reports_table(),
            &TextQaModel::new(),
            "report",
            "points_scored",
            "How many points did <name> score?",
            DataType::Int,
        )
        .unwrap();
        assert_eq!(out.value(0, "points_scored").unwrap(), Value::Int(102));
        assert_eq!(out.value(1, "points_scored").unwrap(), Value::Int(110));
    }

    #[test]
    fn text_qa_rejects_unknown_placeholder_columns() {
        let err = apply_text_qa(
            &reports_table(),
            &TextQaModel::new(),
            "report",
            "points",
            "How many points did <team_name> score?",
            DataType::Int,
        )
        .unwrap_err();
        assert!(err.to_string().contains("team_name"));
    }

    #[test]
    fn image_select_filters_rows() {
        let out = apply_image_select(
            &joined_table(),
            &image_store(),
            &ImageSelectModel::new(),
            "image",
            "paintings depicting Madonna and Child",
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "title").unwrap(), Value::str("Madonna"));
    }

    #[test]
    fn python_udf_and_plot_round_trip() {
        let schema =
            Schema::from_pairs(&[("inception", DataType::Str), ("num_swords", DataType::Int)]);
        let mut b = TableBuilder::new("t", schema);
        b.push_values::<_, Value>(vec![Value::str("1480-05-12"), Value::Int(5)])
            .unwrap();
        b.push_values::<_, Value>(vec![Value::str("1889-01-05"), Value::Int(2)])
            .unwrap();
        let table = b.build();
        let with_century = apply_python_udf(
            &table,
            &TransformCodegen::new(),
            "Extract the century from the dates in the 'inception' column",
            "century",
        )
        .unwrap();
        let plot = apply_plot(&with_century, "bar", "century", "num_swords").unwrap();
        assert_eq!(plot.points.len(), 2);
        assert_eq!(plot.points[0].label, "15");
    }

    #[test]
    fn operator_names_round_trip_and_catalog_renders() {
        for op in OperatorKind::all() {
            assert_eq!(OperatorKind::from_name(op.name()), Some(*op));
        }
        assert_eq!(
            OperatorKind::from_name("Visual Question Answering"),
            Some(OperatorKind::VisualQa)
        );
        assert_eq!(OperatorKind::from_name("nonsense"), None);
        let catalog = OperatorKind::prompt_catalog();
        assert!(catalog.contains("Image Select"));
        assert!(catalog.contains("IMAGE"));
    }

    #[test]
    fn dtype_parsing_and_coercion() {
        assert_eq!(parse_result_dtype("int"), DataType::Int);
        assert_eq!(parse_result_dtype("string"), DataType::Str);
        assert_eq!(coerce(Value::str("42"), DataType::Int), Value::Int(42));
        assert_eq!(coerce(Value::str("yes"), DataType::Bool), Value::Bool(true));
        assert_eq!(coerce(Value::Int(3), DataType::Str), Value::str("3"));
    }

    #[test]
    fn template_placeholder_extraction() {
        assert_eq!(
            template_placeholders("How many points did <name> score in <game_id>?"),
            vec!["name", "game_id"]
        );
        assert!(template_placeholders("no placeholders").is_empty());
    }
}
