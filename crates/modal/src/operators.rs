//! The physical operator vocabulary of CAESURA and the table-level
//! implementations of the multi-modal operators.
//!
//! The paper's prototype exposes four multi-modal operators — VisualQA,
//! TextQA, Python UDFs, and Image Select — plus "all relational operators
//! supported by SQLite" and a plotting operator (§4). [`OperatorKind`]
//! enumerates that vocabulary together with the metadata (name, description,
//! argument signature) that the mapping-phase prompt presents to the language
//! model (Figure 3, right).

use crate::batch::{BatchConfig, BatchStats, PerceptionBackend, PerceptionBatch};
use crate::cache::{CacheScope, PerceptionCache};
use crate::error::{ModalError, ModalResult};
use crate::image::ImageStore;
use crate::plot::{Plot, PlotKind, PlotSpec};
use crate::transform::TransformCodegen;
use caesura_engine::{ColumnBuilder, DataType, EngineError, Field, Table, Value};
use std::sync::Arc;

/// Every physical operator CAESURA can place in a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatorKind {
    /// Relational join executed as SQL.
    SqlJoin,
    /// Relational selection executed as SQL (or a bare condition).
    SqlSelection,
    /// Relational grouping/aggregation executed as SQL.
    SqlAggregation,
    /// A general SQL query (projection, sorting, limits, ...).
    Sql,
    /// Visual question answering over an IMAGE column.
    VisualQa,
    /// Text question answering over a TEXT column (question templates).
    TextQa,
    /// Select rows whose image matches a free-text description.
    ImageSelect,
    /// The Python-UDF substitute: compute a new column from a description.
    PythonUdf,
    /// Produce a plot from the final result table.
    Plot,
}

impl OperatorKind {
    /// All operators, in the order they are listed in prompts.
    pub fn all() -> &'static [OperatorKind] {
        &[
            OperatorKind::SqlJoin,
            OperatorKind::SqlSelection,
            OperatorKind::SqlAggregation,
            OperatorKind::Sql,
            OperatorKind::VisualQa,
            OperatorKind::TextQa,
            OperatorKind::ImageSelect,
            OperatorKind::PythonUdf,
            OperatorKind::Plot,
        ]
    }

    /// The canonical operator name used in prompts and plan parsing.
    pub fn name(&self) -> &'static str {
        match self {
            OperatorKind::SqlJoin => "SQL Join",
            OperatorKind::SqlSelection => "SQL Selection",
            OperatorKind::SqlAggregation => "SQL Aggregation",
            OperatorKind::Sql => "SQL Query",
            OperatorKind::VisualQa => "Visual Question Answering",
            OperatorKind::TextQa => "Text Question Answering",
            OperatorKind::ImageSelect => "Image Select",
            OperatorKind::PythonUdf => "Python",
            OperatorKind::Plot => "Plot",
        }
    }

    /// Parse an operator name as produced by the language model; accepts the
    /// canonical names plus common abbreviations.
    pub fn from_name(name: &str) -> Option<OperatorKind> {
        let normalized = name.trim().to_lowercase().replace(['_', '-'], " ");
        Some(match normalized.as_str() {
            "sql join" | "join" | "sql (join)" => OperatorKind::SqlJoin,
            "sql selection" | "selection" | "select" | "sql (selection)" | "filter" => {
                OperatorKind::SqlSelection
            }
            "sql aggregation" | "aggregation" | "aggregate" | "sql (aggregation)" | "group by" => {
                OperatorKind::SqlAggregation
            }
            "sql query" | "sql" | "query" | "projection" | "sort" => OperatorKind::Sql,
            "visual question answering" | "visualqa" | "visual qa" | "vqa" => {
                OperatorKind::VisualQa
            }
            "text question answering" | "textqa" | "text qa" | "tqa" => OperatorKind::TextQa,
            "image select" | "imageselect" | "image selection" => OperatorKind::ImageSelect,
            "python" | "python udf" | "udf" | "transform" => OperatorKind::PythonUdf,
            "plot" | "visualization" | "visualisation" | "chart" => OperatorKind::Plot,
            _ => return None,
        })
    }

    /// The description of the operator rendered into the mapping-phase prompt.
    pub fn description(&self) -> &'static str {
        match self {
            OperatorKind::SqlJoin => {
                "It is useful when you want to combine two tables on a common key column. \
                 The argument is a SQL SELECT statement with a JOIN clause."
            }
            OperatorKind::SqlSelection => {
                "It is useful when you want to keep only the rows of a table that satisfy a \
                 condition on existing columns (e.g. p.madonna_depicted = 'yes'). \
                 The argument is the condition."
            }
            OperatorKind::SqlAggregation => {
                "It is useful when you want to group a table by one or more columns and compute \
                 aggregates such as COUNT, SUM, AVG, MIN or MAX. The argument is a SQL SELECT \
                 statement with a GROUP BY clause."
            }
            OperatorKind::Sql => {
                "It is useful for any other relational processing such as projecting columns, \
                 sorting, or limiting the output. The argument is a SQL SELECT statement."
            }
            OperatorKind::VisualQa => {
                "It is useful when you want to extract structured information from images \
                 (columns of type IMAGE), e.g. to count depicted objects or check what is \
                 depicted. Arguments: (image column; new column name; question; result datatype)."
            }
            OperatorKind::TextQa => {
                "It is useful when you want to extract structured information from text documents \
                 (columns of type TEXT). The question is a template that may reference other \
                 columns in angle brackets, e.g. 'How many points did <name> score?'. \
                 Arguments: (text column; new column name; question template; result datatype)."
            }
            OperatorKind::ImageSelect => {
                "It is useful when you want to select tuples based on what is depicted in images \
                 (columns of type IMAGE). Arguments: (image column; description of the images to keep)."
            }
            OperatorKind::PythonUdf => {
                "It is useful when you need to compute a new column from existing columns, e.g. \
                 extracting the century from a date string or converting values. \
                 Arguments: (description of the transformation; new column name)."
            }
            OperatorKind::Plot => {
                "It is useful as the final step when the user asked for a plot. \
                 Arguments: (plot kind [bar/line/scatter]; x-axis column; y-axis column)."
            }
        }
    }

    /// Whether the operator consumes non-relational modalities.
    pub fn is_multimodal(&self) -> bool {
        matches!(
            self,
            OperatorKind::VisualQa | OperatorKind::TextQa | OperatorKind::ImageSelect
        )
    }

    /// Render the `You can use the following operators:` prompt block.
    pub fn prompt_catalog() -> String {
        OperatorKind::all()
            .iter()
            .map(|op| format!("{}: {}", op.name(), op.description()))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Parse a result-datatype argument ("int", "str", "float", "bool").
pub fn parse_result_dtype(text: &str) -> DataType {
    match text.trim().to_lowercase().as_str() {
        "int" | "integer" | "number" => DataType::Int,
        "float" | "double" | "real" => DataType::Float,
        "bool" | "boolean" => DataType::Bool,
        _ => DataType::Str,
    }
}

/// A typed execution error for a cell whose value does not match the
/// modality its column declares (e.g. an error string landing in a TEXT
/// column). The row index pins the offending tuple for error analysis.
fn cell_type_error(row: usize, column: &str, value: &Value, expected: &str) -> EngineError {
    EngineError::execution(format!(
        "row {row} of column '{column}' holds the {} value {} where {expected} was expected",
        value.data_type().prompt_name(),
        value.preview(40),
    ))
}

/// Dispatch a gathered perception batch and scatter the answers into a new
/// column of `result_type`. The first error in row order wins — dispatch
/// errors cover rows gathered *before* `pending_error`'s row (the
/// gather-phase error from a missing image or mistyped cell), so they take
/// precedence — exactly like the row-at-a-time path. Stats are returned
/// alongside the result so failed dispatches still account for their calls.
#[allow(clippy::too_many_arguments)]
fn dispatch_into_column(
    table: &Table,
    out_schema: caesura_engine::Schema,
    collector: PerceptionBatch,
    pending_error: Option<EngineError>,
    model: &dyn PerceptionBackend,
    batch: &BatchConfig,
    cache: Option<(&PerceptionCache, CacheScope)>,
    result_type: DataType,
) -> (BatchStats, ModalResult<Table>) {
    let (answers, stats) = collector.dispatch_cached(model, batch, cache);
    let result = answers.map_err(ModalError::Engine).and_then(|answers| {
        if let Some(error) = pending_error {
            return Err(ModalError::Engine(error));
        }
        let mut builder = ColumnBuilder::with_capacity(result_type, table.num_rows());
        for answer in answers {
            match answer {
                None => builder.push(Value::Null),
                Some(value) => builder.push(coerce(value, result_type)),
            }
        }
        let mut columns = table.columns().to_vec();
        columns.push(Arc::new(builder.finish()));
        table
            .with_columns(out_schema, columns)
            .map_err(ModalError::Engine)
    });
    (stats, result)
}

/// Apply the VisualQA operator: answer `question` for the image referenced by
/// `image_column` in every row and store the answer in `new_column`.
///
/// The per-row model calls are gathered, deduplicated, and dispatched in
/// batches by the [`crate::batch`] layer; this wrapper uses the
/// environment-default [`BatchConfig`] and discards the call stats.
pub fn apply_visual_qa(
    table: &Table,
    store: &ImageStore,
    model: &dyn PerceptionBackend,
    image_column: &str,
    new_column: &str,
    question: &str,
    result_type: DataType,
) -> ModalResult<Table> {
    apply_visual_qa_with(
        table,
        store,
        model,
        image_column,
        new_column,
        question,
        result_type,
        &BatchConfig::default(),
        None,
    )
    .1
}

/// [`apply_visual_qa`] with an explicit [`BatchConfig`]. The saved-call
/// statistics ride alongside the result (not inside it) so the calls of a
/// dispatch that ultimately failed are still accounted for.
#[allow(clippy::too_many_arguments)]
pub fn apply_visual_qa_with(
    table: &Table,
    store: &ImageStore,
    model: &dyn PerceptionBackend,
    image_column: &str,
    new_column: &str,
    question: &str,
    result_type: DataType,
    batch: &BatchConfig,
    cache: Option<&PerceptionCache>,
) -> (BatchStats, ModalResult<Table>) {
    let mut stats = BatchStats::default();
    let result = visual_qa_inner(
        table,
        store,
        model,
        image_column,
        new_column,
        question,
        result_type,
        batch,
        cache,
        &mut stats,
    );
    (stats, result)
}

#[allow(clippy::too_many_arguments)]
fn visual_qa_inner(
    table: &Table,
    store: &ImageStore,
    model: &dyn PerceptionBackend,
    image_column: &str,
    new_column: &str,
    question: &str,
    result_type: DataType,
    batch: &BatchConfig,
    cache: Option<&PerceptionCache>,
    stats: &mut BatchStats,
) -> ModalResult<Table> {
    let schema = table.schema().clone();
    let idx = schema.resolve(image_column).map_err(ModalError::Engine)?;
    let field_type = schema.field(idx).map(|f| f.data_type);
    if field_type != Some(DataType::Image) {
        return Err(ModalError::InvalidArguments {
            operator: OperatorKind::VisualQa.name().to_string(),
            message: format!(
                "column '{image_column}' has type {} but VisualQA requires an IMAGE column",
                field_type.map(|t| t.prompt_name()).unwrap_or("unknown")
            ),
        });
    }
    // Reserve the output field before any model call (the row-at-a-time path
    // failed on duplicate column names before reading the first row).
    let mut out_schema = schema.clone();
    out_schema
        .push(Field::new(new_column, result_type))
        .map_err(ModalError::Engine)?;

    let (collector, pending_error) =
        gather_image_requests(table, store, idx, image_column, question);
    let (dispatch_stats, result) = dispatch_into_column(
        table,
        out_schema,
        collector,
        pending_error,
        model,
        batch,
        cache.map(|c| (c, CacheScope::VisualQa)),
        result_type,
    );
    *stats = dispatch_stats;
    result
}

/// Gather one image request per non-NULL row of `image_column`, stopping at
/// the first row whose cell cannot be resolved — a missing image or a
/// mistyped cell — so no model call is made for later rows, just like the
/// sequential path. Shared by VisualQA and Image Select.
fn gather_image_requests(
    table: &Table,
    store: &ImageStore,
    idx: usize,
    image_column: &str,
    question: &str,
) -> (PerceptionBatch, Option<EngineError>) {
    let mut collector = PerceptionBatch::with_capacity(table.num_rows());
    for row in table.rows() {
        match row.get(idx) {
            Value::Image(key) => match store.get(&key) {
                Some(image) => collector.push_image(image, question),
                None => {
                    let error = EngineError::execution(format!(
                        "image '{key}' was not found in the image store"
                    ));
                    return (collector, Some(error));
                }
            },
            Value::Null => collector.push_null(),
            other => {
                let error =
                    cell_type_error(row.index(), image_column, &other, "an IMAGE reference");
                return (collector, Some(error));
            }
        }
    }
    (collector, None)
}

/// Apply the TextQA operator: instantiate `question_template` per row (filling
/// `<column>` placeholders from the row) and answer it against the document in
/// `text_column`, storing the answer in `new_column`.
pub fn apply_text_qa(
    table: &Table,
    model: &dyn PerceptionBackend,
    text_column: &str,
    new_column: &str,
    question_template: &str,
    result_type: DataType,
) -> ModalResult<Table> {
    apply_text_qa_with(
        table,
        model,
        text_column,
        new_column,
        question_template,
        result_type,
        &BatchConfig::default(),
        None,
    )
    .1
}

/// [`apply_text_qa`] with an explicit [`BatchConfig`]. Dedup pays off
/// whenever several rows instantiate the same question over the same
/// document (e.g. game reports repeated once per participating team). The
/// saved-call statistics ride alongside the result so failed dispatches
/// still account for their calls.
#[allow(clippy::too_many_arguments)]
pub fn apply_text_qa_with(
    table: &Table,
    model: &dyn PerceptionBackend,
    text_column: &str,
    new_column: &str,
    question_template: &str,
    result_type: DataType,
    batch: &BatchConfig,
    cache: Option<&PerceptionCache>,
) -> (BatchStats, ModalResult<Table>) {
    let mut stats = BatchStats::default();
    let result = text_qa_inner(
        table,
        model,
        text_column,
        new_column,
        question_template,
        result_type,
        batch,
        cache,
        &mut stats,
    );
    (stats, result)
}

#[allow(clippy::too_many_arguments)]
fn text_qa_inner(
    table: &Table,
    model: &dyn PerceptionBackend,
    text_column: &str,
    new_column: &str,
    question_template: &str,
    result_type: DataType,
    batch: &BatchConfig,
    cache: Option<&PerceptionCache>,
    stats: &mut BatchStats,
) -> ModalResult<Table> {
    let schema = table.schema().clone();
    let idx = schema.resolve(text_column).map_err(ModalError::Engine)?;
    let field_type = schema.field(idx).map(|f| f.data_type);
    if field_type != Some(DataType::Text) {
        return Err(ModalError::InvalidArguments {
            operator: OperatorKind::TextQa.name().to_string(),
            message: format!(
                "column '{text_column}' has type {} but TextQA requires a TEXT column",
                field_type.map(|t| t.prompt_name()).unwrap_or("unknown")
            ),
        });
    }
    // Validate that every placeholder in the template resolves to a column.
    for placeholder in template_placeholders(question_template) {
        if schema.resolve(&placeholder).is_err() {
            return Err(ModalError::InvalidArguments {
                operator: OperatorKind::TextQa.name().to_string(),
                message: format!(
                    "the question template references '<{placeholder}>' but the input table has \
                     no such column (available: {:?})",
                    schema.names()
                ),
            });
        }
    }
    let mut out_schema = schema.clone();
    out_schema
        .push(Field::new(new_column, result_type))
        .map_err(ModalError::Engine)?;

    let mut collector = PerceptionBatch::with_capacity(table.num_rows());
    let mut pending_error = None;
    for row in table.rows() {
        // Borrow the document for the dedup probe; only genuinely new
        // (document, question) pairs are copied into a request.
        let document = match row.get(idx) {
            Value::Text(text) => text,
            Value::Null => {
                collector.push_null();
                continue;
            }
            other => {
                pending_error = Some(cell_type_error(
                    row.index(),
                    text_column,
                    &other,
                    "a TEXT document",
                ));
                break;
            }
        };
        match instantiate_template(question_template, &schema, &row) {
            Ok(question) => collector.push_document(&document, &question),
            Err(error) => {
                pending_error = Some(error);
                break;
            }
        }
    }
    let (dispatch_stats, result) = dispatch_into_column(
        table,
        out_schema,
        collector,
        pending_error,
        model,
        batch,
        cache.map(|c| (c, CacheScope::TextQa)),
        result_type,
    );
    *stats = dispatch_stats;
    result
}

/// Apply the Image Select operator: keep only rows whose image matches the
/// description.
pub fn apply_image_select(
    table: &Table,
    store: &ImageStore,
    model: &dyn PerceptionBackend,
    image_column: &str,
    description: &str,
) -> ModalResult<Table> {
    apply_image_select_with(
        table,
        store,
        model,
        image_column,
        description,
        &BatchConfig::default(),
        None,
    )
    .1
}

/// [`apply_image_select`] with an explicit [`BatchConfig`]. Because the
/// description is constant across rows, dedup collapses the calls to one per
/// *distinct* image regardless of how often an image appears in the input.
/// The saved-call statistics ride alongside the result so failed dispatches
/// still account for their calls.
#[allow(clippy::too_many_arguments)]
pub fn apply_image_select_with(
    table: &Table,
    store: &ImageStore,
    model: &dyn PerceptionBackend,
    image_column: &str,
    description: &str,
    batch: &BatchConfig,
    cache: Option<&PerceptionCache>,
) -> (BatchStats, ModalResult<Table>) {
    let mut stats = BatchStats::default();
    let result = image_select_inner(
        table,
        store,
        model,
        image_column,
        description,
        batch,
        cache,
        &mut stats,
    );
    (stats, result)
}

#[allow(clippy::too_many_arguments)]
fn image_select_inner(
    table: &Table,
    store: &ImageStore,
    model: &dyn PerceptionBackend,
    image_column: &str,
    description: &str,
    batch: &BatchConfig,
    cache: Option<&PerceptionCache>,
    stats: &mut BatchStats,
) -> ModalResult<Table> {
    let schema = table.schema().clone();
    let idx = schema.resolve(image_column).map_err(ModalError::Engine)?;
    if schema.field(idx).map(|f| f.data_type) != Some(DataType::Image) {
        return Err(ModalError::InvalidArguments {
            operator: OperatorKind::ImageSelect.name().to_string(),
            message: format!("column '{image_column}' is not an IMAGE column"),
        });
    }
    let (collector, pending_error) =
        gather_image_requests(table, store, idx, image_column, description);
    let (answers, dispatch_stats) =
        collector.dispatch_cached(model, batch, cache.map(|c| (c, CacheScope::ImageSelect)));
    *stats = dispatch_stats;
    let answers = answers.map_err(ModalError::Engine)?;
    if let Some(error) = pending_error {
        return Err(ModalError::Engine(error));
    }
    let mut indices = Vec::new();
    for (row, answer) in answers.into_iter().enumerate() {
        match answer {
            // NULL images never match (the row-at-a-time path returned false).
            None => {}
            Some(value) if truthy_answer(&value) => indices.push(row),
            Some(_) => {}
        }
    }
    if indices.len() == table.num_rows() {
        return Ok(table.shared_copy());
    }
    Ok(table.take(&indices))
}

/// Interpret a perception answer as a selection decision: a boolean, or a
/// yes/true string (what an LLM-backed selection backend produces).
fn truthy_answer(value: &Value) -> bool {
    match value {
        Value::Bool(b) => *b,
        Value::Str(s) => matches!(
            s.trim().trim_end_matches('.').to_lowercase().as_str(),
            "yes" | "true"
        ),
        _ => false,
    }
}

/// Apply the Python-UDF substitute: compile the description and compute the
/// new column.
pub fn apply_python_udf(
    table: &Table,
    codegen: &TransformCodegen,
    description: &str,
    new_column: &str,
) -> ModalResult<Table> {
    apply_python_udf_with(table, codegen, description, new_column).1
}

/// [`apply_python_udf`] returning call statistics. The operator's only
/// model-backed path is the description → code compilation — one call per
/// invocation regardless of row count (the compiled program evaluates
/// vectorized, without further model calls), which is recorded on the same
/// stats channel as the batched perception operators. `rows` stays 0: the
/// compile is invocation-granular, not per-row, so it must not skew per-row
/// dedup ratios — and the compile call is counted even when it fails.
pub fn apply_python_udf_with(
    table: &Table,
    codegen: &TransformCodegen,
    description: &str,
    new_column: &str,
) -> (BatchStats, ModalResult<Table>) {
    apply_python_udf_cached(table, codegen, description, new_column, None)
}

/// The version string namespacing persisted transform compiles. The codegen
/// is deterministic and model-independent in this reproduction, so the
/// identity only needs to change when the compiler's behaviour does.
const TRANSFORM_CODEGEN_IDENTITY: &str = "codegen:transform:v1";

/// [`apply_python_udf_with`] probing the durable tier of `cache` for the
/// compiled program. The codegen has no in-memory cache tier (compiling is a
/// deterministic in-process call — see
/// [`PerceptionCache::transform_disk_get`]), so without an attached disk
/// store this is byte-identical to the uncached path, stats included. With
/// one, the compile counts as a memory miss plus a disk hit or miss, keeping
/// every [`BatchStats`] tier invariant intact: on a disk hit the call never
/// dispatches ([`BatchStats::dispatched_requests`] stays 0 — a restarted
/// session replays the operator without re-issuing the simulated codegen
/// call), and a fresh compile is written through round-trip-validated.
pub fn apply_python_udf_cached(
    table: &Table,
    codegen: &TransformCodegen,
    description: &str,
    new_column: &str,
    cache: Option<&PerceptionCache>,
) -> (BatchStats, ModalResult<Table>) {
    let base = BatchStats {
        rows: 0,
        null_rows: 0,
        unique_requests: 1,
        batches: 1,
        saved_calls: 0,
        ..BatchStats::default()
    };
    let schema = table.schema();
    match cache.filter(|c| c.has_disk()) {
        None => {
            let result = codegen
                .compile(description, schema)
                .and_then(|program| program.apply(table, new_column));
            (base, result)
        }
        Some(cache) => {
            if let Some(program) =
                cache.transform_disk_get(TRANSFORM_CODEGEN_IDENTITY, description, schema)
            {
                let stats = BatchStats {
                    cache_misses: 1,
                    disk_hits: 1,
                    ..base
                };
                return (stats, program.apply(table, new_column));
            }
            let compiled = codegen.compile(description, schema);
            let disk_writes = match &compiled {
                Ok(program) => usize::from(cache.transform_disk_put(
                    TRANSFORM_CODEGEN_IDENTITY,
                    description,
                    schema,
                    program,
                )),
                // Failed compiles are never cached, mirroring the
                // errors-are-never-cached rule of the perception tiers.
                Err(_) => 0,
            };
            let stats = BatchStats {
                cache_misses: 1,
                disk_misses: 1,
                disk_writes,
                ..base
            };
            let result = compiled.and_then(|program| program.apply(table, new_column));
            (stats, result)
        }
    }
}

/// Apply the Plot operator to a result table.
pub fn apply_plot(table: &Table, kind: &str, x_column: &str, y_column: &str) -> ModalResult<Plot> {
    let kind = PlotKind::from_name(kind)?;
    Plot::from_table(table, PlotSpec::new(kind, x_column, y_column))
}

/// Whether a `<...>` span can be a column placeholder: non-empty and free of
/// whitespace and nested `<` — column names (including qualified ones like
/// `teams.name`, or names with hyphens) never contain either, while the
/// literal-`<` spans of comparison text (`"score < 5 for <name>"` yields the
/// span `" 5 for <name"`) always do. Unknown placeholder *names* still fail
/// loudly against the schema in the operator layer.
fn is_placeholder_span(inner: &str) -> bool {
    !inner.is_empty() && inner.chars().all(|c| !c.is_whitespace() && c != '<')
}

/// Placeholders (`<name>`) appearing in a question template.
///
/// Only `<...>` spans that look like a column name are placeholders (see
/// `is_placeholder_span`); a literal `<` (e.g. in
/// `"is score < 5 for <name>?"`) is skipped instead of swallowing everything
/// up to the next `>`.
pub fn template_placeholders(template: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = template;
    while let Some(start) = rest.find('<') {
        let after = &rest[start + 1..];
        match after.find('>') {
            Some(end) if is_placeholder_span(&after[..end]) => {
                let inner = &after[..end];
                if !out.contains(&inner.to_string()) {
                    out.push(inner.to_string());
                }
                rest = &after[end + 1..];
            }
            // Not a placeholder: step past the '<' only, so a later
            // well-formed `<name>` is still recognized.
            Some(_) => rest = after,
            None => break,
        }
    }
    out
}

fn instantiate_template(
    template: &str,
    schema: &caesura_engine::Schema,
    row: &caesura_engine::RowRef<'_>,
) -> Result<String, caesura_engine::EngineError> {
    let mut question = template.to_string();
    for placeholder in template_placeholders(template) {
        let idx = schema.resolve(&placeholder)?;
        question = question.replace(&format!("<{placeholder}>"), &row.get(idx).to_string());
    }
    Ok(question)
}

/// Coerce a model answer into the declared result type.
///
/// An answer that cannot be parsed into the target type becomes
/// `Value::Null` (the model "could not extract" the value) instead of being
/// kept as a raw string: keeping it would produce a mixed-type column whose
/// declared [`DataType`] lies, breaking downstream typed kernels.
fn coerce(value: Value, target: DataType) -> Value {
    match (target, &value) {
        (DataType::Int, Value::Str(s)) => s
            .trim()
            .parse::<i64>()
            .map(Value::Int)
            .unwrap_or(Value::Null),
        // Whole floats within i64 range convert exactly; everything else
        // (fractions, NaN/inf, out-of-range magnitudes that would saturate)
        // becomes NULL.
        (DataType::Int, Value::Float(f))
            if f.fract() == 0.0
                && *f >= -9_223_372_036_854_775_808.0
                && *f < 9_223_372_036_854_775_808.0 =>
        {
            Value::Int(*f as i64)
        }
        (DataType::Int, Value::Float(_)) => Value::Null,
        (DataType::Float, Value::Int(i)) => Value::Float(*i as f64),
        (DataType::Float, Value::Str(s)) => s
            .trim()
            .parse::<f64>()
            .map(Value::Float)
            .unwrap_or(Value::Null),
        // Same normalization as `truthy_answer`, so an LLM answering "Yes."
        // reads identically for a bool-typed QA column and for Image Select.
        (DataType::Bool, Value::Str(s)) => {
            match s.trim().trim_end_matches('.').to_lowercase().as_str() {
                "yes" | "true" => Value::Bool(true),
                "no" | "false" => Value::Bool(false),
                _ => Value::Null,
            }
        }
        (DataType::Str, Value::Int(i)) => Value::str(i.to_string()),
        (DataType::Str, Value::Float(f)) => Value::str(f.to_string()),
        (DataType::Str, Value::Bool(b)) => Value::str(if *b { "yes" } else { "no" }),
        // Final guard: never let a value of the wrong type through (it would
        // flip the column to the mixed representation behind the declared
        // type's back). NULLs and already-matching values pass.
        _ => {
            if value.is_null() || value.data_type() == target {
                value
            } else {
                Value::Null
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageObject;
    use crate::image_select::ImageSelectModel;
    use crate::text_qa::TextQaModel;
    use crate::visual_qa::VisualQaModel;
    use caesura_engine::{Schema, TableBuilder};

    fn image_store() -> ImageStore {
        let mut store = ImageStore::new();
        store.insert(
            ImageObject::new("img/1.png")
                .with_object("Madonna", 1)
                .with_object("Child", 1)
                .with_object("sword", 2),
        );
        store.insert(ImageObject::new("img/2.png").with_object("iris", 12));
        store
    }

    fn joined_table() -> Table {
        let schema = Schema::from_pairs(&[
            ("title", DataType::Str),
            ("img_path", DataType::Str),
            ("image", DataType::Image),
        ]);
        let mut b = TableBuilder::new("joined_table", schema);
        b.push_row(vec![
            Value::str("Madonna"),
            Value::str("img/1.png"),
            Value::image("img/1.png"),
        ])
        .unwrap();
        b.push_row(vec![
            Value::str("Irises"),
            Value::str("img/2.png"),
            Value::image("img/2.png"),
        ])
        .unwrap();
        b.build()
    }

    fn reports_table() -> Table {
        let schema = Schema::from_pairs(&[("name", DataType::Str), ("report", DataType::Text)]);
        let mut b = TableBuilder::new("final_joined_table", schema);
        let report = "The Spurs defeated the Heat 110-102. The Heat scored 102 points \
                      while the Spurs scored 110 points.";
        b.push_row(vec![Value::str("Heat"), Value::text(report)])
            .unwrap();
        b.push_row(vec![Value::str("Spurs"), Value::text(report)])
            .unwrap();
        b.build()
    }

    #[test]
    fn visual_qa_adds_the_num_swords_column() {
        let out = apply_visual_qa(
            &joined_table(),
            &image_store(),
            &VisualQaModel::new(),
            "image",
            "num_swords",
            "How many swords are depicted?",
            DataType::Int,
        )
        .unwrap();
        assert_eq!(out.value(0, "num_swords").unwrap(), Value::Int(2));
        assert_eq!(out.value(1, "num_swords").unwrap(), Value::Int(0));
    }

    #[test]
    fn visual_qa_rejects_non_image_columns() {
        let err = apply_visual_qa(
            &joined_table(),
            &image_store(),
            &VisualQaModel::new(),
            "title",
            "x",
            "How many swords are depicted?",
            DataType::Int,
        )
        .unwrap_err();
        assert!(err.to_string().contains("IMAGE column"));
    }

    #[test]
    fn text_qa_instantiates_the_template_per_row() {
        let out = apply_text_qa(
            &reports_table(),
            &TextQaModel::new(),
            "report",
            "points_scored",
            "How many points did <name> score?",
            DataType::Int,
        )
        .unwrap();
        assert_eq!(out.value(0, "points_scored").unwrap(), Value::Int(102));
        assert_eq!(out.value(1, "points_scored").unwrap(), Value::Int(110));
    }

    #[test]
    fn text_qa_rejects_unknown_placeholder_columns() {
        let err = apply_text_qa(
            &reports_table(),
            &TextQaModel::new(),
            "report",
            "points",
            "How many points did <team_name> score?",
            DataType::Int,
        )
        .unwrap_err();
        assert!(err.to_string().contains("team_name"));
    }

    #[test]
    fn image_select_filters_rows() {
        let out = apply_image_select(
            &joined_table(),
            &image_store(),
            &ImageSelectModel::new(),
            "image",
            "paintings depicting Madonna and Child",
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "title").unwrap(), Value::str("Madonna"));
    }

    #[test]
    fn python_udf_and_plot_round_trip() {
        let schema =
            Schema::from_pairs(&[("inception", DataType::Str), ("num_swords", DataType::Int)]);
        let mut b = TableBuilder::new("t", schema);
        b.push_values::<_, Value>(vec![Value::str("1480-05-12"), Value::Int(5)])
            .unwrap();
        b.push_values::<_, Value>(vec![Value::str("1889-01-05"), Value::Int(2)])
            .unwrap();
        let table = b.build();
        let with_century = apply_python_udf(
            &table,
            &TransformCodegen::new(),
            "Extract the century from the dates in the 'inception' column",
            "century",
        )
        .unwrap();
        let plot = apply_plot(&with_century, "bar", "century", "num_swords").unwrap();
        assert_eq!(plot.points.len(), 2);
        assert_eq!(plot.points[0].label, "15");
    }

    #[test]
    fn operator_names_round_trip_and_catalog_renders() {
        for op in OperatorKind::all() {
            assert_eq!(OperatorKind::from_name(op.name()), Some(*op));
        }
        assert_eq!(
            OperatorKind::from_name("Visual Question Answering"),
            Some(OperatorKind::VisualQa)
        );
        assert_eq!(OperatorKind::from_name("nonsense"), None);
        let catalog = OperatorKind::prompt_catalog();
        assert!(catalog.contains("Image Select"));
        assert!(catalog.contains("IMAGE"));
    }

    #[test]
    fn dtype_parsing_and_coercion() {
        assert_eq!(parse_result_dtype("int"), DataType::Int);
        assert_eq!(parse_result_dtype("string"), DataType::Str);
        assert_eq!(coerce(Value::str("42"), DataType::Int), Value::Int(42));
        assert_eq!(coerce(Value::str("yes"), DataType::Bool), Value::Bool(true));
        assert_eq!(coerce(Value::Int(3), DataType::Str), Value::str("3"));
    }

    #[test]
    fn unparseable_answers_coerce_to_null_not_mixed_columns() {
        // A raw string that fails to parse must become NULL, not stay a Str
        // value inside a column whose declared type says Int/Float/Bool.
        assert_eq!(coerce(Value::str("unknown"), DataType::Int), Value::Null);
        assert_eq!(coerce(Value::str("n/a"), DataType::Float), Value::Null);
        assert_eq!(coerce(Value::str("maybe"), DataType::Bool), Value::Null);
        // The previously missing Float arms.
        assert_eq!(coerce(Value::Float(4.0), DataType::Int), Value::Int(4));
        assert_eq!(coerce(Value::Float(4.5), DataType::Int), Value::Null);
        assert_eq!(coerce(Value::Float(2.5), DataType::Str), Value::str("2.5"));
        // Whole floats outside i64 range (and non-finite values) must become
        // NULL, not saturate to i64::MAX/MIN.
        assert_eq!(coerce(Value::Float(1e19), DataType::Int), Value::Null);
        assert_eq!(coerce(Value::Float(-1e19), DataType::Int), Value::Null);
        assert_eq!(
            coerce(Value::Float(f64::INFINITY), DataType::Int),
            Value::Null
        );
        assert_eq!(coerce(Value::Float(f64::NAN), DataType::Int), Value::Null);
        // A mismatched non-Str value never leaks through the final guard.
        assert_eq!(coerce(Value::Int(1), DataType::Bool), Value::Null);
    }

    #[test]
    fn unparseable_answers_produce_a_typed_null_column() {
        // End to end: a Str answer ("yes"/"no") under a declared Int result
        // type yields NULLs and a genuinely Int-typed column.
        let out = apply_visual_qa(
            &joined_table(),
            &image_store(),
            &VisualQaModel::new(),
            "image",
            "madonna_depicted",
            "Is Madonna depicted?",
            DataType::Int,
        )
        .unwrap();
        assert_eq!(out.value(0, "madonna_depicted").unwrap(), Value::Null);
        assert_eq!(out.value(1, "madonna_depicted").unwrap(), Value::Null);
    }

    #[test]
    fn template_placeholder_extraction() {
        assert_eq!(
            template_placeholders("How many points did <name> score in <game_id>?"),
            vec!["name", "game_id"]
        );
        assert!(template_placeholders("no placeholders").is_empty());
    }

    #[test]
    fn literal_angle_brackets_are_not_placeholders() {
        // Regression: a literal '<' used to swallow everything up to the next
        // '>' ("is score < 5 for <name>?" yielded the bogus placeholder
        // " 5 for <name" and rejected a valid template).
        assert_eq!(
            template_placeholders("is score < 5 for <name>?"),
            vec!["name"]
        );
        assert_eq!(
            template_placeholders("is 3 < 5 and 7 > 5?"),
            Vec::<String>::new()
        );
        assert_eq!(
            template_placeholders("a <b> c <not a column> d <col_2>"),
            vec!["b", "col_2"]
        );
        assert!(template_placeholders("dangling < bracket").is_empty());
    }

    #[test]
    fn literal_comparison_templates_instantiate() {
        let out = apply_text_qa(
            &reports_table(),
            &TextQaModel::new(),
            "report",
            "points",
            "How many points did <name> score?",
            DataType::Int,
        );
        assert!(out.is_ok());
        // A template with a literal '<' no longer trips placeholder
        // validation (the bogus span is not looked up as a column).
        let err = apply_text_qa(
            &reports_table(),
            &TextQaModel::new(),
            "report",
            "flag",
            "is score < 5 for <unknown_column>?",
            DataType::Str,
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown_column"));
        assert!(!err.to_string().contains("5 for"));
    }

    #[test]
    fn mistyped_cells_error_with_the_row_index() {
        // A TEXT column that (via the dynamic-typing escape hatch) holds a
        // non-text cell must produce a typed execution error naming the row,
        // not be silently stringified into a model prompt.
        let schema = Schema::from_pairs(&[("name", DataType::Str), ("report", DataType::Text)]);
        let mut b = TableBuilder::new("t", schema);
        b.push_row(vec![
            Value::str("Heat"),
            Value::text("The Spurs defeated the Heat 110-102."),
        ])
        .unwrap();
        b.push_row(vec![Value::str("Spurs"), Value::Int(7)])
            .unwrap();
        let err = apply_text_qa(
            &b.build(),
            &TextQaModel::new(),
            "report",
            "won",
            "Did <name> win?",
            DataType::Str,
        )
        .unwrap_err();
        let message = err.to_string();
        assert!(message.contains("row 1"), "got: {message}");
        assert!(message.contains("report"), "got: {message}");

        let schema = Schema::from_pairs(&[("image", DataType::Image)]);
        let mut b = TableBuilder::new("t", schema);
        b.push_row(vec![Value::image("img/1.png")]).unwrap();
        b.push_row(vec![Value::str("not-an-image")]).unwrap();
        let images = b.build();
        let err = apply_visual_qa(
            &images,
            &image_store(),
            &VisualQaModel::new(),
            "image",
            "n",
            "How many swords are depicted?",
            DataType::Int,
        )
        .unwrap_err();
        let message = err.to_string();
        assert!(message.contains("row 1"), "got: {message}");

        let err = apply_image_select(
            &images,
            &image_store(),
            &ImageSelectModel::new(),
            "image",
            "paintings depicting swords",
        )
        .unwrap_err();
        assert!(err.to_string().contains("row 1"), "got: {err}");
    }

    #[test]
    fn null_inputs_stay_null_without_model_calls() {
        let schema = Schema::from_pairs(&[("name", DataType::Str), ("report", DataType::Text)]);
        let mut b = TableBuilder::new("t", schema);
        b.push_row(vec![Value::str("Heat"), Value::Null]).unwrap();
        b.push_row(vec![
            Value::str("Spurs"),
            Value::text("The Spurs defeated the Heat 110-102."),
        ])
        .unwrap();
        let (stats, out) = apply_text_qa_with(
            &b.build(),
            &TextQaModel::new(),
            "report",
            "won",
            "Did <name> win?",
            DataType::Str,
            &BatchConfig::new(8),
            None,
        );
        let out = out.unwrap();
        assert_eq!(out.value(0, "won").unwrap(), Value::Null);
        assert_eq!(out.value(1, "won").unwrap(), Value::str("yes"));
        assert_eq!(stats.rows, 2);
        assert_eq!(stats.null_rows, 1);
        assert_eq!(stats.unique_requests, 1);
    }

    #[test]
    fn duplicate_rows_are_deduplicated_in_stats() {
        // Two rows share the same report; the constant question dedups to
        // one model call.
        let (stats, out) = apply_text_qa_with(
            &reports_table(),
            &TextQaModel::new(),
            "report",
            "winner",
            "Who won the game?",
            DataType::Str,
            &BatchConfig::new(8),
            None,
        );
        let out = out.unwrap();
        assert_eq!(stats.rows, 2);
        assert_eq!(stats.unique_requests, 1);
        assert_eq!(stats.saved_calls, 1);
        assert_eq!(stats.batches, 1);
        assert_eq!(
            out.value(0, "winner").unwrap(),
            out.value(1, "winner").unwrap()
        );
    }
}
