//! Batched, deduplicated dispatch of perception-operator model calls.
//!
//! CAESURA's cost model is dominated by LLM round trips: the perception
//! operators (VisualQA, TextQA, Image Select) conceptually issue one model
//! call per row, which the paper flags as the scaling bottleneck of
//! multi-modal plans. This module replaces that row-at-a-time call pattern
//! with a **gather → dedup → batch → scatter** pipeline:
//!
//! 1. **Gather** — the operator walks its input rows *in row order* and
//!    pushes one [`PerceptionRequest`] per non-NULL row into a
//!    [`PerceptionBatch`] collector (NULL inputs are recorded as NULL slots
//!    and never reach the model).
//! 2. **Dedup** — requests with an identical `(input, question)` pair share
//!    one slot: Rotowire-style tables repeat documents and entities heavily
//!    (every game report appears once per participating team), so duplicate
//!    rows cost zero extra model calls. The dedup key is exactly the pair the
//!    simulated models derive their (deterministic) noise from, so dedup can
//!    never change an answer.
//! 3. **Cache probe** (optional) — when the session attaches a
//!    [`PerceptionCache`], every unique request is probed against it first;
//!    hits resolve immediately and never reach the backend, so questions
//!    repeated across plan steps or across queries cost zero additional
//!    model calls (see [`PerceptionBatch::dispatch_cached`] and the
//!    [`crate::cache`] module docs for why this cannot change an answer).
//! 4. **Batch + dispatch** — the remaining unique requests are split into chunks of
//!    [`BatchConfig::batch_size`] and handed to a [`PerceptionBackend`] batch
//!    by batch, fanned out across the existing morsel worker pool
//!    ([`caesura_engine::parallel`], honouring the pinned
//!    [`ExecConfig::threads`](caesura_engine::ExecConfig) of the surrounding
//!    query). A backend receives whole batches, so an LLM-backed
//!    implementation can serve each chunk with a single `complete_batch`
//!    round trip.
//! 5. **Scatter** — answers are mapped back onto the rows in row order. The
//!    output (values, NULL placeholders, and the first error in row order)
//!    is byte-identical to what the sequential row-at-a-time path produces;
//!    `tests/property_batch.rs` asserts this for every operator across batch
//!    sizes and thread counts.
//!
//! ## Knobs
//!
//! * [`BatchConfig::batch_size`] — how many unique requests one backend
//!   dispatch carries. Defaults to the `CAESURA_LLM_BATCH` environment
//!   variable, or [`BatchConfig::DEFAULT_BATCH_SIZE`] when unset.
//!   `batch_size = 1` is the degenerate configuration: one dispatch per
//!   unique request (still deduplicated), which CI exercises alongside the
//!   default, mirroring the `CAESURA_THREADS=1` job.
//! * Worker threads come from the ambient
//!   [`parallel::exec_config()`](caesura_engine::parallel::exec_config), so
//!   the session/executor `ExecConfig` knob pins perception dispatch
//!   parallelism together with the relational operators.
//!
//! ## Saved-call accounting
//!
//! Every dispatch returns [`BatchStats`]: input rows, NULL rows, unique
//! requests actually dispatched, number of batches, and `saved_calls` — the
//! model calls the dedup avoided versus the row-at-a-time path
//! (`rows - null_rows - unique_requests`). The executor accumulates these
//! per query and the session surfaces them in the execution trace; the
//! `llm_calls` bench binary records them in `BENCH_llm_calls.json`.

use crate::cache::{CacheScope, PerceptionCache};
use crate::error::ModalResult;
use crate::image::ImageObject;
use caesura_engine::{parallel, EngineError, EngineResult, ExecConfig, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Configuration of the perception-call batching layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Number of unique requests per backend dispatch (≥ 1).
    pub batch_size: usize,
}

impl BatchConfig {
    /// Default batch size when `CAESURA_LLM_BATCH` is unset: large enough to
    /// amortize a round trip, small enough to keep several workers busy.
    pub const DEFAULT_BATCH_SIZE: usize = 32;

    /// A configuration with an explicit batch size (clamped to ≥ 1).
    pub fn new(batch_size: usize) -> Self {
        BatchConfig {
            batch_size: batch_size.max(1),
        }
    }

    /// The configuration described by the environment: `CAESURA_LLM_BATCH`
    /// ([`Self::DEFAULT_BATCH_SIZE`] when unset or unparseable).
    pub fn from_env() -> Self {
        let batch_size = std::env::var("CAESURA_LLM_BATCH")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&b| b > 0)
            .unwrap_or(Self::DEFAULT_BATCH_SIZE);
        BatchConfig::new(batch_size)
    }
}

impl Default for BatchConfig {
    /// The environment-described configuration, read once per process (the
    /// same caching pattern as `parallel::exec_config`); use
    /// [`BatchConfig::from_env`] directly to re-read the environment.
    fn default() -> Self {
        static DEFAULT: OnceLock<BatchConfig> = OnceLock::new();
        *DEFAULT.get_or_init(BatchConfig::from_env)
    }
}

/// Call accounting of one (or several, via [`BatchStats::absorb`]) batched
/// perception dispatches.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BatchStats {
    /// Input rows the operator walked (0 for invocation-granular calls such
    /// as the transform codegen compile, which is not a per-row operator).
    pub rows: usize,
    /// Rows whose input cell was NULL (answered NULL without a model call).
    pub null_rows: usize,
    /// Unique `(input, question)` requests dispatched to the backend.
    pub unique_requests: usize,
    /// Backend dispatches actually performed:
    /// `ceil(unique_requests / batch_size)` on success. On failure the
    /// short-circuit makes this a best-effort count — under parallel
    /// dispatch it can be anything from 1 to the full count depending on
    /// how many batches workers claimed before observing the cancellation
    /// (answers and errors stay deterministic; only this failure-path
    /// dispatch count varies).
    pub batches: usize,
    /// Model calls avoided by dedup versus the row-at-a-time path:
    /// `rows - null_rows - unique_requests`.
    pub saved_calls: usize,
    /// Unique requests answered by the session's perception cache without
    /// reaching the backend (0 when no cache is attached). The backend
    /// actually received `unique_requests - cache_hits` requests.
    pub cache_hits: usize,
    /// Unique requests probed against a cache and not found (0 when no cache
    /// is attached; with a cache, `cache_hits + cache_misses ==
    /// unique_requests`).
    pub cache_misses: usize,
    /// Cache entries evicted while storing this dispatch's answers (or while
    /// warming the memory tier from disk). Under parallel dispatch the exact
    /// count depends on worker interleaving (answers never do).
    pub cache_evictions: usize,
    /// Memory-tier misses answered by the cache's durable disk tier without
    /// reaching the backend (0 unless a disk tier is attached). A disk hit is
    /// also counted in `cache_misses` — the memory tier did miss.
    pub disk_hits: usize,
    /// Unique requests that missed both tiers (true cold misses; 0 unless a
    /// disk tier is attached, in which case `disk_hits + disk_misses ==
    /// cache_misses`).
    pub disk_misses: usize,
    /// Successful answers written through to the disk tier.
    pub disk_writes: usize,
}

impl BatchStats {
    /// Accumulate another dispatch's stats into this one.
    pub fn absorb(&mut self, other: &BatchStats) {
        self.rows += other.rows;
        self.null_rows += other.null_rows;
        self.unique_requests += other.unique_requests;
        self.batches += other.batches;
        self.saved_calls += other.saved_calls;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.disk_hits += other.disk_hits;
        self.disk_misses += other.disk_misses;
        self.disk_writes += other.disk_writes;
    }

    /// The stats accumulated since `earlier` (field-wise difference; both
    /// must come from the same monotonically growing accumulator).
    pub fn since(&self, earlier: &BatchStats) -> BatchStats {
        BatchStats {
            rows: self.rows - earlier.rows,
            null_rows: self.null_rows - earlier.null_rows,
            unique_requests: self.unique_requests - earlier.unique_requests,
            batches: self.batches - earlier.batches,
            saved_calls: self.saved_calls - earlier.saved_calls,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            cache_evictions: self.cache_evictions - earlier.cache_evictions,
            disk_hits: self.disk_hits - earlier.disk_hits,
            disk_misses: self.disk_misses - earlier.disk_misses,
            disk_writes: self.disk_writes - earlier.disk_writes,
        }
    }

    /// Requests that actually reached the backend: unique requests minus the
    /// hits of both cache tiers (equal to `unique_requests` when no cache is
    /// attached).
    pub fn dispatched_requests(&self) -> usize {
        self.unique_requests - self.cache_hits - self.disk_hits
    }

    /// Fraction of cache probes answered by either tier (memory or disk),
    /// in `[0, 1]`; `0.0` when nothing was probed.
    pub fn hit_rate(&self) -> f64 {
        let probes = self.cache_hits + self.cache_misses;
        if probes == 0 {
            0.0
        } else {
            (self.cache_hits + self.disk_hits) as f64 / probes as f64
        }
    }

    /// Render the stats for traces and observations.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "{} row(s) -> {} unique model call(s) in {} batch(es) ({} saved by dedup, {} NULL row(s))",
            self.rows,
            self.dispatched_requests(),
            self.batches,
            self.saved_calls,
            self.null_rows
        );
        if self.cache_hits > 0 || self.cache_misses > 0 {
            out.push_str(&format!(
                "; cache: {} hit(s), {} miss(es), {} eviction(s)",
                self.cache_hits, self.cache_misses, self.cache_evictions
            ));
        }
        if self.disk_hits > 0 || self.disk_misses > 0 || self.disk_writes > 0 {
            out.push_str(&format!(
                "; disk: {} hit(s), {} miss(es), {} write(s)",
                self.disk_hits, self.disk_misses, self.disk_writes
            ));
        }
        out
    }
}

/// The per-row input a perception request is asked about.
#[derive(Debug, Clone, PartialEq)]
pub enum PerceptionInput {
    /// A full text document (TextQA). `Arc`-shared with the source column
    /// and the dedup index, so large documents are never copied.
    Document(Arc<str>),
    /// An annotated image (VisualQA / Image Select).
    Image(ImageObject),
}

impl PerceptionInput {
    /// The dedup/cache identity of this input: the document text, or the
    /// image key (annotations are immutable per key within a store). This is
    /// the input half of the `(input, question)` pair both the dedup index
    /// and the [`PerceptionCache`] key on.
    pub fn cache_key(&self) -> &str {
        match self {
            PerceptionInput::Document(document) => document,
            PerceptionInput::Image(image) => &image.key,
        }
    }

    /// [`Self::cache_key`] as a shared `Arc<str>`: documents bump the
    /// existing reference count, image keys are copied (they are short).
    pub fn shared_key(&self) -> Arc<str> {
        match self {
            PerceptionInput::Document(document) => Arc::clone(document),
            PerceptionInput::Image(image) => Arc::from(image.key.as_str()),
        }
    }
}

/// One unique `(input, question)` pair to be answered by a backend.
#[derive(Debug, Clone, PartialEq)]
pub struct PerceptionRequest {
    /// The document or image the question is about.
    pub input: PerceptionInput,
    /// The (already instantiated) question or description.
    pub question: String,
}

/// A model that answers perception requests batch by batch.
///
/// The simulated models ([`TextQaModel`](crate::TextQaModel),
/// [`VisualQaModel`](crate::VisualQaModel),
/// [`ImageSelectModel`](crate::ImageSelectModel)) answer each request locally;
/// an LLM-backed implementation (see `caesura_llm`'s `PerceptionLlm`) renders
/// the whole batch into conversations and serves it with one
/// `complete_batch` round trip. Implementations must return exactly one
/// result per request, in request order, and must answer a given
/// `(input, question)` pair deterministically — the dedup layer reuses one
/// answer for every duplicate row.
pub trait PerceptionBackend: Sync {
    /// Answer every request of one batch, in order.
    fn answer_batch(&self, requests: &[PerceptionRequest]) -> Vec<ModalResult<Value>>;

    /// A stable version string identifying this backend's *answer function*:
    /// two backends share an identity exactly when they are guaranteed to
    /// answer every `(input, question)` pair identically.
    ///
    /// The durable cache tier namespaces its keys with this string, so a
    /// store written under one model configuration can never answer for
    /// another — implementations must fold in anything that changes answers
    /// (model name, noise seed/rate, prompt format version). The default is
    /// the concrete type name, which is correct for stateless deterministic
    /// backends and conservatively safe otherwise (renaming a type only
    /// costs a cold start).
    fn identity(&self) -> String {
        std::any::type_name_of_val(self).to_string()
    }
}

/// Per-row slot recorded during the gather phase.
#[derive(Debug, Clone, Copy)]
enum Slot {
    /// The row's input cell was NULL; no request is made.
    Null,
    /// The row's answer lives at this index of the unique-request vector.
    Unique(usize),
}

/// The request collector: gathers per-row requests, dedups them, dispatches
/// the unique ones in batches, and scatters answers back in row order.
#[derive(Debug, Default)]
pub struct PerceptionBatch {
    slots: Vec<Slot>,
    unique: Vec<PerceptionRequest>,
    /// Dedup index per modality (`[documents, images]` — separate keyspaces,
    /// so a document whose text equals an image key can never share that
    /// image's answer): input key → question → unique index. Nested so
    /// probes borrow `&str` (no per-row copy of large documents), and the
    /// `Arc<str>` keys share the document storage with the requests.
    index: [HashMap<Arc<str>, HashMap<String, usize>>; 2],
}

impl PerceptionBatch {
    /// An empty collector.
    pub fn new() -> Self {
        PerceptionBatch::default()
    }

    /// A collector with a row-capacity hint.
    pub fn with_capacity(rows: usize) -> Self {
        PerceptionBatch {
            slots: Vec::with_capacity(rows),
            unique: Vec::new(),
            index: [HashMap::new(), HashMap::new()],
        }
    }

    /// Record a row whose input cell is NULL (answered NULL, no model call).
    pub fn push_null(&mut self) {
        self.slots.push(Slot::Null);
    }

    /// Record one row's question about a text document, deduplicating
    /// against every previously pushed row. The `Arc`-shared document is
    /// never copied — new `(document, question)` pairs only bump its
    /// reference count.
    pub fn push_document(&mut self, document: &Arc<str>, question: &str) {
        self.push_inner(
            0,
            document,
            question,
            || Arc::clone(document),
            || PerceptionInput::Document(Arc::clone(document)),
        );
    }

    /// Record one row's question about an image, deduplicating by image key
    /// (annotations are immutable per key within a store). The image is only
    /// cloned for genuinely new `(image, question)` pairs.
    pub fn push_image(&mut self, image: &ImageObject, question: &str) {
        self.push_inner(
            1,
            &image.key,
            question,
            || Arc::from(image.key.as_str()),
            || PerceptionInput::Image(image.clone()),
        );
    }

    /// Record one row's request, deduplicating identical `(input, question)`
    /// pairs against every previously pushed row. Prefer
    /// [`PerceptionBatch::push_document`] / [`PerceptionBatch::push_image`]
    /// when the input is borrowed — they avoid materializing duplicates.
    pub fn push(&mut self, request: PerceptionRequest) {
        match &request.input {
            PerceptionInput::Document(document) => self.push_document(document, &request.question),
            PerceptionInput::Image(image) => self.push_image(image, &request.question),
        }
    }

    /// Probes the dedup index by `&str` (no allocation for duplicate rows);
    /// `make_key`/`build` run only for genuinely new pairs.
    fn push_inner(
        &mut self,
        modality: usize,
        key: &str,
        question: &str,
        make_key: impl FnOnce() -> Arc<str>,
        build: impl FnOnce() -> PerceptionInput,
    ) {
        let existing = self.index[modality]
            .get(key)
            .and_then(|by_question| by_question.get(question))
            .copied();
        let idx = match existing {
            Some(idx) => idx,
            None => {
                let idx = self.unique.len();
                self.index[modality]
                    .entry(make_key())
                    .or_default()
                    .insert(question.to_string(), idx);
                self.unique.push(PerceptionRequest {
                    input: build(),
                    question: question.to_string(),
                });
                idx
            }
        };
        self.slots.push(Slot::Unique(idx));
    }

    /// Number of rows gathered so far.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no row has been gathered yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of unique requests gathered so far.
    pub fn unique_len(&self) -> usize {
        self.unique.len()
    }

    /// Dispatch the unique requests to `backend` in batches of
    /// [`BatchConfig::batch_size`], fanned out across the morsel worker pool
    /// via [`parallel::try_map_morsels`] (one "morsel" = one batch), and
    /// scatter the answers back onto the rows.
    ///
    /// On success, returns one entry per gathered row, in row order: `None`
    /// for NULL rows, `Some(value)` otherwise (duplicates share a clone of
    /// the same answer). On failure, returns the error of the **first
    /// failing row in row order** — unique indices are assigned in
    /// first-seen row order, so `try_map_morsels`' earliest-failing-batch
    /// guarantee maps exactly onto it — reproducing the error behaviour of
    /// the sequential row-at-a-time path.
    ///
    /// Failures short-circuit (workers stop claiming further batches, the
    /// row-at-a-time path stopped at its first failing call too), so a
    /// remote backend is not billed for the rest of the table;
    /// [`BatchStats::batches`] counts the dispatches actually performed.
    /// Stats are returned alongside the result — not inside it — so callers
    /// can account for the calls of failed dispatches too.
    pub fn dispatch(
        self,
        backend: &dyn PerceptionBackend,
        config: &BatchConfig,
    ) -> (EngineResult<Vec<Option<Value>>>, BatchStats) {
        self.dispatch_cached(backend, config, None)
    }

    /// [`PerceptionBatch::dispatch`] through an optional session-scoped
    /// [`PerceptionCache`]. With `cache = None` the behaviour (and the
    /// resulting bytes) are exactly those of the uncached dispatch.
    ///
    /// With a cache attached, every unique request is probed first — hits
    /// resolve immediately and **never reach the backend** — and only the
    /// misses are dispatched in batches (preserving first-seen row order, so
    /// the first-error-in-row-order guarantee carries over: requests that
    /// error are never cached, hence always misses, and the miss subsequence
    /// preserves their relative order). Successful answers populate the
    /// cache on the way back, including the answers of a dispatch whose
    /// later batch failed — the row-at-a-time path paid for those calls too.
    /// [`BatchStats`] gains the hit/miss/eviction counts of this dispatch.
    pub fn dispatch_cached(
        self,
        backend: &dyn PerceptionBackend,
        config: &BatchConfig,
        cache: Option<(&PerceptionCache, CacheScope)>,
    ) -> (EngineResult<Vec<Option<Value>>>, BatchStats) {
        let PerceptionBatch { slots, unique, .. } = self;
        let rows = slots.len();
        let null_rows = slots.iter().filter(|s| matches!(s, Slot::Null)).count();
        let unique_count = unique.len();

        // Probe phase: resolve hits, keep misses in first-seen order. With a
        // disk tier attached, memory misses probe the durable store (keyed by
        // the backend's identity) before being dispatched; disk hits also
        // warm the memory tier so duplicates within the session stay cheap.
        let disk_identity: Option<String> = match cache {
            Some((cache, _)) if cache.has_disk() => Some(backend.identity()),
            _ => None,
        };
        let mut resolved: Vec<Option<Value>> = vec![None; unique_count];
        let mut miss_slots: Vec<usize> = Vec::new();
        let mut miss_requests: Vec<PerceptionRequest> = Vec::new();
        let mut cache_hits = 0usize;
        let mut cache_misses = 0usize;
        let mut disk_hits = 0usize;
        let mut probe_evictions = 0usize;
        match cache {
            Some((cache, scope)) => {
                for (idx, request) in unique.into_iter().enumerate() {
                    match cache.get(scope, &request.input, &request.question) {
                        Some(value) => {
                            resolved[idx] = Some(value);
                            cache_hits += 1;
                        }
                        None => {
                            cache_misses += 1;
                            let from_disk = disk_identity.as_ref().and_then(|identity| {
                                cache.disk_get(identity, scope, &request.input, &request.question)
                            });
                            match from_disk {
                                Some(value) => {
                                    probe_evictions += cache.insert(
                                        scope,
                                        &request.input,
                                        &request.question,
                                        value.clone(),
                                    );
                                    resolved[idx] = Some(value);
                                    disk_hits += 1;
                                }
                                None => {
                                    miss_slots.push(idx);
                                    miss_requests.push(request);
                                }
                            }
                        }
                    }
                }
            }
            None => {
                miss_slots.extend(0..unique_count);
                miss_requests = unique;
            }
        }
        let disk_misses = if disk_identity.is_some() {
            miss_requests.len()
        } else {
            0
        };

        // Dispatch phase: only the misses reach the backend.
        let dispatched = AtomicUsize::new(0);
        let evicted = AtomicUsize::new(0);
        let disk_wrote = AtomicUsize::new(0);
        let result: EngineResult<Vec<Vec<Value>>> = if miss_requests.is_empty() {
            Ok(Vec::new())
        } else {
            // One morsel = one batch of `batch_size` unique requests.
            let exec = ExecConfig::new(parallel::exec_config().threads, config.batch_size);
            parallel::try_map_morsels(&exec, miss_requests.len(), |range| {
                dispatched.fetch_add(1, Ordering::Relaxed);
                let batch = &miss_requests[range];
                let answers = backend.answer_batch(batch);
                // A malformed backend response (e.g. a remote server
                // truncating a batch) degrades the query with an execution
                // error; it must not panic the worker pool.
                if answers.len() != batch.len() {
                    return Err(EngineError::execution(format!(
                        "perception backend returned {} answer(s) for a batch of {} request(s)",
                        answers.len(),
                        batch.len()
                    )));
                }
                if let Some((cache, scope)) = cache {
                    // Only successful answers are cached; errors are
                    // re-dispatched on every attempt, like the uncached path.
                    for (request, answer) in batch.iter().zip(&answers) {
                        if let Ok(value) = answer {
                            evicted.fetch_add(
                                cache.insert(
                                    scope,
                                    &request.input,
                                    &request.question,
                                    value.clone(),
                                ),
                                Ordering::Relaxed,
                            );
                            if let Some(identity) = disk_identity.as_ref() {
                                if cache.disk_put(
                                    identity,
                                    scope,
                                    &request.input,
                                    &request.question,
                                    value,
                                ) {
                                    disk_wrote.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                }
                answers
                    .into_iter()
                    .map(|a| a.map_err(|e| EngineError::execution(e.to_string())))
                    .collect()
            })
        };
        let stats = BatchStats {
            rows,
            null_rows,
            unique_requests: unique_count,
            batches: dispatched.into_inner(),
            saved_calls: rows - null_rows - unique_count,
            cache_hits,
            cache_misses,
            cache_evictions: probe_evictions + evicted.into_inner(),
            disk_hits,
            disk_misses,
            disk_writes: disk_wrote.into_inner(),
        };
        let scattered = result.map(|chunks| {
            for (j, value) in chunks.into_iter().flatten().enumerate() {
                resolved[miss_slots[j]] = Some(value);
            }
            slots
                .iter()
                .map(|slot| match slot {
                    Slot::Null => None,
                    Slot::Unique(idx) => Some(
                        resolved[*idx]
                            .clone()
                            .expect("every unique request resolves to an answer"),
                    ),
                })
                .collect()
        });
        (scattered, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A backend that counts calls and answers with the question length.
    struct CountingBackend {
        calls: AtomicUsize,
        batches: AtomicUsize,
    }

    impl CountingBackend {
        fn new() -> Self {
            CountingBackend {
                calls: AtomicUsize::new(0),
                batches: AtomicUsize::new(0),
            }
        }
    }

    impl PerceptionBackend for CountingBackend {
        fn answer_batch(&self, requests: &[PerceptionRequest]) -> Vec<ModalResult<Value>> {
            self.batches.fetch_add(1, Ordering::Relaxed);
            self.calls.fetch_add(requests.len(), Ordering::Relaxed);
            requests
                .iter()
                .map(|r| Ok(Value::Int(r.question.len() as i64)))
                .collect()
        }
    }

    fn doc_request(doc: &str, question: &str) -> PerceptionRequest {
        PerceptionRequest {
            input: PerceptionInput::Document(doc.into()),
            question: question.to_string(),
        }
    }

    #[test]
    fn batch_config_clamps_and_reads_defaults() {
        assert_eq!(BatchConfig::new(0).batch_size, 1);
        assert_eq!(BatchConfig::new(7).batch_size, 7);
    }

    #[test]
    fn duplicate_rows_share_one_request_and_answer() {
        let mut batch = PerceptionBatch::new();
        batch.push(doc_request("report A", "Who won?"));
        batch.push(doc_request("report A", "Who won?"));
        batch.push_null();
        batch.push(doc_request("report B", "Who won?"));
        batch.push(doc_request("report A", "Who won?"));
        assert_eq!(batch.len(), 5);
        assert_eq!(batch.unique_len(), 2);

        let backend = CountingBackend::new();
        let (answers, stats) = batch.dispatch(&backend, &BatchConfig::new(8));
        let answers = answers.unwrap();
        assert_eq!(backend.calls.load(Ordering::Relaxed), 2);
        assert_eq!(backend.batches.load(Ordering::Relaxed), 1);
        assert_eq!(stats.rows, 5);
        assert_eq!(stats.null_rows, 1);
        assert_eq!(stats.unique_requests, 2);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.saved_calls, 2);
        assert_eq!(answers.len(), 5);
        assert!(answers[2].is_none());
        assert_eq!(answers[0], answers[1]);
        assert_eq!(answers[0], answers[4]);
    }

    #[test]
    fn batch_size_controls_the_number_of_dispatches() {
        let mut batch = PerceptionBatch::new();
        for i in 0..10 {
            batch.push(doc_request(&format!("doc {i}"), "Q?"));
        }
        let backend = CountingBackend::new();
        let (_, stats) = batch.dispatch(&backend, &BatchConfig::new(3));
        assert_eq!(backend.batches.load(Ordering::Relaxed), 4);
        assert_eq!(stats.batches, 4);
        assert_eq!(stats.unique_requests, 10);
        assert_eq!(stats.saved_calls, 0);
    }

    #[test]
    fn empty_and_all_null_collectors_dispatch_nothing() {
        let backend = CountingBackend::new();
        let (answers, stats) = PerceptionBatch::new().dispatch(&backend, &BatchConfig::new(4));
        assert!(answers.unwrap().is_empty());
        assert_eq!(stats.batches, 0);

        let mut batch = PerceptionBatch::new();
        batch.push_null();
        batch.push_null();
        let (answers, stats) = batch.dispatch(&backend, &BatchConfig::new(4));
        assert_eq!(answers.unwrap(), vec![None, None]);
        assert_eq!(stats.rows, 2);
        assert_eq!(stats.null_rows, 2);
        assert_eq!(stats.batches, 0);
        assert_eq!(backend.calls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn failing_requests_return_the_first_error() {
        struct FailingBackend;
        impl PerceptionBackend for FailingBackend {
            fn answer_batch(&self, requests: &[PerceptionRequest]) -> Vec<ModalResult<Value>> {
                requests
                    .iter()
                    .map(|r| {
                        Err(crate::error::ModalError::UnanswerableQuestion {
                            model: "test".into(),
                            question: r.question.clone(),
                            reason: "always fails".into(),
                        })
                    })
                    .collect()
            }
        }
        let mut batch = PerceptionBatch::new();
        batch.push(doc_request("doc", "Q?"));
        batch.push(doc_request("doc", "Q?"));
        let (answers, stats) = batch.dispatch(&FailingBackend, &BatchConfig::new(2));
        let err = answers.unwrap_err();
        assert!(err.to_string().contains("always fails"));
        assert_eq!(stats.unique_requests, 1);
        assert_eq!(stats.batches, 1);
    }

    #[test]
    fn failing_batches_short_circuit_later_dispatches() {
        /// Fails the request asking `Q0?`, answers everything else.
        struct FailFirst;
        impl PerceptionBackend for FailFirst {
            fn answer_batch(&self, requests: &[PerceptionRequest]) -> Vec<ModalResult<Value>> {
                requests
                    .iter()
                    .map(|r| {
                        if r.question == "Q0?" {
                            Err(crate::error::ModalError::UnanswerableQuestion {
                                model: "test".into(),
                                question: r.question.clone(),
                                reason: "scripted failure".into(),
                            })
                        } else {
                            Ok(Value::Int(1))
                        }
                    })
                    .collect()
            }
        }
        // Sequential config so skip behaviour is deterministic: the first
        // batch fails, the remaining four are never dispatched.
        parallel::with_config(ExecConfig::new(1, 4096), || {
            let mut batch = PerceptionBatch::new();
            for i in 0..10 {
                batch.push(doc_request(&format!("doc {i}"), &format!("Q{i}?")));
            }
            let (answers, stats) = batch.dispatch(&FailFirst, &BatchConfig::new(2));
            let err = answers.unwrap_err();
            assert!(err.to_string().contains("scripted failure"));
            assert_eq!(stats.unique_requests, 10);
            assert_eq!(stats.batches, 1, "later batches must be skipped");
        });
    }

    #[test]
    fn stats_absorb_and_since_are_inverse() {
        let mut total = BatchStats::default();
        let a = BatchStats {
            rows: 5,
            null_rows: 1,
            unique_requests: 3,
            batches: 1,
            saved_calls: 1,
            cache_hits: 1,
            cache_misses: 2,
            cache_evictions: 1,
            disk_hits: 1,
            disk_misses: 1,
            disk_writes: 1,
        };
        let b = BatchStats {
            rows: 2,
            null_rows: 0,
            unique_requests: 2,
            batches: 1,
            saved_calls: 0,
            cache_hits: 0,
            cache_misses: 2,
            cache_evictions: 0,
            disk_hits: 0,
            disk_misses: 2,
            disk_writes: 2,
        };
        total.absorb(&a);
        let snapshot = total;
        total.absorb(&b);
        assert_eq!(total.since(&snapshot), b);
        assert_eq!(total.rows, 7);
        assert!(total.summary().contains("7 row(s)"));
    }

    #[test]
    fn cached_dispatch_skips_the_backend_on_repeats() {
        let cache = PerceptionCache::with_capacity(16);
        let backend = CountingBackend::new();

        let mut batch = PerceptionBatch::new();
        batch.push(doc_request("report A", "Who won?"));
        batch.push(doc_request("report B", "Who won?"));
        let (answers, stats) = batch.dispatch_cached(
            &backend,
            &BatchConfig::new(8),
            Some((&cache, CacheScope::TextQa)),
        );
        let first = answers.unwrap();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 2);
        assert_eq!(backend.calls.load(Ordering::Relaxed), 2);

        // A later "plan step" re-asking the same questions: zero new calls.
        let mut batch = PerceptionBatch::new();
        batch.push(doc_request("report A", "Who won?"));
        batch.push_null();
        batch.push(doc_request("report B", "Who won?"));
        let (answers, stats) = batch.dispatch_cached(
            &backend,
            &BatchConfig::new(8),
            Some((&cache, CacheScope::TextQa)),
        );
        let second = answers.unwrap();
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.cache_misses, 0);
        assert_eq!(stats.batches, 0, "hits must not dispatch");
        assert_eq!(stats.dispatched_requests(), 0);
        assert_eq!(backend.calls.load(Ordering::Relaxed), 2, "no new calls");
        assert_eq!(second[0], first[0]);
        assert!(second[1].is_none());
        assert_eq!(second[2], first[1]);

        // A different scope must not share the answers.
        let mut batch = PerceptionBatch::new();
        batch.push(doc_request("report A", "Who won?"));
        let (_, stats) = batch.dispatch_cached(
            &backend,
            &BatchConfig::new(8),
            Some((&cache, CacheScope::VisualQa)),
        );
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(backend.calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn failed_requests_are_never_cached() {
        /// Fails requests about "bad", answers everything else with 1.
        struct FailBad;
        impl PerceptionBackend for FailBad {
            fn answer_batch(&self, requests: &[PerceptionRequest]) -> Vec<ModalResult<Value>> {
                requests
                    .iter()
                    .map(|r| {
                        if r.input.cache_key() == "bad" {
                            Err(crate::error::ModalError::UnanswerableQuestion {
                                model: "test".into(),
                                question: r.question.clone(),
                                reason: "scripted failure".into(),
                            })
                        } else {
                            Ok(Value::Int(1))
                        }
                    })
                    .collect()
            }
        }
        let cache = PerceptionCache::with_capacity(16);
        // Sequential so the good batch deterministically precedes the bad one.
        parallel::with_config(ExecConfig::new(1, 4096), || {
            let mut batch = PerceptionBatch::new();
            batch.push(doc_request("good", "Q?"));
            batch.push(doc_request("bad", "Q?"));
            let (answers, _) = batch.dispatch_cached(
                &FailBad,
                &BatchConfig::new(1),
                Some((&cache, CacheScope::TextQa)),
            );
            assert!(answers.is_err());
        });
        // The successful answer of the failing dispatch is cached ...
        assert_eq!(
            cache.get(
                CacheScope::TextQa,
                &PerceptionInput::Document("good".into()),
                "Q?"
            ),
            Some(Value::Int(1))
        );
        // ... the failed one is not.
        assert_eq!(
            cache.get(
                CacheScope::TextQa,
                &PerceptionInput::Document("bad".into()),
                "Q?"
            ),
            None
        );
    }

    #[test]
    fn image_requests_dedup_by_image_key() {
        let img = ImageObject::new("img/1.png").with_object("sword", 2);
        let mut batch = PerceptionBatch::new();
        for _ in 0..3 {
            batch.push_image(&img, "How many swords are depicted?");
        }
        assert_eq!(batch.unique_len(), 1);
    }

    #[test]
    fn modalities_never_share_dedup_slots() {
        // A document whose text equals an image key must not collide with
        // that image's request.
        let img = ImageObject::new("img/1.png");
        let mut batch = PerceptionBatch::new();
        batch.push_document(&Arc::from("img/1.png"), "What is depicted?");
        batch.push_image(&img, "What is depicted?");
        assert_eq!(batch.unique_len(), 2);
    }
}
