//! The plot operator (the seaborn substitute).
//!
//! The paper's plans end in a Plot operator with arguments such as
//! `('bar', 'century', 'max_num_swords')` (Figure 4). This module renders a
//! result table into a [`Plot`]: a structured series plus deterministic text
//! and SVG renderings, which is all the evaluation needs ("the right plot kind
//! with the right axes was produced").

use crate::error::{ModalError, ModalResult};
use caesura_engine::{Table, Value};
use std::fmt;

/// Supported plot kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlotKind {
    /// Bar chart (the paper's examples use `sns.barplot`).
    Bar,
    /// Line chart.
    Line,
    /// Scatter plot.
    Scatter,
}

impl PlotKind {
    /// Parse a kind from the operator argument (`"bar"`, `"line"`, `"scatter"`).
    pub fn from_name(name: &str) -> ModalResult<PlotKind> {
        match name.trim().to_lowercase().as_str() {
            "bar" | "barplot" | "bar chart" => Ok(PlotKind::Bar),
            "line" | "lineplot" | "line chart" => Ok(PlotKind::Line),
            "scatter" | "scatterplot" | "scatter plot" => Ok(PlotKind::Scatter),
            other => Err(ModalError::InvalidPlot {
                message: format!("unknown plot kind '{other}' (expected bar, line, or scatter)"),
            }),
        }
    }

    /// Lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            PlotKind::Bar => "bar",
            PlotKind::Line => "line",
            PlotKind::Scatter => "scatter",
        }
    }
}

/// Specification of the plot to produce.
#[derive(Debug, Clone, PartialEq)]
pub struct PlotSpec {
    /// Plot kind.
    pub kind: PlotKind,
    /// Column providing the X axis / category labels.
    pub x_column: String,
    /// Column providing the Y axis values.
    pub y_column: String,
    /// Optional title.
    pub title: Option<String>,
}

impl PlotSpec {
    /// Build a spec.
    pub fn new(kind: PlotKind, x: impl Into<String>, y: impl Into<String>) -> Self {
        PlotSpec {
            kind,
            x_column: x.into(),
            y_column: y.into(),
            title: None,
        }
    }

    /// Attach a title.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }
}

/// One (label, value) pair of the plotted series.
#[derive(Debug, Clone, PartialEq)]
pub struct PlotPoint {
    /// X label (rendered).
    pub label: String,
    /// Y value.
    pub value: f64,
}

/// A rendered plot.
#[derive(Debug, Clone, PartialEq)]
pub struct Plot {
    /// The specification it was built from.
    pub spec: PlotSpec,
    /// The data series in input-row order.
    pub points: Vec<PlotPoint>,
}

impl Plot {
    /// Build a plot from a result table according to a spec.
    pub fn from_table(table: &Table, spec: PlotSpec) -> ModalResult<Plot> {
        if table.is_empty() {
            return Err(ModalError::InvalidPlot {
                message: "cannot plot an empty table".into(),
            });
        }
        let x_values = table.column(&spec.x_column).map_err(ModalError::Engine)?;
        let y_values = table.column(&spec.y_column).map_err(ModalError::Engine)?;
        let mut points = Vec::with_capacity(x_values.len());
        for (x, y) in x_values.iter().zip(y_values.iter()) {
            let value = y.as_float().ok_or_else(|| ModalError::InvalidPlot {
                message: format!(
                    "the Y-axis column '{}' must be numeric, found value '{y}' of type {}",
                    spec.y_column,
                    y.data_type().prompt_name()
                ),
            })?;
            points.push(PlotPoint {
                label: render_label(x),
                value,
            });
        }
        Ok(Plot { spec, points })
    }

    /// Maximum Y value of the series (0 for an all-negative/empty series floor).
    pub fn max_value(&self) -> f64 {
        self.points.iter().map(|p| p.value).fold(f64::MIN, f64::max)
    }

    /// Render an ASCII chart (bar charts render horizontal bars; line/scatter
    /// render the series as label→value pairs).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if let Some(title) = &self.spec.title {
            out.push_str(&format!("{title}\n"));
        }
        out.push_str(&format!(
            "[{} plot] x={}, y={}\n",
            self.spec.kind.name(),
            self.spec.x_column,
            self.spec.y_column
        ));
        let max = self.max_value().max(1e-9);
        let label_width = self
            .points
            .iter()
            .map(|p| p.label.chars().count())
            .max()
            .unwrap_or(1);
        for point in &self.points {
            match self.spec.kind {
                PlotKind::Bar => {
                    let width = ((point.value / max) * 40.0).round().max(0.0) as usize;
                    out.push_str(&format!(
                        "{:w$} | {} {}\n",
                        point.label,
                        "█".repeat(width),
                        format_value(point.value),
                        w = label_width
                    ));
                }
                PlotKind::Line | PlotKind::Scatter => {
                    out.push_str(&format!(
                        "{:w$} : {}\n",
                        point.label,
                        format_value(point.value),
                        w = label_width
                    ));
                }
            }
        }
        out
    }

    /// Render a minimal standalone SVG document.
    pub fn render_svg(&self) -> String {
        let width = 640.0;
        let height = 400.0;
        let margin = 60.0;
        let n = self.points.len().max(1) as f64;
        let max = self.max_value().max(1e-9);
        let mut svg = String::new();
        svg.push_str(&format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\">\n"
        ));
        if let Some(title) = &self.spec.title {
            svg.push_str(&format!(
                "  <text x=\"{}\" y=\"24\" text-anchor=\"middle\" font-size=\"16\">{}</text>\n",
                width / 2.0,
                escape_xml(title)
            ));
        }
        let plot_width = width - 2.0 * margin;
        let plot_height = height - 2.0 * margin;
        for (i, point) in self.points.iter().enumerate() {
            let x = margin + plot_width * (i as f64 + 0.5) / n;
            let bar_height = plot_height * (point.value / max);
            let y = height - margin - bar_height;
            match self.spec.kind {
                PlotKind::Bar => {
                    let bar_width = (plot_width / n) * 0.8;
                    svg.push_str(&format!(
                        "  <rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" fill=\"steelblue\"/>\n",
                        x - bar_width / 2.0,
                        y,
                        bar_width,
                        bar_height
                    ));
                }
                PlotKind::Line | PlotKind::Scatter => {
                    svg.push_str(&format!(
                        "  <circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"4\" fill=\"steelblue\"/>\n"
                    ));
                }
            }
            svg.push_str(&format!(
                "  <text x=\"{x:.1}\" y=\"{:.1}\" text-anchor=\"middle\" font-size=\"10\">{}</text>\n",
                height - margin + 16.0,
                escape_xml(&point.label)
            ));
        }
        svg.push_str(&format!(
            "  <text x=\"16\" y=\"{:.1}\" font-size=\"12\" transform=\"rotate(-90 16 {:.1})\">{}</text>\n",
            height / 2.0,
            height / 2.0,
            escape_xml(&self.spec.y_column)
        ));
        svg.push_str("</svg>\n");
        svg
    }
}

impl fmt::Display for Plot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}

fn render_label(value: &Value) -> String {
    match value {
        Value::Float(f) if f.fract() == 0.0 => format!("{}", *f as i64),
        other => other.to_string(),
    }
}

fn format_value(value: f64) -> String {
    if value.fract() == 0.0 {
        format!("{}", value as i64)
    } else {
        format!("{value:.2}")
    }
}

fn escape_xml(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesura_engine::{DataType, Schema, TableBuilder};

    fn result_table() -> Table {
        let schema = Schema::from_pairs(&[
            ("century", DataType::Int),
            ("max_num_swords", DataType::Int),
        ]);
        let mut b = TableBuilder::new("result_table", schema);
        for (c, s) in [(15, 5), (17, 3), (19, 2)] {
            b.push_values::<_, Value>(vec![Value::Int(c), Value::Int(s)])
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn figure4_bar_plot_arguments() {
        // Plot operator arguments: ('bar', 'century', 'max_num_swords').
        let spec = PlotSpec::new(
            PlotKind::from_name("bar").unwrap(),
            "century",
            "max_num_swords",
        );
        let plot = Plot::from_table(&result_table(), spec).unwrap();
        assert_eq!(plot.points.len(), 3);
        assert_eq!(plot.points[0].label, "15");
        assert_eq!(plot.max_value(), 5.0);
        let text = plot.render_text();
        assert!(text.contains("bar plot"));
        assert!(text.contains("century"));
    }

    #[test]
    fn svg_rendering_contains_bars_and_labels() {
        let spec = PlotSpec::new(PlotKind::Bar, "century", "max_num_swords")
            .with_title("Swords per century");
        let plot = Plot::from_table(&result_table(), spec).unwrap();
        let svg = plot.render_svg();
        assert!(svg.starts_with("<svg"));
        assert_eq!(svg.matches("<rect").count(), 3);
        assert!(svg.contains("Swords per century"));
    }

    #[test]
    fn line_and_scatter_render_points() {
        for kind in [PlotKind::Line, PlotKind::Scatter] {
            let spec = PlotSpec::new(kind, "century", "max_num_swords");
            let plot = Plot::from_table(&result_table(), spec).unwrap();
            assert!(plot.render_svg().contains("<circle"));
            assert!(plot.render_text().contains("15"));
        }
    }

    #[test]
    fn unknown_kind_and_missing_columns_error() {
        assert!(PlotKind::from_name("pie").is_err());
        let spec = PlotSpec::new(PlotKind::Bar, "not_a_column", "max_num_swords");
        assert!(Plot::from_table(&result_table(), spec).is_err());
    }

    #[test]
    fn non_numeric_y_axis_is_rejected_with_explanation() {
        let schema = Schema::from_pairs(&[("a", DataType::Str), ("b", DataType::Str)]);
        let mut builder = TableBuilder::new("t", schema);
        builder.push_values(["x", "y"]).unwrap();
        let err =
            Plot::from_table(&builder.build(), PlotSpec::new(PlotKind::Bar, "a", "b")).unwrap_err();
        assert!(err.to_string().contains("must be numeric"));
    }

    #[test]
    fn empty_tables_cannot_be_plotted() {
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]);
        let table = Table::empty("t", schema);
        assert!(Plot::from_table(&table, PlotSpec::new(PlotKind::Bar, "a", "b")).is_err());
    }
}
