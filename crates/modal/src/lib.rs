//! # caesura-modal
//!
//! The multi-modal substrate of the CAESURA reproduction: annotated images,
//! text documents, and the simulated perception models (VisualQA / TextQA /
//! Image Select, substitutes for BLIP-2 and BART), plus the Python-UDF
//! substitute (a safe transform DSL) and the plotting operator (the seaborn
//! substitute).
//!
//! The models are *simulated*: they answer questions against structured
//! ground-truth annotations generated alongside the synthetic data (see the
//! `caesura-data` crate) instead of running neural networks. The operator
//! contracts — question in, per-row structured value out — are identical to
//! the paper's, which is what CAESURA's planner (and the evaluation of plan
//! quality) depends on. A deterministic [`NoiseModel`] can be attached to any
//! model to study the effect of imperfect extraction.
//!
//! Perception-operator model calls are gathered, deduplicated, and dispatched
//! in configurable batches by the [`batch`] layer (see its module docs for
//! the knobs and the saved-call accounting); the operators in [`operators`]
//! are written against the [`PerceptionBackend`] trait, so the simulated
//! models and LLM-backed backends are interchangeable. A session-scoped
//! [`PerceptionCache`] ([`cache`]) can sit between dedup and dispatch to
//! collapse repeated `(input, question)` work across plan steps and across
//! queries over the same lake.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod cache;
pub mod document;
pub mod error;
pub mod image;
pub mod image_select;
pub mod noise;
pub mod operators;
pub mod plot;
pub mod text_qa;
pub mod transform;
pub mod visual_qa;

pub use batch::{
    BatchConfig, BatchStats, PerceptionBackend, PerceptionBatch, PerceptionInput, PerceptionRequest,
};
pub use cache::{CacheConfig, CacheScope, CacheStats, PerceptionCache};
pub use document::TextDocument;
pub use error::{ModalError, ModalResult};
pub use image::{ImageObject, ImageStore};
pub use image_select::ImageSelectModel;
pub use noise::NoiseModel;
pub use operators::OperatorKind;
pub use plot::{Plot, PlotKind, PlotPoint, PlotSpec};
pub use text_qa::TextQaModel;
pub use transform::{TransformCodegen, TransformProgram};
pub use visual_qa::VisualQaModel;
