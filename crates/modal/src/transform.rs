//! The Python-UDF substitute: a small, side-effect-free transform DSL.
//!
//! In the paper, the Python operator "takes a description as input, which is
//! translated to code using GPT-4" (Figure 4). This reproduction replaces
//! arbitrary generated Python with a restricted transform language: the
//! description is compiled to a [`TransformProgram`] wrapping a relational
//! [`Expr`] which is evaluated per row to produce one new column. By
//! construction the operator can never mutate or delete data, which matches —
//! and strengthens — the security posture of §5 of the paper.

use crate::error::{ModalError, ModalResult};
#[cfg(test)]
use caesura_engine::Value;
use caesura_engine::{sql::parse_expression, BinaryOp, DataType, Expr, ScalarFunc, Schema, Table};

/// A compiled transformation: one new column computed from existing columns.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformProgram {
    /// The per-row expression.
    pub expr: Expr,
    /// Static type of the produced column.
    pub output_type: DataType,
    /// Pseudo-code rendering shown in traces (plays the role of the generated
    /// Python snippet in Figure 1).
    pub source: String,
}

impl TransformProgram {
    /// Wrap an expression directly.
    pub fn from_expr(expr: Expr, schema: &Schema) -> Self {
        let output_type = expr.output_type(schema);
        let source = format!("row[new] = {expr}");
        TransformProgram {
            expr,
            output_type,
            source,
        }
    }

    /// Apply the program to a table, appending the result as `new_column`.
    /// The expression is evaluated column-at-a-time (vectorized) and the
    /// existing columns are shared with the input.
    pub fn apply(&self, table: &Table, new_column: &str) -> ModalResult<Table> {
        self.expr
            .evaluate_batch(table.schema(), table.columns(), table.num_rows())
            .and_then(|column| table.append_column(new_column, self.output_type, column))
            .map_err(|e| ModalError::TransformRuntime {
                message: e.to_string(),
            })
    }

    /// Encode the program for the durable cache tier: the expression's SQL
    /// rendering (re-parsed on decode) plus the trace `source` string.
    /// Callers must round-trip through [`Self::from_cache_bytes`] before
    /// persisting — see `apply_python_udf_cached` — so only programs whose
    /// rendering re-parses to the identical program are ever stored.
    pub fn cache_bytes(&self) -> Vec<u8> {
        let expr = self.expr.to_string();
        let mut out = Vec::with_capacity(4 + expr.len() + self.source.len());
        out.extend_from_slice(&(expr.len() as u32).to_le_bytes());
        out.extend_from_slice(expr.as_bytes());
        out.extend_from_slice(self.source.as_bytes());
        out
    }

    /// Decode a program stored by [`Self::cache_bytes`] against the table
    /// schema it is about to run over. Returns `None` for malformed bytes,
    /// expressions the SQL parser rejects, or expressions referencing columns
    /// the schema no longer has — a decode failure simply falls back to a
    /// fresh compile.
    pub fn from_cache_bytes(bytes: &[u8], schema: &Schema) -> Option<Self> {
        let len = u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?) as usize;
        let rest = bytes.get(4..)?;
        let expr_text = std::str::from_utf8(rest.get(..len)?).ok()?;
        let source = std::str::from_utf8(rest.get(len..)?).ok()?;
        let expr = parse_expression(expr_text).ok()?;
        let columns = expr.referenced_columns();
        if columns.is_empty() || !columns.iter().all(|c| schema.contains(c)) {
            return None;
        }
        let mut program = TransformProgram::from_expr(expr, schema);
        program.source = source.to_string();
        Some(program)
    }
}

/// The simulated "description → code" generator.
///
/// It recognizes the transformation descriptions CAESURA's planner produces
/// (century extraction, year extraction, parsing, simple arithmetic, casing,
/// yes/no encoding, column differences) and also accepts descriptions that are
/// already valid expressions.
#[derive(Debug, Clone, Default)]
pub struct TransformCodegen;

impl TransformCodegen {
    /// Create a code generator.
    pub fn new() -> Self {
        TransformCodegen
    }

    /// Compile a natural-language description into a program over `schema`.
    pub fn compile(&self, description: &str, schema: &Schema) -> ModalResult<TransformProgram> {
        let desc = description.trim();
        let lower = desc.to_lowercase();
        let fail = |reason: &str| {
            Err(ModalError::TransformCompile {
                description: description.to_string(),
                reason: reason.to_string(),
            })
        };

        if desc.is_empty() {
            return fail("the description is empty");
        }

        // 1. The description may already be a valid expression
        //    (e.g. "CENTURY(inception)" or "points / 2").
        if let Ok(expr) = parse_expression(desc) {
            if expr.referenced_columns().iter().all(|c| schema.contains(c))
                && !expr.referenced_columns().is_empty()
            {
                return Ok(TransformProgram::from_expr(expr, schema));
            }
        }

        let source_column = self.find_column(&lower, schema);

        // 2. Century extraction ("Extract the century from the dates ...").
        if lower.contains("century") {
            let column = match source_column {
                Some(c) => c,
                None => match self.find_date_like_column(schema) {
                    Some(c) => c,
                    None => return fail("could not identify which column holds the dates"),
                },
            };
            let expr = Expr::Func {
                func: ScalarFunc::Century,
                args: vec![Expr::col(column.clone())],
            };
            let mut program = TransformProgram::from_expr(expr, schema);
            program.source = format!("row[new] = century_of(row['{column}'])");
            return Ok(program);
        }

        // 3. Year extraction.
        if lower.contains("year") && (lower.contains("extract") || lower.contains("parse")) {
            let column = match source_column.or_else(|| self.find_date_like_column(schema)) {
                Some(c) => c,
                None => return fail("could not identify which column holds the dates"),
            };
            let expr = Expr::Func {
                func: ScalarFunc::ExtractYear,
                args: vec![Expr::col(column)],
            };
            return Ok(TransformProgram::from_expr(expr, schema));
        }

        // 4. yes/no → 1/0 encoding ("Convert the yes/no answers to numbers").
        if (lower.contains("yes") && lower.contains("no"))
            || lower.contains("boolean to number")
            || lower.contains("binary")
        {
            let column = match source_column {
                Some(c) => c,
                None => return fail("could not identify which yes/no column to encode"),
            };
            let expr = Expr::Case {
                branches: vec![(Expr::col(column.clone()).eq(Expr::lit("yes")), Expr::lit(1))],
                otherwise: Some(Box::new(Expr::lit(0))),
            };
            return Ok(TransformProgram::from_expr(expr, schema));
        }

        // 5. Simple arithmetic with a constant:
        //    "divide the <col> by 100", "multiply <col> by 2", "add 5 to <col>".
        if let Some(program) = self.compile_arithmetic(&lower, source_column.as_deref(), schema) {
            return Ok(program);
        }

        // 6. Difference between two columns.
        if lower.contains("difference between") {
            let columns = self.find_all_columns(&lower, schema);
            if columns.len() >= 2 {
                let expr = Expr::binary(
                    Expr::col(columns[0].clone()),
                    BinaryOp::Sub,
                    Expr::col(columns[1].clone()),
                );
                return Ok(TransformProgram::from_expr(expr, schema));
            }
            return fail("could not identify the two columns to subtract");
        }

        // 7. Casing / length transformations.
        if let Some(column) = &source_column {
            for (keyword, func) in [
                ("lowercase", ScalarFunc::Lower),
                ("lower case", ScalarFunc::Lower),
                ("uppercase", ScalarFunc::Upper),
                ("upper case", ScalarFunc::Upper),
                ("length", ScalarFunc::Length),
                ("number of characters", ScalarFunc::Length),
            ] {
                if lower.contains(keyword) {
                    let expr = Expr::Func {
                        func,
                        args: vec![Expr::col(column.clone())],
                    };
                    return Ok(TransformProgram::from_expr(expr, schema));
                }
            }
            // 8. Integer parsing ("parse the <col> as a number").
            if lower.contains("number") || lower.contains("integer") || lower.contains("parse") {
                let expr = Expr::Func {
                    func: ScalarFunc::CastInt,
                    args: vec![Expr::col(column.clone())],
                };
                return Ok(TransformProgram::from_expr(expr, schema));
            }
        }

        fail(
            "the description matches no supported transformation \
             (century/year extraction, arithmetic, casing, yes/no encoding, parsing)",
        )
    }

    /// Find the first schema column mentioned in the description (quoted names
    /// take precedence over bare mentions).
    fn find_column(&self, lower_desc: &str, schema: &Schema) -> Option<String> {
        self.find_all_columns(lower_desc, schema).into_iter().next()
    }

    fn find_all_columns(&self, lower_desc: &str, schema: &Schema) -> Vec<String> {
        let mut found: Vec<(usize, String)> = Vec::new();
        for field in schema.fields() {
            let base = field.base_name().to_lowercase();
            if base.is_empty() {
                continue;
            }
            let quoted = format!("'{base}'");
            if let Some(pos) = lower_desc.find(&quoted) {
                found.push((pos, field.name.clone()));
                continue;
            }
            if let Some(pos) = lower_desc.find(&base) {
                found.push((pos, field.name.clone()));
            }
        }
        found.sort_by_key(|(pos, _)| *pos);
        let mut out = Vec::new();
        for (_, name) in found {
            if !out.contains(&name) {
                out.push(name);
            }
        }
        out
    }

    fn find_date_like_column(&self, schema: &Schema) -> Option<String> {
        const DATE_HINTS: &[&str] = &["inception", "date", "year", "created", "time"];
        schema
            .fields()
            .iter()
            .find(|f| {
                let base = f.base_name().to_lowercase();
                f.data_type == DataType::Date || DATE_HINTS.iter().any(|h| base.contains(h))
            })
            .map(|f| f.name.clone())
    }

    fn compile_arithmetic(
        &self,
        lower_desc: &str,
        column: Option<&str>,
        schema: &Schema,
    ) -> Option<TransformProgram> {
        let column = column?;
        let constant = lower_desc
            .split(|c: char| !c.is_ascii_digit() && c != '.')
            .filter(|s| !s.is_empty())
            .find_map(|s| s.parse::<f64>().ok())?;
        let literal = if constant.fract() == 0.0 {
            Expr::lit(constant as i64)
        } else {
            Expr::lit(constant)
        };
        let op = if lower_desc.contains("divid") {
            BinaryOp::Div
        } else if lower_desc.contains("multipl") {
            BinaryOp::Mul
        } else if lower_desc.contains("subtract") {
            BinaryOp::Sub
        } else if lower_desc.contains("add ") || lower_desc.contains("increase") {
            BinaryOp::Add
        } else {
            return None;
        };
        let expr = Expr::binary(Expr::col(column.to_string()), op, literal);
        Some(TransformProgram::from_expr(expr, schema))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesura_engine::TableBuilder;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("title", DataType::Str),
            ("inception", DataType::Str),
            ("madonna_depicted", DataType::Str),
            ("points", DataType::Int),
        ])
    }

    fn table() -> Table {
        let mut b = TableBuilder::new("joined_table", schema());
        b.push_row(vec![
            Value::str("Madonna"),
            Value::str("1889-01-05"),
            Value::str("yes"),
            Value::Int(10),
        ])
        .unwrap();
        b.push_row(vec![
            Value::str("Irises"),
            Value::str("c. 1480"),
            Value::str("no"),
            Value::Int(20),
        ])
        .unwrap();
        b.build()
    }

    #[test]
    fn century_extraction_matches_figure4_step3() {
        let codegen = TransformCodegen::new();
        let program = codegen
            .compile(
                "Extract the century from the dates in the 'inception' column by dividing the year by 100",
                &schema(),
            )
            .unwrap();
        let out = program.apply(&table(), "century").unwrap();
        assert_eq!(out.value(0, "century").unwrap(), Value::Int(19));
        assert_eq!(out.value(1, "century").unwrap(), Value::Int(15));
        assert!(program.source.contains("century_of"));
    }

    #[test]
    fn expression_descriptions_compile_directly() {
        let codegen = TransformCodegen::new();
        let program = codegen.compile("CENTURY(inception)", &schema()).unwrap();
        assert_eq!(program.output_type, DataType::Int);
        let program = codegen.compile("points * 2", &schema()).unwrap();
        let out = program.apply(&table(), "double_points").unwrap();
        assert_eq!(out.value(1, "double_points").unwrap(), Value::Int(40));
    }

    #[test]
    fn yes_no_encoding() {
        let codegen = TransformCodegen::new();
        let program = codegen
            .compile(
                "Convert the yes/no values in the 'madonna_depicted' column to 1 and 0",
                &schema(),
            )
            .unwrap();
        let out = program.apply(&table(), "madonna_flag").unwrap();
        assert_eq!(out.value(0, "madonna_flag").unwrap(), Value::Int(1));
        assert_eq!(out.value(1, "madonna_flag").unwrap(), Value::Int(0));
    }

    #[test]
    fn arithmetic_with_constants() {
        let codegen = TransformCodegen::new();
        let program = codegen
            .compile("Divide the values in the points column by 2", &schema())
            .unwrap();
        let out = program.apply(&table(), "half").unwrap();
        assert_eq!(out.value(0, "half").unwrap(), Value::Int(5));
        let program = codegen
            .compile("Multiply the points by 3", &schema())
            .unwrap();
        let out = program.apply(&table(), "triple").unwrap();
        assert_eq!(out.value(1, "triple").unwrap(), Value::Int(60));
    }

    #[test]
    fn year_extraction_and_parsing() {
        let codegen = TransformCodegen::new();
        let program = codegen
            .compile("Extract the year from the 'inception' column", &schema())
            .unwrap();
        let out = program.apply(&table(), "year").unwrap();
        assert_eq!(out.value(1, "year").unwrap(), Value::Int(1480));
    }

    #[test]
    fn casing_and_length_transformations() {
        let codegen = TransformCodegen::new();
        let program = codegen
            .compile("Convert the 'title' column to lowercase", &schema())
            .unwrap();
        let out = program.apply(&table(), "title_lower").unwrap();
        assert_eq!(out.value(0, "title_lower").unwrap(), Value::str("madonna"));
        let program = codegen
            .compile("Compute the length of the 'title' column", &schema())
            .unwrap();
        let out = program.apply(&table(), "title_len").unwrap();
        assert_eq!(out.value(0, "title_len").unwrap(), Value::Int(7));
    }

    #[test]
    fn unintelligible_descriptions_fail_with_reason() {
        let codegen = TransformCodegen::new();
        let err = codegen
            .compile("Render the painting as a 3D model", &schema())
            .unwrap_err();
        assert!(matches!(err, ModalError::TransformCompile { .. }));
        assert!(err.to_string().contains("no supported transformation"));
        assert!(codegen.compile("", &schema()).is_err());
    }

    #[test]
    fn century_without_an_identifiable_column_falls_back_to_date_like_columns() {
        let codegen = TransformCodegen::new();
        let program = codegen
            .compile("Extract the century from each painting", &schema())
            .unwrap();
        // Picks the `inception` column because of the date hint in its name.
        assert!(program
            .expr
            .referenced_columns()
            .contains(&"inception".to_string()));
    }

    #[test]
    fn difference_between_two_columns() {
        let schema =
            Schema::from_pairs(&[("height_cm", DataType::Int), ("width_cm", DataType::Int)]);
        let codegen = TransformCodegen::new();
        let program = codegen
            .compile(
                "Compute the difference between the 'height_cm' and 'width_cm' columns",
                &schema,
            )
            .unwrap();
        let mut b = TableBuilder::new("t", schema);
        b.push_values::<_, Value>(vec![Value::Int(30), Value::Int(20)])
            .unwrap();
        let out = program.apply(&b.build(), "diff").unwrap();
        assert_eq!(out.value(0, "diff").unwrap(), Value::Int(10));
    }

    #[test]
    fn runtime_failures_are_wrapped() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let program = TransformProgram::from_expr(
            Expr::binary(Expr::col("x"), BinaryOp::Div, Expr::lit(0)),
            &schema,
        );
        let mut b = TableBuilder::new("t", schema);
        b.push_values::<_, Value>(vec![Value::Int(1)]).unwrap();
        let err = program.apply(&b.build(), "boom").unwrap_err();
        assert!(matches!(err, ModalError::TransformRuntime { .. }));
    }

    #[test]
    fn cache_codec_round_trips_every_compile_shape() {
        let codegen = TransformCodegen::new();
        let schema = schema();
        // One description per compile path, including the century path whose
        // custom `source` must survive the round trip, and the yes/no path
        // whose CASE expression exercises the trickiest rendering.
        for description in [
            "CENTURY(inception)",
            "Extract the century from the inception dates",
            "Extract the year from the inception column",
            "Convert the yes/no madonna_depicted answers to numbers",
            "divide the points by 100",
            "difference between points and inception",
            "lowercase the title",
            "parse the inception as a number",
        ] {
            let program = codegen.compile(description, &schema).unwrap();
            let decoded = TransformProgram::from_cache_bytes(&program.cache_bytes(), &schema);
            assert_eq!(decoded.as_ref(), Some(&program), "for: {description}");
        }
    }

    #[test]
    fn cache_codec_rejects_garbage_and_schema_drift() {
        let codegen = TransformCodegen::new();
        let schema = schema();
        let program = codegen.compile("CENTURY(inception)", &schema).unwrap();
        let bytes = program.cache_bytes();
        // Truncation, non-UTF-8, and an unparsable expression all decode to
        // None rather than to a wrong program.
        assert_eq!(
            TransformProgram::from_cache_bytes(&bytes[..3], &schema),
            None
        );
        assert_eq!(TransformProgram::from_cache_bytes(b"", &schema), None);
        let mut flipped = bytes.clone();
        flipped[4] = 0xff;
        assert_eq!(TransformProgram::from_cache_bytes(&flipped, &schema), None);
        // A schema that lost the referenced column rejects the entry.
        let drifted = Schema::from_pairs(&[("title", DataType::Str)]);
        assert_eq!(TransformProgram::from_cache_bytes(&bytes, &drifted), None);
    }
}
