//! Error type for the multi-modal substrate.

use std::fmt;

/// Result alias for the modal crate.
pub type ModalResult<T> = Result<T, ModalError>;

/// Errors raised by multi-modal models and operators.
#[derive(Debug, Clone, PartialEq)]
pub enum ModalError {
    /// An image key could not be resolved in the image store.
    UnknownImage {
        /// The key that was looked up.
        key: String,
    },
    /// A question could not be understood by a QA model.
    UnanswerableQuestion {
        /// Which model rejected the question.
        model: String,
        /// The question text.
        question: String,
        /// Why it could not be answered.
        reason: String,
    },
    /// The transform DSL could not compile a natural-language description.
    TransformCompile {
        /// The description that could not be compiled.
        description: String,
        /// Why compilation failed.
        reason: String,
    },
    /// A transform program failed at runtime.
    TransformRuntime {
        /// Description of the failure.
        message: String,
    },
    /// A plot specification was invalid (missing axes, unknown kind, ...).
    InvalidPlot {
        /// Description of the problem.
        message: String,
    },
    /// The operator received arguments of the wrong type or arity.
    InvalidArguments {
        /// Which operator was called.
        operator: String,
        /// Description of the problem.
        message: String,
    },
    /// Error bubbled up from the relational engine.
    Engine(caesura_engine::EngineError),
}

impl fmt::Display for ModalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModalError::UnknownImage { key } => {
                write!(f, "image '{key}' was not found in the image store")
            }
            ModalError::UnanswerableQuestion {
                model,
                question,
                reason,
            } => write!(
                f,
                "{model} cannot answer the question '{question}': {reason}"
            ),
            ModalError::TransformCompile {
                description,
                reason,
            } => write!(
                f,
                "could not generate a transformation for '{description}': {reason}"
            ),
            ModalError::TransformRuntime { message } => {
                write!(f, "transformation failed: {message}")
            }
            ModalError::InvalidPlot { message } => write!(f, "invalid plot: {message}"),
            ModalError::InvalidArguments { operator, message } => {
                write!(f, "invalid arguments for operator '{operator}': {message}")
            }
            ModalError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ModalError {}

impl From<caesura_engine::EngineError> for ModalError {
    fn from(e: caesura_engine::EngineError) -> Self {
        ModalError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        let err = ModalError::UnknownImage {
            key: "img/7.png".into(),
        };
        assert!(err.to_string().contains("img/7.png"));
        let err = ModalError::UnanswerableQuestion {
            model: "VisualQA".into(),
            question: "How many swords?".into(),
            reason: "no count target".into(),
        };
        assert!(err.to_string().contains("VisualQA"));
    }

    #[test]
    fn engine_errors_convert() {
        let engine_err = caesura_engine::EngineError::execution("boom");
        let modal: ModalError = engine_err.into();
        assert!(matches!(modal, ModalError::Engine(_)));
    }
}
