//! Text documents: the substitute for the rotowire game reports.
//!
//! Reports are plain text; the simulated TextQA model works directly on the
//! string content (the documents flow through the relational engine inline as
//! `Value::Text`). This module adds light structure — sentence splitting and
//! number extraction — shared by the TextQA model and its tests.

/// A text document with a stable identifier.
#[derive(Debug, Clone, PartialEq)]
pub struct TextDocument {
    /// Document identifier (e.g. the `game_id` it belongs to).
    pub id: String,
    /// Full text content.
    pub content: String,
}

impl TextDocument {
    /// Create a document.
    pub fn new(id: impl Into<String>, content: impl Into<String>) -> Self {
        TextDocument {
            id: id.into(),
            content: content.into(),
        }
    }
}

/// Split text into sentences on `.`, `!`, and `?` boundaries, trimming
/// whitespace and dropping empties.
pub fn split_sentences(text: &str) -> Vec<&str> {
    text.split_inclusive(['.', '!', '?'])
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

/// Extract every integer appearing in a piece of text, in order.
pub fn extract_numbers(text: &str) -> Vec<i64> {
    let mut numbers = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i].is_ascii_digit() {
            let start = i;
            while i < chars.len() && chars[i].is_ascii_digit() {
                i += 1;
            }
            let run: String = chars[start..i].iter().collect();
            if let Ok(n) = run.parse::<i64>() {
                numbers.push(n);
            }
        } else {
            i += 1;
        }
    }
    numbers
}

/// Find the first number that appears immediately before a keyword
/// (e.g. `extract_number_before("scored 31 points", "points") == Some(31)`).
pub fn extract_number_before(text: &str, keyword: &str) -> Option<i64> {
    let lower = text.to_lowercase();
    let keyword = keyword.to_lowercase();
    let mut best: Option<i64> = None;
    let mut search_from = 0;
    while let Some(pos) = lower[search_from..].find(&keyword) {
        let abs = search_from + pos;
        let prefix = &lower[..abs];
        // Scan the prefix backwards for the closest number.
        let numbers = extract_numbers(prefix);
        if let Some(last) = numbers.last() {
            best = Some(*last);
            break;
        }
        search_from = abs + keyword.len();
        if search_from >= lower.len() {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentences_are_split_on_terminators() {
        let text =
            "The Spurs defeated the Heat 110-102. Tim Duncan scored 24 points! A great game?";
        let sentences = split_sentences(text);
        assert_eq!(sentences.len(), 3);
        assert!(sentences[0].starts_with("The Spurs"));
        assert!(sentences[1].contains("Duncan"));
    }

    #[test]
    fn numbers_are_extracted_in_order() {
        assert_eq!(extract_numbers("110-102 and 24 points"), vec![110, 102, 24]);
        assert_eq!(extract_numbers("no numbers"), Vec::<i64>::new());
    }

    #[test]
    fn number_before_keyword() {
        assert_eq!(
            extract_number_before("Tim Duncan scored 24 points and 9 rebounds", "points"),
            Some(24)
        );
        assert_eq!(
            extract_number_before("Tim Duncan scored 24 points and 9 rebounds", "rebounds"),
            Some(9)
        );
        assert_eq!(extract_number_before("no points here", "points"), None);
    }

    #[test]
    fn document_construction() {
        let doc = TextDocument::new("game_1", "The Heat won.");
        assert_eq!(doc.id, "game_1");
        assert!(doc.content.contains("Heat"));
    }
}
