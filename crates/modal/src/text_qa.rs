//! Simulated TextQA model (the BART substitute).
//!
//! The paper's TextQA operator takes a *question template* such as
//! `"How many points did <name> score?"`. The template is instantiated per row
//! using values from the input table (producing e.g. "How many points did Heat
//! score?") and answered against the report document of that row. This module
//! implements the reader; template instantiation happens in the operator layer.

use crate::batch::{PerceptionBackend, PerceptionInput, PerceptionRequest};
use crate::document::{extract_number_before, split_sentences};
use crate::error::{ModalError, ModalResult};
use crate::noise::NoiseModel;
use caesura_engine::Value;

/// The kind of question a TextQA model was asked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TextQuestion {
    /// "How many `<stat>` did `<subject>` `<verb>`?" → integer extraction.
    HowMany {
        /// The statistic keyword (points, rebounds, assists, ...).
        stat: String,
        /// The subject (team or player name).
        subject: String,
    },
    /// "Did `<subject>` win?" / "Did `<subject>` lose?" → yes/no.
    DidOutcome {
        /// The subject (team name).
        subject: String,
        /// `true` for "win", `false` for "lose".
        win: bool,
    },
    /// "Who won the game?" / "Who lost the game?" → a name.
    WhoOutcome {
        /// `true` for winner, `false` for loser.
        win: bool,
    },
}

/// Parse a (fully instantiated) natural-language question about a report.
pub fn parse_text_question(question: &str) -> ModalResult<TextQuestion> {
    let q = question.trim().trim_end_matches('?').to_lowercase();
    let unanswerable = |reason: &str| {
        Err(ModalError::UnanswerableQuestion {
            model: "TextQA".into(),
            question: question.to_string(),
            reason: reason.to_string(),
        })
    };

    if q.is_empty() {
        return unanswerable("the question is empty");
    }

    // "how many points did heat score" / "how many rebounds did lebron james grab"
    if let Some(rest) = q.strip_prefix("how many ") {
        if let Some((stat, tail)) = rest.split_once(" did ") {
            // Strip the trailing verb ("score", "grab", "have", ...).
            let words: Vec<&str> = tail.split_whitespace().collect();
            if words.len() < 2 {
                return unanswerable("could not identify the subject of the question");
            }
            let subject = words[..words.len() - 1].join(" ");
            return Ok(TextQuestion::HowMany {
                stat: stat.trim().to_string(),
                subject,
            });
        }
        // "how many points were scored by heat"
        if let Some((stat, tail)) = rest.split_once(" were ") {
            if let Some(subject) = tail.split(" by ").nth(1) {
                return Ok(TextQuestion::HowMany {
                    stat: stat.trim().to_string(),
                    subject: subject.trim().to_string(),
                });
            }
        }
        return unanswerable("counting questions must follow 'How many <stat> did <name> <verb>?'");
    }

    // "did heat win" / "did heat lose" / "did heat win the game"
    if let Some(rest) = q.strip_prefix("did ") {
        let rest = rest
            .trim_end_matches(" the game")
            .trim_end_matches(" this game");
        if let Some(subject) = rest.strip_suffix(" win") {
            return Ok(TextQuestion::DidOutcome {
                subject: subject.trim().to_string(),
                win: true,
            });
        }
        if let Some(subject) = rest.strip_suffix(" lose") {
            return Ok(TextQuestion::DidOutcome {
                subject: subject.trim().to_string(),
                win: false,
            });
        }
        return unanswerable("only win/lose outcome questions are supported for 'Did ...?'");
    }

    if q.starts_with("who won") {
        return Ok(TextQuestion::WhoOutcome { win: true });
    }
    if q.starts_with("who lost") {
        return Ok(TextQuestion::WhoOutcome { win: false });
    }

    unanswerable("the question does not match any supported text question pattern")
}

/// The simulated TextQA reader.
#[derive(Debug, Clone, Default)]
pub struct TextQaModel {
    noise: NoiseModel,
}

impl TextQaModel {
    /// A noiseless reader.
    pub fn new() -> Self {
        TextQaModel {
            noise: NoiseModel::none(),
        }
    }

    /// A reader that corrupts a fraction of its answers (deterministically).
    pub fn with_noise(noise: NoiseModel) -> Self {
        TextQaModel { noise }
    }

    /// Answer an instantiated question against a report document.
    ///
    /// Returns `Value::Null` when the document simply does not mention the
    /// subject (the reader cannot know the answer), and an error only when the
    /// question itself cannot be understood.
    pub fn answer(&self, document: &str, question: &str) -> ModalResult<Value> {
        let parsed = parse_text_question(question)?;
        let noise_key = {
            let prefix: String = document.chars().take(32).collect();
            format!("{prefix}\u{1}{question}")
        };
        let doc_lower = document.to_lowercase();
        Ok(match parsed {
            TextQuestion::HowMany { stat, subject } => {
                let subject_lower = subject.to_lowercase();
                // Find sentences mentioning the subject and the statistic, and
                // read the number that follows the *subject* (so that a
                // sentence covering both teams attributes the right figure).
                let mut answer: Option<i64> = None;
                for sentence in split_sentences(&doc_lower) {
                    if sentence.contains(&subject_lower) && sentence.contains(&stat) {
                        let subject_pos = sentence.find(&subject_lower).unwrap_or(0);
                        let after_subject = &sentence[subject_pos..];
                        if let Some(n) = extract_number_before(after_subject, &stat)
                            .or_else(|| extract_number_before(sentence, &stat))
                        {
                            answer = Some(n);
                            break;
                        }
                    }
                }
                match answer {
                    Some(mut n) => {
                        if self.noise.should_corrupt(&noise_key) {
                            n = self.noise.perturb_count(&noise_key, n);
                        }
                        Value::Int(n)
                    }
                    None => Value::Null,
                }
            }
            TextQuestion::DidOutcome { subject, win } => {
                let subject_lower = subject.to_lowercase();
                if !doc_lower.contains(&subject_lower) {
                    return Ok(Value::Null);
                }
                // Reports contain a sentence of the form
                // "The <winner> defeated the <loser> <a>-<b>." — the subject
                // won if it appears before "defeated" in that sentence.
                let mut won: Option<bool> = None;
                for sentence in split_sentences(&doc_lower) {
                    if let Some(pos) = sentence.find("defeated") {
                        let before = &sentence[..pos];
                        let after = &sentence[pos..];
                        if before.contains(&subject_lower) {
                            won = Some(true);
                            break;
                        }
                        if after.contains(&subject_lower) {
                            won = Some(false);
                            break;
                        }
                    }
                    // Alternative phrasing: "<winner> beat <loser>".
                    if let Some(pos) = sentence.find(" beat ") {
                        let before = &sentence[..pos];
                        let after = &sentence[pos..];
                        if before.contains(&subject_lower) {
                            won = Some(true);
                            break;
                        }
                        if after.contains(&subject_lower) {
                            won = Some(false);
                            break;
                        }
                    }
                }
                match won {
                    Some(mut outcome) => {
                        if !win {
                            outcome = !outcome;
                        }
                        if self.noise.should_corrupt(&noise_key) {
                            outcome = !outcome;
                        }
                        Value::str(if outcome { "yes" } else { "no" })
                    }
                    None => Value::Null,
                }
            }
            TextQuestion::WhoOutcome { win } => {
                // "The <winner> defeated the <loser> ..."
                let mut result = Value::Null;
                for sentence in split_sentences(document) {
                    let lower = sentence.to_lowercase();
                    if let Some(pos) = lower.find("defeated") {
                        let (before, after) = sentence.split_at(pos);
                        let name = if win {
                            clean_team_phrase(before)
                        } else {
                            clean_team_phrase(&after["defeated".len()..])
                        };
                        if !name.is_empty() {
                            result = Value::str(name);
                        }
                        break;
                    }
                }
                result
            }
        })
    }
}

impl PerceptionBackend for TextQaModel {
    /// Answer a batch request-by-request; the simulated reader has no
    /// per-call overhead, so batching only changes the dispatch granularity.
    fn answer_batch(&self, requests: &[PerceptionRequest]) -> Vec<ModalResult<Value>> {
        requests
            .iter()
            .map(|request| match &request.input {
                PerceptionInput::Document(document) => self.answer(document, &request.question),
                PerceptionInput::Image(_) => Err(ModalError::InvalidArguments {
                    operator: "Text Question Answering".to_string(),
                    message: "the TextQA model reads TEXT documents, not images".to_string(),
                }),
            })
            .collect()
    }

    /// Answers depend only on the document text and the noise configuration,
    /// so the identity versions exactly those.
    fn identity(&self) -> String {
        format!(
            "sim:text_qa:v1:noise={}@{}",
            self.noise.error_rate, self.noise.seed
        )
    }
}

/// Strip articles, scores, and punctuation from a phrase like
/// "The Miami Heat " or " the San Antonio Spurs 110-102." to get a team name.
fn clean_team_phrase(phrase: &str) -> String {
    let words: Vec<&str> = phrase
        .split_whitespace()
        .filter(|w| {
            let lower = w.to_lowercase();
            lower != "the"
                && !w
                    .chars()
                    .next()
                    .map(|c| c.is_ascii_digit())
                    .unwrap_or(false)
        })
        .collect();
    words
        .join(" ")
        .trim_end_matches(['.', ',', '!'])
        .trim()
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = "The San Antonio Spurs defeated the Miami Heat 110-102. \
        The Spurs scored 110 points in total while the Heat scored 102 points. \
        Tim Duncan scored 24 points, grabbed 11 rebounds and dished 3 assists. \
        LeBron James scored 31 points, grabbed 8 rebounds and dished 7 assists.";

    #[test]
    fn how_many_points_did_team_score() {
        let model = TextQaModel::new();
        assert_eq!(
            model
                .answer(REPORT, "How many points did Heat score?")
                .unwrap(),
            Value::Int(102)
        );
        assert_eq!(
            model
                .answer(REPORT, "How many points did Spurs score?")
                .unwrap(),
            Value::Int(110)
        );
    }

    #[test]
    fn how_many_stats_did_player_record() {
        let model = TextQaModel::new();
        assert_eq!(
            model
                .answer(REPORT, "How many points did LeBron James score?")
                .unwrap(),
            Value::Int(31)
        );
        assert_eq!(
            model
                .answer(REPORT, "How many rebounds did Tim Duncan grab?")
                .unwrap(),
            Value::Int(11)
        );
        assert_eq!(
            model
                .answer(REPORT, "How many assists did LeBron James dish?")
                .unwrap(),
            Value::Int(7)
        );
    }

    #[test]
    fn unknown_subjects_yield_null_not_errors() {
        let model = TextQaModel::new();
        assert_eq!(
            model
                .answer(REPORT, "How many points did Bulls score?")
                .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn win_lose_questions() {
        let model = TextQaModel::new();
        assert_eq!(
            model.answer(REPORT, "Did Spurs win?").unwrap(),
            Value::str("yes")
        );
        assert_eq!(
            model.answer(REPORT, "Did Heat win?").unwrap(),
            Value::str("no")
        );
        assert_eq!(
            model.answer(REPORT, "Did Heat lose?").unwrap(),
            Value::str("yes")
        );
        assert_eq!(
            model.answer(REPORT, "Did Spurs lose the game?").unwrap(),
            Value::str("no")
        );
        assert_eq!(
            model.answer(REPORT, "Did Lakers win?").unwrap(),
            Value::Null
        );
    }

    #[test]
    fn who_won_extracts_the_team_name() {
        let model = TextQaModel::new();
        let winner = model.answer(REPORT, "Who won the game?").unwrap();
        assert_eq!(winner, Value::str("San Antonio Spurs"));
        let loser = model.answer(REPORT, "Who lost the game?").unwrap();
        assert!(loser.to_string().contains("Miami Heat"));
    }

    #[test]
    fn unintelligible_questions_error_with_reason() {
        let model = TextQaModel::new();
        let err = model
            .answer(REPORT, "Summarize the report in one sentence")
            .unwrap_err();
        assert!(matches!(err, ModalError::UnanswerableQuestion { .. }));
        assert!(err.to_string().contains("TextQA"));
    }

    #[test]
    fn noise_perturbs_deterministically() {
        let noisy = TextQaModel::with_noise(NoiseModel::with_rate(1.0, 11));
        let a = noisy
            .answer(REPORT, "How many points did Heat score?")
            .unwrap();
        assert_ne!(a, Value::Int(102));
        let b = noisy
            .answer(REPORT, "How many points did Heat score?")
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn question_parser_handles_templates_after_instantiation() {
        assert_eq!(
            parse_text_question("How many points did Heat score?").unwrap(),
            TextQuestion::HowMany {
                stat: "points".into(),
                subject: "heat".into()
            }
        );
        assert_eq!(
            parse_text_question("Did Miami Heat lose?").unwrap(),
            TextQuestion::DidOutcome {
                subject: "miami heat".into(),
                win: false
            }
        );
        assert!(parse_text_question("What is the capital of France?").is_err());
    }
}
