//! Deterministic noise injection for the simulated perception models.
//!
//! Real VisualQA / TextQA models (BLIP-2, BART) are not perfectly accurate.
//! To let experiments study the effect of extraction noise without giving up
//! reproducibility, the simulated models accept a [`NoiseModel`]: a stateless,
//! hash-based corruption source. Whether a particular (item, question) pair is
//! corrupted depends only on the configured seed and error rate, never on call
//! order, so repeated runs produce identical outputs.

/// A stateless, deterministic noise source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Probability in `[0, 1]` that any given answer is corrupted.
    pub error_rate: f64,
    /// Seed mixed into the per-item hash.
    pub seed: u64,
}

impl NoiseModel {
    /// A noiseless model (the default used in the paper-reproduction runs,
    /// which grade *planning* quality, not perception quality).
    pub fn none() -> Self {
        NoiseModel {
            error_rate: 0.0,
            seed: 0,
        }
    }

    /// A noise model with the given error rate and seed.
    pub fn with_rate(error_rate: f64, seed: u64) -> Self {
        NoiseModel {
            error_rate: error_rate.clamp(0.0, 1.0),
            seed,
        }
    }

    /// Whether the answer identified by `key` should be corrupted.
    pub fn should_corrupt(&self, key: &str) -> bool {
        if self.error_rate <= 0.0 {
            return false;
        }
        if self.error_rate >= 1.0 {
            return true;
        }
        let hash = self.hash(key);
        // Map the hash to [0, 1).
        let unit = (hash >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.error_rate
    }

    /// Perturb an integer count deterministically (±1, never below zero).
    pub fn perturb_count(&self, key: &str, count: i64) -> i64 {
        let hash = self.hash(&format!("{key}/delta"));
        if hash.is_multiple_of(2) {
            count + 1
        } else {
            (count - 1).max(0)
        }
    }

    fn hash(&self, key: &str) -> u64 {
        // FNV-1a, mixed with the seed; deliberately simple and dependency-free.
        let mut hash: u64 = 0xcbf29ce484222325 ^ self.seed.wrapping_mul(0x9e3779b97f4a7c15);
        for byte in key.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x100000001b3);
        }
        hash
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_corrupts() {
        let noise = NoiseModel::none();
        assert!(!noise.should_corrupt("anything"));
    }

    #[test]
    fn full_rate_always_corrupts() {
        let noise = NoiseModel::with_rate(1.0, 42);
        assert!(noise.should_corrupt("a"));
        assert!(noise.should_corrupt("b"));
    }

    #[test]
    fn corruption_is_deterministic_per_key_and_seed() {
        let noise = NoiseModel::with_rate(0.5, 7);
        let first = noise.should_corrupt("img/1.png/How many swords?");
        let second = noise.should_corrupt("img/1.png/How many swords?");
        assert_eq!(first, second);
    }

    #[test]
    fn rate_roughly_matches_observed_frequency() {
        let noise = NoiseModel::with_rate(0.3, 99);
        let corrupted = (0..2000)
            .filter(|i| noise.should_corrupt(&format!("key-{i}")))
            .count();
        let rate = corrupted as f64 / 2000.0;
        assert!((rate - 0.3).abs() < 0.06, "observed rate {rate}");
    }

    #[test]
    fn perturb_count_never_goes_negative() {
        let noise = NoiseModel::with_rate(1.0, 1);
        for i in 0..20 {
            assert!(noise.perturb_count(&format!("k{i}"), 0) >= 0);
        }
    }

    #[test]
    fn rate_is_clamped() {
        assert_eq!(NoiseModel::with_rate(7.0, 0).error_rate, 1.0);
        assert_eq!(NoiseModel::with_rate(-1.0, 0).error_rate, 0.0);
    }
}
