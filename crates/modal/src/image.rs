//! Synthetic images: the substitute for the paper's Wikidata painting corpus.
//!
//! The original prototype runs BLIP-2 over real painting images. In this
//! reproduction an [`ImageObject`] carries a structured *scene annotation*
//! (which entities are depicted and how often, plus categorical attributes
//! such as the dominant colour). The simulated VisualQA / ImageSelect models
//! answer questions against this annotation, so the *operator contract* —
//! natural-language question in, per-image structured value out — is exactly
//! the one the planner has to reason about.

use std::collections::BTreeMap;

/// A single annotated image.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageObject {
    /// Stable key, e.g. `img/17.png`; also used as the join key (`img_path`).
    pub key: String,
    /// Depicted entities and how many of each are visible.
    /// Stored sorted so prompt renderings and answers are deterministic.
    pub objects: BTreeMap<String, u32>,
    /// Categorical attributes (e.g. `style -> baroque`, `dominant_color -> red`).
    pub attributes: BTreeMap<String, String>,
}

impl ImageObject {
    /// Create an image with no annotations.
    pub fn new(key: impl Into<String>) -> Self {
        ImageObject {
            key: key.into(),
            objects: BTreeMap::new(),
            attributes: BTreeMap::new(),
        }
    }

    /// Add a depicted entity with a count.
    pub fn with_object(mut self, name: impl Into<String>, count: u32) -> Self {
        self.objects.insert(normalize_entity(&name.into()), count);
        self
    }

    /// Add a categorical attribute.
    pub fn with_attribute(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes
            .insert(name.into().to_lowercase(), value.into());
        self
    }

    /// Number of instances of an entity visible in the image (0 if absent).
    pub fn count_of(&self, entity: &str) -> u32 {
        let entity = normalize_entity(entity);
        if let Some(count) = self.objects.get(&entity) {
            return *count;
        }
        // Fall back to a whole-word match for single-word entities, so that
        // "angel" still matches an annotation like "guardian angel". Phrases
        // with "and" must not fall back (otherwise "madonna and horse" would
        // match a "madonna" annotation).
        if !entity.contains(' ') {
            return self
                .objects
                .iter()
                .find(|(name, _)| name.split_whitespace().any(|word| word == entity))
                .map(|(_, count)| *count)
                .unwrap_or(0);
        }
        0
    }

    /// Whether an entity (or phrase of entities joined by "and") is depicted.
    pub fn depicts(&self, entity: &str) -> bool {
        let phrase = normalize_entity(entity);
        if self.count_of(&phrase) > 0 {
            return true;
        }
        // "madonna and child" → require every part to be depicted.
        let parts: Vec<&str> = phrase.split(" and ").collect();
        parts.len() > 1 && parts.iter().all(|p| self.count_of(p) > 0)
    }

    /// Attribute lookup (case-insensitive key).
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes
            .get(&name.to_lowercase())
            .map(String::as_str)
    }

    /// All depicted entity names, sorted.
    pub fn depicted_entities(&self) -> Vec<&str> {
        self.objects.keys().map(String::as_str).collect()
    }

    /// Human-readable caption (what a captioning model would produce).
    pub fn caption(&self) -> String {
        if self.objects.is_empty() {
            return "an abstract composition".to_string();
        }
        let parts: Vec<String> = self
            .objects
            .iter()
            .map(|(name, count)| {
                if *count == 1 {
                    format!("1 {name}")
                } else {
                    format!("{count} {name}s")
                }
            })
            .collect();
        format!("a painting depicting {}", parts.join(", "))
    }
}

/// Normalize an entity phrase: lowercase, trim, strip leading articles, and
/// strip a trailing plural 's' from the last word (so "a sword" / "swords" /
/// "sword" all refer to the same annotation).
pub fn normalize_entity(entity: &str) -> String {
    let mut lowered = entity.trim().to_lowercase();
    for article in ["a ", "an ", "the "] {
        if let Some(rest) = lowered.strip_prefix(article) {
            lowered = rest.to_string();
            break;
        }
    }
    let words: Vec<&str> = lowered.split_whitespace().collect();
    if words.is_empty() {
        return String::new();
    }
    let mut out: Vec<String> = words.iter().map(|w| w.to_string()).collect();
    let last = out.last_mut().expect("non-empty");
    if last.ends_with('s') && !last.ends_with("ss") && last.len() > 3 {
        last.pop();
    }
    out.join(" ")
}

/// A keyed collection of annotated images, addressable by image key.
#[derive(Debug, Clone, Default)]
pub struct ImageStore {
    images: BTreeMap<String, ImageObject>,
}

impl ImageStore {
    /// Create an empty store.
    pub fn new() -> Self {
        ImageStore::default()
    }

    /// Insert an image (replacing any previous image with the same key).
    pub fn insert(&mut self, image: ImageObject) {
        self.images.insert(image.key.clone(), image);
    }

    /// Look an image up by key.
    pub fn get(&self, key: &str) -> Option<&ImageObject> {
        self.images.get(key)
    }

    /// Number of stored images.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Iterate over all images in key order.
    pub fn iter(&self) -> impl Iterator<Item = &ImageObject> {
        self.images.values()
    }

    /// All keys in order.
    pub fn keys(&self) -> Vec<&str> {
        self.images.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn madonna_image() -> ImageObject {
        ImageObject::new("img/1.png")
            .with_object("Madonna", 1)
            .with_object("Child", 1)
            .with_object("sword", 2)
            .with_attribute("style", "renaissance")
    }

    #[test]
    fn count_of_handles_plural_and_case() {
        let img = madonna_image();
        assert_eq!(img.count_of("sword"), 2);
        assert_eq!(img.count_of("Swords"), 2);
        assert_eq!(img.count_of("SWORD"), 2);
        assert_eq!(img.count_of("horse"), 0);
    }

    #[test]
    fn depicts_supports_multi_entity_phrases() {
        let img = madonna_image();
        assert!(img.depicts("Madonna"));
        assert!(img.depicts("Madonna and Child"));
        assert!(!img.depicts("Madonna and Horse"));
    }

    #[test]
    fn attribute_lookup_is_case_insensitive() {
        let img = madonna_image();
        assert_eq!(img.attribute("Style"), Some("renaissance"));
        assert_eq!(img.attribute("genre"), None);
    }

    #[test]
    fn caption_describes_contents() {
        let caption = madonna_image().caption();
        assert!(caption.contains("madonna"));
        assert!(caption.contains("2 swords"));
        assert_eq!(ImageObject::new("x").caption(), "an abstract composition");
    }

    #[test]
    fn normalize_entity_strips_plurals_conservatively() {
        assert_eq!(normalize_entity("Swords"), "sword");
        assert_eq!(normalize_entity("glass"), "glass"); // double-s kept
        assert_eq!(normalize_entity("Madonna and Child"), "madonna and child");
        assert_eq!(normalize_entity("  Dogs "), "dog");
    }

    #[test]
    fn store_inserts_and_iterates_in_key_order() {
        let mut store = ImageStore::new();
        store.insert(ImageObject::new("img/2.png"));
        store.insert(ImageObject::new("img/1.png"));
        assert_eq!(store.len(), 2);
        assert_eq!(store.keys(), vec!["img/1.png", "img/2.png"]);
        assert!(store.get("img/1.png").is_some());
        assert!(store.get("img/9.png").is_none());
    }
}
