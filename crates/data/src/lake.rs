//! The multi-modal data lake abstraction.
//!
//! A [`DataLake`] bundles everything CAESURA needs to answer queries over one
//! scenario: the relational catalog (which also exposes image and text
//! collections as two-column tables, exactly as described in §3.1 / Figure 4
//! of the paper), the image store holding the scene annotations behind the
//! `IMAGE` column, and a free-text description per data source used by the
//! discovery phase's retrieval step.

use caesura_engine::{Catalog, ForeignKey, Table};
use caesura_modal::ImageStore;
use std::collections::BTreeMap;

/// A named multi-modal data lake.
#[derive(Debug, Clone, Default)]
pub struct DataLake {
    /// Human-readable name of the lake (e.g. "artwork", "rotowire").
    pub name: String,
    catalog: Catalog,
    images: ImageStore,
    descriptions: BTreeMap<String, String>,
}

impl DataLake {
    /// Create an empty lake.
    pub fn new(name: impl Into<String>) -> Self {
        DataLake {
            name: name.into(),
            catalog: Catalog::new(),
            images: ImageStore::new(),
            descriptions: BTreeMap::new(),
        }
    }

    /// Register a table together with the description shown to the retrieval
    /// step and (as part of the table summary) to the planner.
    pub fn add_table(&mut self, table: Table, description: impl Into<String>) {
        let description = description.into();
        let named = table.with_description(description.clone());
        self.descriptions
            .insert(named.name().to_string(), description);
        self.catalog.register(named);
    }

    /// Declare a foreign-key relationship between two registered tables.
    pub fn add_foreign_key(&mut self, fk: ForeignKey) {
        self.catalog.add_foreign_key(fk);
    }

    /// The relational catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the catalog (used by tests and extensions).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The image store backing all IMAGE columns of this lake.
    pub fn images(&self) -> &ImageStore {
        &self.images
    }

    /// Mutable access to the image store.
    pub fn images_mut(&mut self) -> &mut ImageStore {
        &mut self.images
    }

    /// Description of a data source, if registered.
    pub fn description_of(&self, table: &str) -> Option<&str> {
        self.descriptions.get(table).map(String::as_str)
    }

    /// `(source name, retrieval document)` pairs for the discovery phase.
    /// The retrieval document is the description plus the column names so that
    /// keyword retrieval can match on schema terms too.
    pub fn retrieval_documents(&self) -> Vec<(String, String)> {
        self.catalog
            .tables()
            .map(|table| {
                let description = self
                    .descriptions
                    .get(table.name())
                    .cloned()
                    .unwrap_or_default();
                let columns = table.schema().names().join(" ");
                (
                    table.name().to_string(),
                    format!("{} {} {}", table.name(), description, columns),
                )
            })
            .collect()
    }

    /// Number of registered data sources.
    pub fn num_sources(&self) -> usize {
        self.catalog.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesura_engine::{DataType, Schema, TableBuilder};
    use caesura_modal::ImageObject;

    fn lake() -> DataLake {
        let mut lake = DataLake::new("test");
        let schema = Schema::from_pairs(&[("img_path", DataType::Str), ("image", DataType::Image)]);
        let table = TableBuilder::new("painting_images", schema).build();
        lake.add_table(table, "Images of the paintings exhibited in the museum");
        lake.images_mut()
            .insert(ImageObject::new("img/1.png").with_object("madonna", 1));
        lake
    }

    #[test]
    fn tables_carry_their_descriptions() {
        let lake = lake();
        assert_eq!(lake.num_sources(), 1);
        assert!(lake
            .description_of("painting_images")
            .unwrap()
            .contains("museum"));
        assert!(lake
            .catalog()
            .table("painting_images")
            .unwrap()
            .prompt_summary()
            .contains("museum"));
    }

    #[test]
    fn retrieval_documents_include_schema_terms() {
        let docs = lake().retrieval_documents();
        assert_eq!(docs.len(), 1);
        assert!(docs[0].1.contains("img_path"));
        assert!(docs[0].1.contains("museum"));
    }

    #[test]
    fn image_store_is_shared() {
        let lake = lake();
        assert_eq!(lake.images().len(), 1);
        assert!(lake.images().get("img/1.png").is_some());
    }
}
