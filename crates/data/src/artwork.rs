//! The synthetic artwork data lake (the Wikidata-paintings substitute).
//!
//! The paper builds its artwork dataset from Wikidata: a metadata table with
//! "title, inception, movement, etc. for all Wikidata entities that are
//! instances of 'painting'", plus an image corpus of the artworks (§4). This
//! generator produces the same shape synthetically and deterministically:
//!
//! * `paintings_metadata(title, artist, inception, movement, genre, img_path)`
//! * `painting_images(img_path, image)` — the image collection presented as a
//!   two-column table so it can be joined like any other table (Figure 4),
//! * an [`ImageStore`](caesura_modal::ImageStore) with per-image scene
//!   annotations that the simulated VisualQA / Image Select models read.
//!
//! The generator also returns plain [`PaintingRecord`]s (the ground truth) so
//! the evaluation crate can compute reference answers without re-implementing
//! the planner.

use crate::lake::DataLake;
use crate::names;
use caesura_engine::{DataType, DateValue, ForeignKey, Schema, TableBuilder, Value};
use caesura_modal::ImageObject;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Configuration for the artwork generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtworkConfig {
    /// Number of paintings to generate.
    pub num_paintings: usize,
    /// RNG seed; the same seed always yields the same lake.
    pub seed: u64,
    /// Probability that a painting depicts Madonna and Child.
    pub madonna_probability: f64,
}

impl Default for ArtworkConfig {
    fn default() -> Self {
        ArtworkConfig {
            num_paintings: 150,
            seed: 42,
            madonna_probability: 0.25,
        }
    }
}

impl ArtworkConfig {
    /// A small configuration for fast unit tests.
    pub fn small() -> Self {
        ArtworkConfig {
            num_paintings: 40,
            seed: 7,
            madonna_probability: 0.3,
        }
    }

    /// The paper-scale configuration (7912 paintings, matching the
    /// `num_rows=7912` shown in the Figure 3 prompt).
    pub fn paper_scale() -> Self {
        ArtworkConfig {
            num_paintings: 7912,
            seed: 42,
            madonna_probability: 0.25,
        }
    }
}

/// Ground-truth record for one generated painting.
#[derive(Debug, Clone, PartialEq)]
pub struct PaintingRecord {
    /// Painting title.
    pub title: String,
    /// Artist name.
    pub artist: String,
    /// Inception as stored in the metadata table (string, varied formats).
    pub inception: String,
    /// Inception year (ground truth).
    pub year: i32,
    /// Century (1-based) derived from the year.
    pub century: i32,
    /// Art movement.
    pub movement: String,
    /// Genre.
    pub genre: String,
    /// Image path / join key.
    pub img_path: String,
    /// Depicted entities with counts (ground truth behind VisualQA).
    pub objects: BTreeMap<String, u32>,
    /// Whether Madonna and Child are depicted.
    pub madonna_and_child: bool,
}

impl PaintingRecord {
    /// Number of depicted instances of an entity (0 if absent).
    pub fn count_of(&self, entity: &str) -> u32 {
        self.objects.get(entity).copied().unwrap_or(0)
    }
}

/// The generated artwork dataset: the data lake plus the ground truth.
#[derive(Debug, Clone)]
pub struct ArtworkData {
    /// The multi-modal data lake registered for CAESURA.
    pub lake: DataLake,
    /// Ground-truth records, in the same order as the metadata table rows.
    pub records: Vec<PaintingRecord>,
}

/// Generate the artwork lake.
pub fn generate_artwork(config: &ArtworkConfig) -> ArtworkData {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut records = Vec::with_capacity(config.num_paintings);

    for i in 0..config.num_paintings {
        let year: i32 = rng.gen_range(1300..=1950);
        let century = DateValue::from_year(year).century();
        let inception = render_inception(&mut rng, year);
        let subject = names::TITLE_SUBJECTS[rng.gen_range(0..names::TITLE_SUBJECTS.len())];
        let suffix = names::TITLE_SUFFIXES[rng.gen_range(0..names::TITLE_SUFFIXES.len())];
        let title = format!("{subject} {suffix} No. {}", i + 1);
        let artist = names::ARTISTS[rng.gen_range(0..names::ARTISTS.len())].to_string();
        let movement = movement_for_year(year, &mut rng);
        let img_path = format!("img/{}.png", i + 1);

        let madonna_and_child = rng.gen_bool(config.madonna_probability);
        let mut objects = BTreeMap::new();
        if madonna_and_child {
            objects.insert("madonna".to_string(), 1);
            objects.insert("child".to_string(), 1 + rng.gen_range(0..2u32));
        }
        // A few additional depicted objects.
        let extra_objects = rng.gen_range(1..4usize);
        for _ in 0..extra_objects {
            let object =
                names::DEPICTABLE_OBJECTS[rng.gen_range(0..names::DEPICTABLE_OBJECTS.len())];
            let count = rng.gen_range(1..=5u32);
            objects.entry(object.to_string()).or_insert(count);
        }
        let genre = if madonna_and_child {
            "religious art".to_string()
        } else {
            names::GENRES[rng.gen_range(0..names::GENRES.len())].to_string()
        };

        records.push(PaintingRecord {
            title,
            artist,
            inception,
            year,
            century,
            movement,
            genre,
            img_path,
            objects,
            madonna_and_child,
        });
    }

    ArtworkData {
        lake: build_lake(&records),
        records,
    }
}

fn render_inception(rng: &mut StdRng, year: i32) -> String {
    match rng.gen_range(0..4) {
        0 => format!(
            "{year:04}-{:02}-{:02}",
            rng.gen_range(1..=12),
            rng.gen_range(1..=28)
        ),
        1 => format!("{year:04}"),
        2 => format!("c. {year:04}"),
        _ => format!("{year:04}-{:02}", rng.gen_range(1..=12)),
    }
}

fn movement_for_year(year: i32, rng: &mut StdRng) -> String {
    // Movements roughly track time; add jitter of ±1 slot.
    let slot = ((year - 1300) as usize * names::MOVEMENTS.len()) / 651;
    let jitter: i64 = rng.gen_range(-1..=1);
    let index = (slot as i64 + jitter).clamp(0, names::MOVEMENTS.len() as i64 - 1) as usize;
    names::MOVEMENTS[index].to_string()
}

fn build_lake(records: &[PaintingRecord]) -> DataLake {
    let mut lake = DataLake::new("artwork");

    let metadata_schema = Schema::from_pairs(&[
        ("title", DataType::Str),
        ("artist", DataType::Str),
        ("inception", DataType::Str),
        ("movement", DataType::Str),
        ("genre", DataType::Str),
        ("img_path", DataType::Str),
    ]);
    let mut metadata = TableBuilder::new("paintings_metadata", metadata_schema);
    let images_schema =
        Schema::from_pairs(&[("img_path", DataType::Str), ("image", DataType::Image)]);
    let mut images = TableBuilder::new("painting_images", images_schema);

    for record in records {
        metadata
            .push_row(vec![
                Value::str(&record.title),
                Value::str(&record.artist),
                Value::str(&record.inception),
                Value::str(&record.movement),
                Value::str(&record.genre),
                Value::str(&record.img_path),
            ])
            .expect("metadata row matches schema");
        images
            .push_row(vec![
                Value::str(&record.img_path),
                Value::image(&record.img_path),
            ])
            .expect("image row matches schema");

        let mut image = ImageObject::new(&record.img_path)
            .with_attribute("style", record.movement.to_lowercase())
            .with_attribute(
                "dominant color",
                names::COLORS[(record.year as usize) % names::COLORS.len()],
            );
        for (object, count) in &record.objects {
            image = image.with_object(object.clone(), *count);
        }
        lake.images_mut().insert(image);
    }

    lake.add_table(
        metadata.build(),
        "Metadata about the paintings exhibited in the museum: title, artist, inception date, \
         movement, genre and the path of the image of each painting",
    );
    lake.add_table(
        images.build(),
        "The images of the artworks; one picture per painting, addressed by img_path",
    );
    lake.add_foreign_key(ForeignKey::new(
        "paintings_metadata",
        "img_path",
        "painting_images",
        "img_path",
    ));
    lake
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = generate_artwork(&ArtworkConfig::small());
        let b = generate_artwork(&ArtworkConfig::small());
        assert_eq!(a.records, b.records);
        assert_eq!(
            a.lake
                .catalog()
                .table("paintings_metadata")
                .unwrap()
                .to_rows(),
            b.lake
                .catalog()
                .table("paintings_metadata")
                .unwrap()
                .to_rows()
        );
    }

    #[test]
    fn lake_contains_both_sources_with_matching_cardinalities() {
        let config = ArtworkConfig::small();
        let data = generate_artwork(&config);
        let metadata = data.lake.catalog().table("paintings_metadata").unwrap();
        let images = data.lake.catalog().table("painting_images").unwrap();
        assert_eq!(metadata.num_rows(), config.num_paintings);
        assert_eq!(images.num_rows(), config.num_paintings);
        assert_eq!(data.lake.images().len(), config.num_paintings);
        assert_eq!(data.records.len(), config.num_paintings);
    }

    #[test]
    fn image_annotations_match_the_ground_truth_records() {
        let data = generate_artwork(&ArtworkConfig::small());
        for record in &data.records {
            let image = data.lake.images().get(&record.img_path).unwrap();
            assert_eq!(
                image.depicts("madonna and child"),
                record.madonna_and_child,
                "annotation mismatch for {}",
                record.img_path
            );
            for (object, count) in &record.objects {
                assert_eq!(image.count_of(object), *count);
            }
        }
    }

    #[test]
    fn inception_strings_contain_the_ground_truth_year() {
        let data = generate_artwork(&ArtworkConfig::small());
        for record in &data.records {
            assert!(
                record.inception.contains(&format!("{:04}", record.year)),
                "inception '{}' does not contain year {}",
                record.inception,
                record.year
            );
            assert_eq!(DateValue::from_year(record.year).century(), record.century);
        }
    }

    #[test]
    fn madonna_probability_shapes_the_corpus() {
        let config = ArtworkConfig {
            num_paintings: 400,
            seed: 3,
            madonna_probability: 0.25,
        };
        let data = generate_artwork(&config);
        let madonna = data.records.iter().filter(|r| r.madonna_and_child).count();
        let rate = madonna as f64 / 400.0;
        assert!((rate - 0.25).abs() < 0.08, "observed rate {rate}");
    }

    #[test]
    fn foreign_key_between_metadata_and_images_is_declared() {
        let data = generate_artwork(&ArtworkConfig::small());
        let fks = data.lake.catalog().foreign_keys_for("paintings_metadata");
        assert_eq!(fks.len(), 1);
        assert_eq!(fks[0].to_table, "painting_images");
    }

    #[test]
    fn paper_scale_config_matches_figure3_cardinality() {
        assert_eq!(ArtworkConfig::paper_scale().num_paintings, 7912);
    }
}
