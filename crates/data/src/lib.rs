//! # caesura-data
//!
//! Synthetic multi-modal data lakes for the CAESURA reproduction.
//!
//! The paper evaluates on two hand-built datasets: an **artwork** lake
//! (painting metadata table + image corpus, derived from Wikidata) and an
//! extended **rotowire** lake (basketball game reports + team/player tables).
//! Neither corpus is redistributable, so this crate generates seeded synthetic
//! equivalents with the same schemas, join keys, and — crucially — recoverable
//! ground truth, which the evaluation crate uses to grade plans.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod artwork;
pub mod fieldwork;
pub mod lake;
pub mod names;
pub mod rotowire;

pub use artwork::{generate_artwork, ArtworkConfig, ArtworkData, PaintingRecord};
pub use fieldwork::{
    generate_fieldwork, ExpeditionLog, FieldworkConfig, FieldworkData, RegionRecord, StationRecord,
};
pub use lake::DataLake;
pub use rotowire::{
    generate_rotowire, GameRecord, PlayerLine, PlayerRecord, RotowireConfig, RotowireData,
    TeamRecord,
};
