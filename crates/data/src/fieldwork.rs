//! The synthetic fieldwork data lake (the third, multi-step benchmark lake).
//!
//! The artwork and rotowire lakes are two-table/four-table shapes where every
//! query needs at most one perception hop from the main table. This lake is
//! deliberately wider so that benchmark plans must chain three or more steps
//! crossing modalities:
//!
//! * `stations(name, region, terrain, founded, img_path)` — research stations,
//! * `station_photos(img_path, image)` — one photo per station (IMAGE column),
//! * `expedition_logs(log_id, name, report)` — textual expedition logs, many
//!   per station (TEXT column),
//! * `regions(region, climate)` — region metadata reachable only via a second
//!   relational hop.
//!
//! Three foreign keys cross modalities: `stations.img_path ->
//! station_photos.img_path`, `expedition_logs.name -> stations.name` and
//! `stations.region -> regions.region`. A query like "average number of
//! samples stored by each climate" therefore needs two joins, a TextQA
//! extraction and an aggregation before it can produce an answer.
//!
//! The generator also supports **adversarial corruption** for the benchmark's
//! adversarial tier: `missing_images` keeps the image *cell* in
//! `station_photos` but removes the backing [`ImageObject`] from the store
//! (so VisualQA must surface the typed "not found in the image store"
//! execution error), and `dirty_reports` replaces report cells with an
//! integer (so TextQA must surface the typed per-row cell-type error instead
//! of silently coercing to NULL).

use crate::lake::DataLake;
use crate::names;
use caesura_engine::{DataType, DateValue, ForeignKey, Schema, TableBuilder, Value};
use caesura_modal::ImageObject;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Configuration for the fieldwork generator.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldworkConfig {
    /// Number of stations (max 16, the size of the name pool).
    pub num_stations: usize,
    /// Number of expedition logs per station.
    pub logs_per_station: usize,
    /// RNG seed; the same seed always yields the same lake.
    pub seed: u64,
    /// Number of stations (taken from the end) whose photo cell stays in the
    /// `station_photos` table but whose [`ImageObject`] is removed from the
    /// image store — the "missing image" adversarial corruption.
    pub missing_images: usize,
    /// Number of logs (taken from the end) whose report cell is replaced by
    /// an integer — the "dirty cell" adversarial corruption.
    pub dirty_reports: usize,
}

impl Default for FieldworkConfig {
    fn default() -> Self {
        FieldworkConfig {
            num_stations: 12,
            logs_per_station: 3,
            seed: 42,
            missing_images: 0,
            dirty_reports: 0,
        }
    }
}

impl FieldworkConfig {
    /// A small configuration for fast unit tests.
    pub fn small() -> Self {
        FieldworkConfig {
            num_stations: 8,
            logs_per_station: 2,
            seed: 7,
            missing_images: 0,
            dirty_reports: 0,
        }
    }

    /// The adversarial configuration used by the benchmark's corrupted-lake
    /// tier: same records as [`Default`], plus missing images and dirty
    /// report cells.
    pub fn adversarial() -> Self {
        FieldworkConfig {
            missing_images: 2,
            dirty_reports: 2,
            ..FieldworkConfig::default()
        }
    }
}

/// Ground-truth record for one station.
#[derive(Debug, Clone, PartialEq)]
pub struct StationRecord {
    /// Station name, primary key of the stations table.
    pub name: String,
    /// Survey region (foreign key into the regions table).
    pub region: String,
    /// Terrain class.
    pub terrain: String,
    /// Founding year as stored in the table (a date string).
    pub founded: String,
    /// Founding year (ground truth).
    pub year: i32,
    /// Century (1-based) derived from the year.
    pub century: i32,
    /// Photo path / join key into `station_photos`.
    pub img_path: String,
    /// Entities depicted in the station photo, with counts.
    pub objects: BTreeMap<String, u32>,
    /// Whether the adversarial lake dropped this photo from the image store.
    pub image_missing: bool,
}

impl StationRecord {
    /// Number of depicted instances of an entity (0 if absent).
    pub fn count_of(&self, entity: &str) -> u32 {
        self.objects.get(entity).copied().unwrap_or(0)
    }
}

/// Ground-truth record for one expedition log.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpeditionLog {
    /// Log identifier.
    pub log_id: i64,
    /// The station the log belongs to.
    pub station: String,
    /// Specimens collected on this expedition.
    pub specimens: i64,
    /// Instrument readings logged on this expedition.
    pub readings: i64,
    /// Samples stored on this expedition.
    pub samples: i64,
    /// Whether the adversarial lake replaced this report cell by an integer.
    pub dirty: bool,
}

impl ExpeditionLog {
    /// Render the textual report fed into the `expedition_logs` table. Each
    /// statistic lives in its own sentence, subject-first, so the simulated
    /// TextQA reader can recover it.
    pub fn render_report(&self, terrain: &str) -> String {
        format!(
            "{name} collected {specimens} specimens. {name} logged {readings} readings. \
             {name} stored {samples} samples. Conditions on the {terrain} stayed workable.",
            name = self.station,
            specimens = self.specimens,
            readings = self.readings,
            samples = self.samples,
        )
    }
}

/// Ground-truth record for one region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionRecord {
    /// Region name, primary key of the regions table.
    pub region: String,
    /// Climate class.
    pub climate: String,
}

/// The generated fieldwork dataset: the data lake plus the ground truth.
#[derive(Debug, Clone)]
pub struct FieldworkData {
    /// The multi-modal data lake registered for CAESURA.
    pub lake: DataLake,
    /// Station ground truth, in table-row order.
    pub stations: Vec<StationRecord>,
    /// Expedition-log ground truth, in table-row order.
    pub logs: Vec<ExpeditionLog>,
    /// Region ground truth, in table-row order.
    pub regions: Vec<RegionRecord>,
}

impl FieldworkData {
    /// The station record with the given name.
    pub fn station(&self, name: &str) -> Option<&StationRecord> {
        self.stations.iter().find(|s| s.name == name)
    }

    /// All logs of one station, in row order.
    pub fn logs_of(&self, station: &str) -> Vec<&ExpeditionLog> {
        self.logs.iter().filter(|l| l.station == station).collect()
    }

    /// The climate of a region (empty string if unknown).
    pub fn climate_of(&self, region: &str) -> String {
        self.regions
            .iter()
            .find(|r| r.region == region)
            .map(|r| r.climate.clone())
            .unwrap_or_default()
    }
}

/// Generate the fieldwork lake.
pub fn generate_fieldwork(config: &FieldworkConfig) -> FieldworkData {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let num_stations = config.num_stations.clamp(2, names::STATION_NAMES.len());

    let regions: Vec<RegionRecord> = names::REGIONS
        .iter()
        .enumerate()
        .map(|(i, region)| RegionRecord {
            region: region.to_string(),
            climate: names::CLIMATES[i % names::CLIMATES.len()].to_string(),
        })
        .collect();

    let mut stations = Vec::with_capacity(num_stations);
    for i in 0..num_stations {
        let year: i32 = rng.gen_range(1850..=1979);
        let century = DateValue::from_year(year).century();
        // Round-robin over the object pool so every depictable entity shows
        // up in several photos even at small scale; counts stay random.
        let mut objects = BTreeMap::new();
        for offset in [0usize, 3, 6] {
            let object = names::FIELD_OBJECTS[(i + offset) % names::FIELD_OBJECTS.len()];
            objects.insert(object.to_string(), rng.gen_range(1..=5u32));
        }
        stations.push(StationRecord {
            name: names::STATION_NAMES[i].to_string(),
            region: names::REGIONS[i % names::REGIONS.len()].to_string(),
            terrain: names::TERRAINS[i % names::TERRAINS.len()].to_string(),
            founded: format!("{year:04}"),
            year,
            century,
            img_path: format!("photos/{}.png", i + 1),
            objects,
            image_missing: false,
        });
    }
    for station in stations.iter_mut().rev().take(config.missing_images) {
        station.image_missing = true;
    }

    let mut logs = Vec::with_capacity(num_stations * config.logs_per_station);
    let mut log_id = 0i64;
    for station in &stations {
        for _ in 0..config.logs_per_station {
            log_id += 1;
            logs.push(ExpeditionLog {
                log_id,
                station: station.name.clone(),
                specimens: rng.gen_range(2..=40),
                readings: rng.gen_range(1..=30),
                samples: rng.gen_range(1..=20),
                dirty: false,
            });
        }
    }
    for log in logs.iter_mut().rev().take(config.dirty_reports) {
        log.dirty = true;
    }

    let data = FieldworkData {
        lake: DataLake::new("fieldwork"),
        stations,
        logs,
        regions,
    };
    let lake = build_lake(&data);
    FieldworkData { lake, ..data }
}

fn build_lake(data: &FieldworkData) -> DataLake {
    let mut lake = DataLake::new("fieldwork");

    let stations_schema = Schema::from_pairs(&[
        ("name", DataType::Str),
        ("region", DataType::Str),
        ("terrain", DataType::Str),
        ("founded", DataType::Str),
        ("img_path", DataType::Str),
    ]);
    let mut stations = TableBuilder::new("stations", stations_schema);
    let photos_schema =
        Schema::from_pairs(&[("img_path", DataType::Str), ("image", DataType::Image)]);
    let mut photos = TableBuilder::new("station_photos", photos_schema);
    for station in &data.stations {
        stations
            .push_row(vec![
                Value::str(&station.name),
                Value::str(&station.region),
                Value::str(&station.terrain),
                Value::str(&station.founded),
                Value::str(&station.img_path),
            ])
            .expect("station row matches schema");
        photos
            .push_row(vec![
                Value::str(&station.img_path),
                Value::image(&station.img_path),
            ])
            .expect("photo row matches schema");
        if !station.image_missing {
            let mut image = ImageObject::new(&station.img_path)
                .with_attribute("terrain", station.terrain.to_lowercase());
            for (object, count) in &station.objects {
                image = image.with_object(object.clone(), *count);
            }
            lake.images_mut().insert(image);
        }
    }

    let logs_schema = Schema::from_pairs(&[
        ("log_id", DataType::Int),
        ("name", DataType::Str),
        ("report", DataType::Text),
    ]);
    let mut logs = TableBuilder::new("expedition_logs", logs_schema);
    for log in &data.logs {
        let report_cell = if log.dirty {
            // The dirty-cell corruption: an integer where a TEXT document
            // belongs. The builder keeps mistyped cells (the dynamic-typing
            // escape hatch) so the TextQA operator can surface its typed
            // per-row error at execution time.
            Value::Int(404)
        } else {
            let terrain = data
                .station(&log.station)
                .map(|s| s.terrain.to_lowercase())
                .unwrap_or_default();
            Value::text(log.render_report(&terrain))
        };
        logs.push_row(vec![
            Value::Int(log.log_id),
            Value::str(&log.station),
            report_cell,
        ])
        .expect("log row matches schema");
    }

    let regions_schema =
        Schema::from_pairs(&[("region", DataType::Str), ("climate", DataType::Str)]);
    let mut regions = TableBuilder::new("regions", regions_schema);
    for region in &data.regions {
        regions
            .push_row(vec![
                Value::str(&region.region),
                Value::str(&region.climate),
            ])
            .expect("region row matches schema");
    }

    lake.add_table(
        stations.build(),
        "General information about every research station: name, survey region, terrain class, \
         founding date and the path of the station photo",
    );
    lake.add_table(
        photos.build(),
        "The photos of the research stations; one picture per station, addressed by img_path",
    );
    lake.add_table(
        logs.build(),
        "Textual expedition logs of the research stations, several per station, containing the \
         number of specimens collected, readings logged and samples stored on each expedition",
    );
    lake.add_table(
        regions.build(),
        "Metadata about every survey region: region name and climate class",
    );
    lake.add_foreign_key(ForeignKey::new(
        "stations",
        "img_path",
        "station_photos",
        "img_path",
    ));
    lake.add_foreign_key(ForeignKey::new(
        "expedition_logs",
        "name",
        "stations",
        "name",
    ));
    lake.add_foreign_key(ForeignKey::new("stations", "region", "regions", "region"));
    lake
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesura_modal::TextQaModel;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_fieldwork(&FieldworkConfig::small());
        let b = generate_fieldwork(&FieldworkConfig::small());
        assert_eq!(a.stations, b.stations);
        assert_eq!(a.logs, b.logs);
        assert_eq!(a.regions, b.regions);
    }

    #[test]
    fn lake_contains_all_four_sources() {
        let config = FieldworkConfig::small();
        let data = generate_fieldwork(&config);
        let catalog = data.lake.catalog();
        assert_eq!(
            catalog.table("stations").unwrap().num_rows(),
            config.num_stations
        );
        assert_eq!(
            catalog.table("station_photos").unwrap().num_rows(),
            config.num_stations
        );
        assert_eq!(
            catalog.table("expedition_logs").unwrap().num_rows(),
            config.num_stations * config.logs_per_station
        );
        assert_eq!(
            catalog.table("regions").unwrap().num_rows(),
            names::REGIONS.len()
        );
        assert_eq!(data.lake.images().len(), config.num_stations);
    }

    #[test]
    fn foreign_keys_cross_all_three_modalities() {
        let data = generate_fieldwork(&FieldworkConfig::small());
        let summary = data.lake.catalog().prompt_summary();
        assert!(summary.contains("stations.img_path -> station_photos.img_path"));
        assert!(summary.contains("expedition_logs.name -> stations.name"));
        assert!(summary.contains("stations.region -> regions.region"));
    }

    #[test]
    fn text_qa_can_recover_the_ground_truth_from_generated_logs() {
        let data = generate_fieldwork(&FieldworkConfig::small());
        let model = TextQaModel::new();
        for log in &data.logs {
            let terrain = data.station(&log.station).unwrap().terrain.to_lowercase();
            let report = log.render_report(&terrain);
            for (stat, verb, expected) in [
                ("specimens", "collect", log.specimens),
                ("readings", "log", log.readings),
                ("samples", "store", log.samples),
            ] {
                let question = format!("How many {stat} did {} {verb}?", log.station);
                assert_eq!(
                    model.answer(&report, &question).unwrap(),
                    Value::Int(expected),
                    "wrong {stat} extraction for log {}",
                    log.log_id
                );
            }
        }
    }

    #[test]
    fn image_annotations_match_the_ground_truth_records() {
        let data = generate_fieldwork(&FieldworkConfig::small());
        for station in &data.stations {
            let image = data.lake.images().get(&station.img_path).unwrap();
            for (object, count) in &station.objects {
                assert_eq!(image.count_of(object), *count);
            }
        }
    }

    #[test]
    fn every_field_object_is_depicted_somewhere_at_default_scale() {
        let data = generate_fieldwork(&FieldworkConfig::default());
        for object in names::FIELD_OBJECTS {
            assert!(
                data.stations.iter().any(|s| s.count_of(object) > 0),
                "object {object} never depicted; benchmark queries about it would be degenerate"
            );
        }
    }

    #[test]
    fn founded_strings_contain_the_ground_truth_year() {
        let data = generate_fieldwork(&FieldworkConfig::small());
        for station in &data.stations {
            assert!(station.founded.contains(&format!("{:04}", station.year)));
            assert_eq!(
                DateValue::from_year(station.year).century(),
                station.century
            );
        }
    }

    #[test]
    fn adversarial_config_corrupts_exactly_the_advertised_rows() {
        let config = FieldworkConfig::adversarial();
        let data = generate_fieldwork(&config);

        let missing: Vec<&StationRecord> =
            data.stations.iter().filter(|s| s.image_missing).collect();
        assert_eq!(missing.len(), config.missing_images);
        for station in &missing {
            // The cell survives in the photos table but the store has no
            // backing object: exactly the shape that must surface as the
            // typed "not found in the image store" execution error.
            assert!(data.lake.images().get(&station.img_path).is_none());
        }
        assert_eq!(
            data.lake.images().len(),
            config.num_stations - config.missing_images
        );

        let dirty: Vec<&ExpeditionLog> = data.logs.iter().filter(|l| l.dirty).collect();
        assert_eq!(dirty.len(), config.dirty_reports);

        // The clean ground truth is identical to the default config: the
        // corruption only changes the lake, never the oracle.
        let clean = generate_fieldwork(&FieldworkConfig::default());
        assert_eq!(clean.stations.len(), data.stations.len());
        for (a, b) in clean.logs.iter().zip(&data.logs) {
            assert_eq!(
                (a.specimens, a.readings, a.samples),
                (b.specimens, b.readings, b.samples)
            );
        }
    }

    #[test]
    fn clean_config_has_no_corruption() {
        let data = generate_fieldwork(&FieldworkConfig::default());
        assert!(data.stations.iter().all(|s| !s.image_missing));
        assert!(data.logs.iter().all(|l| !l.dirty));
        assert_eq!(data.lake.images().len(), data.stations.len());
    }
}
