//! Name pools used by the synthetic data generators.
//!
//! Kept in one place so the artwork and rotowire generators stay readable and
//! so tests can assert that pools do not produce ambiguous names (a team name
//! must never be a substring of another team or player name, otherwise the
//! simulated TextQA reader could attribute a statistic to the wrong subject).

/// Painting title fragments (combined into titles like "Madonna of the Grove").
pub const TITLE_SUBJECTS: &[&str] = &[
    "Madonna",
    "Irises",
    "The Scream",
    "Starry Night",
    "The Kiss",
    "Liberty",
    "The Hunters",
    "Venus",
    "Saint George",
    "The Tower",
    "Composition",
    "Nocturne",
    "The Bridge",
    "Sunflowers",
    "The Harvest",
    "Judith",
    "The Storm",
    "Lady",
    "Knight",
    "Allegory",
];

/// Painting title suffixes.
pub const TITLE_SUFFIXES: &[&str] = &[
    "of the Grove",
    "in Blue",
    "at Dusk",
    "with Child",
    "of Delft",
    "in Winter",
    "by the Sea",
    "of the Rocks",
    "in the Garden",
    "at the Window",
    "of the North",
    "with Swords",
    "in the Meadow",
    "of the Annunciation",
    "at Dawn",
    "with a Pearl",
];

/// Artist names (synthetic, loosely old-masters flavoured).
pub const ARTISTS: &[&str] = &[
    "Giovanni Alberti",
    "Pieter van Hoorn",
    "Clara Moreau",
    "Diego Navarro",
    "Anna Lindqvist",
    "Matthias Keller",
    "Sofia Rinaldi",
    "Jan de Witte",
    "Elena Petrova",
    "Lucas Brandt",
    "Isabella Conti",
    "Henrik Dahl",
];

/// Art movements (paired loosely with centuries by the generator).
pub const MOVEMENTS: &[&str] = &[
    "Renaissance",
    "Baroque",
    "Rococo",
    "Romanticism",
    "Realism",
    "Impressionism",
    "Expressionism",
    "Cubism",
    "Surrealism",
];

/// Painting genres.
pub const GENRES: &[&str] = &[
    "religious art",
    "portrait",
    "landscape",
    "still life",
    "history painting",
    "genre painting",
    "mythological painting",
];

/// Entities that can be depicted in a painting (besides Madonna and Child).
pub const DEPICTABLE_OBJECTS: &[&str] = &[
    "sword", "horse", "dog", "angel", "tree", "flower", "crown", "ship", "bird", "book", "skull",
    "apple", "violin", "candle",
];

/// Dominant colours used as image attributes.
pub const COLORS: &[&str] = &["red", "blue", "gold", "green", "ochre", "grey"];

/// NBA-flavoured team nicknames. These are the values of the `name` column of
/// the `teams` table, and the subjects of TextQA questions.
pub const TEAM_NAMES: &[&str] = &[
    "Heat",
    "Spurs",
    "Bulls",
    "Lakers",
    "Celtics",
    "Warriors",
    "Hawks",
    "Nets",
    "Knicks",
    "Suns",
    "Jazz",
    "Magic",
    "Kings",
    "Pistons",
    "Rockets",
    "Thunder",
    "Raptors",
    "Mavericks",
    "Nuggets",
    "Clippers",
    "Grizzlies",
    "Pelicans",
    "Wizards",
    "Bucks",
];

/// Home cities paired positionally with [`TEAM_NAMES`].
pub const TEAM_CITIES: &[&str] = &[
    "Miami",
    "San Antonio",
    "Chicago",
    "Los Angeles",
    "Boston",
    "Golden State",
    "Atlanta",
    "Brooklyn",
    "New York",
    "Phoenix",
    "Utah",
    "Orlando",
    "Sacramento",
    "Detroit",
    "Houston",
    "Oklahoma City",
    "Toronto",
    "Dallas",
    "Denver",
    "Los Angeles",
    "Memphis",
    "New Orleans",
    "Washington",
    "Milwaukee",
];

/// Division names per conference.
pub const DIVISIONS: &[&str] = &[
    "Atlantic",
    "Central",
    "Southeast",
    "Northwest",
    "Pacific",
    "Southwest",
];

/// Player first names.
pub const PLAYER_FIRST_NAMES: &[&str] = &[
    "Marcus", "Jalen", "Devin", "Tyrese", "Andre", "Luka", "Nikola", "Giannis", "Trae", "Damian",
    "Victor", "Jaylen", "Kawhi", "Zion", "Darius", "Malik", "Jordan", "Aaron",
];

/// Player last names (deliberately disjoint from team nicknames).
pub const PLAYER_LAST_NAMES: &[&str] = &[
    "Johnson", "Williams", "Carter", "Mitchell", "Brunson", "Porter", "Edwards", "Murray",
    "Holiday", "Barnes", "Ingram", "Maxey", "Garland", "Sexton", "Bridges", "Allen", "White",
    "Quickley",
];

/// Player nationalities.
pub const NATIONALITIES: &[&str] = &[
    "USA",
    "Canada",
    "France",
    "Germany",
    "Serbia",
    "Greece",
    "Australia",
    "Spain",
    "Slovenia",
    "Nigeria",
];

/// Player positions.
pub const POSITIONS: &[&str] = &["Guard", "Forward", "Center"];

/// Research-station names. These are the values of the `name` column of the
/// fieldwork `stations` table and the subjects of TextQA questions over the
/// expedition logs, so — like [`TEAM_NAMES`] — no name may be a substring of
/// another.
pub const STATION_NAMES: &[&str] = &[
    "Brightwater",
    "Coldridge",
    "Duskfall",
    "Eastwind",
    "Frostholm",
    "Greyrock",
    "Highmoor",
    "Icevale",
    "Larkspur",
    "Moorland",
    "Northgate",
    "Oakhaven",
    "Pinewatch",
    "Ravenhill",
    "Stonebrook",
    "Thornfield",
];

/// Survey regions (single capitalized words so categorical filters like
/// "in the Westfjord region" parse unambiguously).
pub const REGIONS: &[&str] = &[
    "Northreach",
    "Southmere",
    "Westfjord",
    "Eastholm",
    "Midlands",
    "Polarfront",
];

/// Terrain classes of the stations.
pub const TERRAINS: &[&str] = &["Tundra", "Icefield", "Fjord", "Moraine", "Highland"];

/// Climate classes of the regions table.
pub const CLIMATES: &[&str] = &["Polar", "Subarctic", "Maritime", "Continental"];

/// Entities that can be depicted in station photos. Deliberately disjoint
/// from [`DEPICTABLE_OBJECTS`] and from the expedition-log statistic words
/// (specimens / readings / samples).
pub const FIELD_OBJECTS: &[&str] = &[
    "penguin", "seal", "husky", "tent", "sledge", "antenna", "flag", "crate", "lantern", "kayak",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn team_names_and_cities_are_aligned_and_unique() {
        assert_eq!(TEAM_NAMES.len(), TEAM_CITIES.len());
        for (i, a) in TEAM_NAMES.iter().enumerate() {
            for (j, b) in TEAM_NAMES.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "duplicate team name {a}");
                }
            }
        }
    }

    #[test]
    fn team_names_are_never_substrings_of_each_other() {
        for (i, a) in TEAM_NAMES.iter().enumerate() {
            for (j, b) in TEAM_NAMES.iter().enumerate() {
                if i != j {
                    assert!(
                        !a.to_lowercase().contains(&b.to_lowercase()),
                        "{a} contains {b}; TextQA subject matching would be ambiguous"
                    );
                }
            }
        }
    }

    #[test]
    fn player_names_do_not_collide_with_team_names() {
        for last in PLAYER_LAST_NAMES {
            for team in TEAM_NAMES {
                assert!(
                    !last.to_lowercase().contains(&team.to_lowercase()),
                    "player last name {last} contains team name {team}"
                );
            }
        }
    }

    #[test]
    fn pools_are_non_empty() {
        for pool in [
            TITLE_SUBJECTS,
            TITLE_SUFFIXES,
            ARTISTS,
            MOVEMENTS,
            GENRES,
            DEPICTABLE_OBJECTS,
            COLORS,
            DIVISIONS,
            PLAYER_FIRST_NAMES,
            PLAYER_LAST_NAMES,
            NATIONALITIES,
            POSITIONS,
            STATION_NAMES,
            REGIONS,
            TERRAINS,
            CLIMATES,
            FIELD_OBJECTS,
        ] {
            assert!(!pool.is_empty());
        }
    }

    #[test]
    fn station_names_are_never_substrings_of_each_other() {
        for (i, a) in STATION_NAMES.iter().enumerate() {
            for (j, b) in STATION_NAMES.iter().enumerate() {
                if i != j {
                    assert!(
                        !a.to_lowercase().contains(&b.to_lowercase()),
                        "{a} contains {b}; TextQA subject matching would be ambiguous"
                    );
                }
            }
        }
    }

    #[test]
    fn station_names_do_not_collide_with_log_statistic_words() {
        for name in STATION_NAMES {
            for stat in ["specimens", "readings", "samples"] {
                assert!(
                    !name.to_lowercase().contains(stat),
                    "station name {name} contains statistic word {stat}"
                );
            }
        }
    }

    #[test]
    fn fieldwork_value_pools_are_single_capitalized_words() {
        // Categorical filters ("in the Westfjord region", "on the Tundra
        // terrain") pick up exactly one capitalized word before the keyword,
        // so multi-word values would silently truncate.
        for pool in [STATION_NAMES, REGIONS, TERRAINS, CLIMATES] {
            for value in pool {
                assert!(!value.contains(' '), "{value} is not a single word");
                assert!(
                    value.chars().next().unwrap().is_uppercase(),
                    "{value} is not capitalized"
                );
            }
        }
    }
}
