//! The synthetic rotowire data lake (tables + text).
//!
//! The paper's second dataset extends the rotowire corpus of basketball game
//! reports with two Wikidata-derived tables: a `teams` table (name, conference,
//! division, ...) and a `players` table (name, height, nationality, ...), §4.
//! This generator creates a deterministic synthetic equivalent:
//!
//! * `teams(name, city, conference, division, founded)`
//! * `players(name, team, height_cm, nationality, position)`
//! * `team_to_games(name, game_id)` — which teams played in which game,
//! * `game_reports(game_id, report)` — the textual reports (TEXT column),
//!   generated from per-game ground-truth statistics so that the simulated
//!   TextQA reader can extract them and the evaluation can check answers.

use crate::lake::DataLake;
use crate::names;
use caesura_engine::{DataType, ForeignKey, Schema, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the rotowire generator.
#[derive(Debug, Clone, PartialEq)]
pub struct RotowireConfig {
    /// Number of teams (max 24, the size of the name pool).
    pub num_teams: usize,
    /// Number of players generated per team.
    pub players_per_team: usize,
    /// Number of games.
    pub num_games: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RotowireConfig {
    fn default() -> Self {
        RotowireConfig {
            num_teams: 12,
            players_per_team: 5,
            num_games: 60,
            seed: 42,
        }
    }
}

impl RotowireConfig {
    /// A small configuration for fast unit tests.
    pub fn small() -> Self {
        RotowireConfig {
            num_teams: 6,
            players_per_team: 3,
            num_games: 12,
            seed: 7,
        }
    }
}

/// Ground-truth record for one team.
#[derive(Debug, Clone, PartialEq)]
pub struct TeamRecord {
    /// Team nickname (`Heat`, `Spurs`, ...), primary key of the teams table.
    pub name: String,
    /// Home city.
    pub city: String,
    /// Conference (`Eastern` / `Western`).
    pub conference: String,
    /// Division.
    pub division: String,
    /// Founding year.
    pub founded: i64,
}

/// Ground-truth record for one player.
#[derive(Debug, Clone, PartialEq)]
pub struct PlayerRecord {
    /// Full player name.
    pub name: String,
    /// The team the player belongs to.
    pub team: String,
    /// Height in centimetres.
    pub height_cm: i64,
    /// Nationality.
    pub nationality: String,
    /// Position.
    pub position: String,
}

/// One player's statistics in one game.
#[derive(Debug, Clone, PartialEq)]
pub struct PlayerLine {
    /// Player name.
    pub name: String,
    /// The player's team.
    pub team: String,
    /// Points scored.
    pub points: i64,
    /// Rebounds grabbed.
    pub rebounds: i64,
    /// Assists dished.
    pub assists: i64,
}

/// Ground-truth record for one game.
#[derive(Debug, Clone, PartialEq)]
pub struct GameRecord {
    /// Game identifier.
    pub game_id: i64,
    /// Home team nickname.
    pub home: String,
    /// Away team nickname.
    pub away: String,
    /// Points scored by the home team.
    pub home_points: i64,
    /// Points scored by the away team.
    pub away_points: i64,
    /// Per-player statistics for a few featured players of this game.
    pub player_lines: Vec<PlayerLine>,
}

impl GameRecord {
    /// The winning team (reports never contain ties).
    pub fn winner(&self) -> &str {
        if self.home_points > self.away_points {
            &self.home
        } else {
            &self.away
        }
    }

    /// The losing team.
    pub fn loser(&self) -> &str {
        if self.home_points > self.away_points {
            &self.away
        } else {
            &self.home
        }
    }

    /// Points scored by a team in this game, if it participated.
    pub fn points_of(&self, team: &str) -> Option<i64> {
        if team == self.home {
            Some(self.home_points)
        } else if team == self.away {
            Some(self.away_points)
        } else {
            None
        }
    }

    /// Render the textual game report fed into the `game_reports` table.
    pub fn render_report(&self, city_of: impl Fn(&str) -> String) -> String {
        let winner = self.winner();
        let loser = self.loser();
        let (winner_points, loser_points) = (
            self.points_of(winner).expect("winner played"),
            self.points_of(loser).expect("loser played"),
        );
        let mut sentences = vec![format!(
            "The {} {} defeated the {} {} {}-{}.",
            city_of(winner),
            winner,
            city_of(loser),
            loser,
            winner_points,
            loser_points
        )];
        sentences.push(format!(
            "The {winner} scored {winner_points} points while the {loser} scored {loser_points} points."
        ));
        for line in &self.player_lines {
            sentences.push(format!(
                "{} of the {} scored {} points, grabbed {} rebounds and dished {} assists.",
                line.name, line.team, line.points, line.rebounds, line.assists
            ));
        }
        sentences.join(" ")
    }
}

/// The generated rotowire dataset: data lake plus ground truth.
#[derive(Debug, Clone)]
pub struct RotowireData {
    /// The multi-modal data lake registered for CAESURA.
    pub lake: DataLake,
    /// Team ground truth.
    pub teams: Vec<TeamRecord>,
    /// Player ground truth.
    pub players: Vec<PlayerRecord>,
    /// Game ground truth (one entry per report).
    pub games: Vec<GameRecord>,
}

impl RotowireData {
    /// The city of a team (empty string if unknown).
    pub fn city_of(&self, team: &str) -> String {
        self.teams
            .iter()
            .find(|t| t.name == team)
            .map(|t| t.city.clone())
            .unwrap_or_default()
    }

    /// Highest number of points a team scored in any of its games
    /// (the ground truth of Figure 4 Query 1).
    pub fn max_points_of(&self, team: &str) -> Option<i64> {
        self.games.iter().filter_map(|g| g.points_of(team)).max()
    }

    /// Number of games a team lost (the "hard query" of §4.3).
    pub fn losses_of(&self, team: &str) -> i64 {
        self.games.iter().filter(|g| g.loser() == team).count() as i64
    }
}

/// Generate the rotowire lake.
pub fn generate_rotowire(config: &RotowireConfig) -> RotowireData {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let num_teams = config.num_teams.clamp(2, names::TEAM_NAMES.len());

    // Teams.
    let mut teams = Vec::with_capacity(num_teams);
    for i in 0..num_teams {
        teams.push(TeamRecord {
            name: names::TEAM_NAMES[i].to_string(),
            city: names::TEAM_CITIES[i].to_string(),
            conference: if i % 2 == 0 { "Eastern" } else { "Western" }.to_string(),
            division: names::DIVISIONS[i % names::DIVISIONS.len()].to_string(),
            founded: rng.gen_range(1946..=1995),
        });
    }

    // Players.
    let mut players = Vec::with_capacity(num_teams * config.players_per_team);
    let mut name_counter = 0usize;
    for team in &teams {
        for _ in 0..config.players_per_team {
            let first = names::PLAYER_FIRST_NAMES[name_counter % names::PLAYER_FIRST_NAMES.len()];
            let last = names::PLAYER_LAST_NAMES[(name_counter / names::PLAYER_FIRST_NAMES.len()
                + name_counter)
                % names::PLAYER_LAST_NAMES.len()];
            name_counter += 1;
            players.push(PlayerRecord {
                name: format!("{first} {last}"),
                team: team.name.clone(),
                height_cm: rng.gen_range(180..=225),
                nationality: names::NATIONALITIES[rng.gen_range(0..names::NATIONALITIES.len())]
                    .to_string(),
                position: names::POSITIONS[rng.gen_range(0..names::POSITIONS.len())].to_string(),
            });
        }
    }

    // Games and reports.
    let mut games = Vec::with_capacity(config.num_games);
    for game_id in 1..=config.num_games as i64 {
        let home_idx = rng.gen_range(0..num_teams);
        let mut away_idx = rng.gen_range(0..num_teams);
        while away_idx == home_idx {
            away_idx = rng.gen_range(0..num_teams);
        }
        let home = teams[home_idx].name.clone();
        let away = teams[away_idx].name.clone();
        let mut home_points = rng.gen_range(82..=128);
        let mut away_points = rng.gen_range(82..=128);
        if home_points == away_points {
            // Reports never describe ties; nudge the home team.
            home_points += 1;
        }
        let mut player_lines = Vec::new();
        for team_name in [&home, &away] {
            let team_players: Vec<&PlayerRecord> =
                players.iter().filter(|p| &p.team == team_name).collect();
            for player in team_players.iter().take(2) {
                player_lines.push(PlayerLine {
                    name: player.name.clone(),
                    team: team_name.clone(),
                    points: rng.gen_range(4..=38),
                    rebounds: rng.gen_range(0..=15),
                    assists: rng.gen_range(0..=12),
                });
            }
        }
        let _ = &mut home_points;
        let _ = &mut away_points;
        games.push(GameRecord {
            game_id,
            home,
            away,
            home_points,
            away_points,
            player_lines,
        });
    }

    let data = RotowireData {
        lake: DataLake::new("rotowire"),
        teams,
        players,
        games,
    };
    let lake = build_lake(&data);
    RotowireData { lake, ..data }
}

fn build_lake(data: &RotowireData) -> DataLake {
    let mut lake = DataLake::new("rotowire");

    let teams_schema = Schema::from_pairs(&[
        ("name", DataType::Str),
        ("city", DataType::Str),
        ("conference", DataType::Str),
        ("division", DataType::Str),
        ("founded", DataType::Int),
    ]);
    let mut teams = TableBuilder::new("teams", teams_schema);
    for t in &data.teams {
        teams
            .push_row(vec![
                Value::str(&t.name),
                Value::str(&t.city),
                Value::str(&t.conference),
                Value::str(&t.division),
                Value::Int(t.founded),
            ])
            .expect("team row matches schema");
    }

    let players_schema = Schema::from_pairs(&[
        ("name", DataType::Str),
        ("team", DataType::Str),
        ("height_cm", DataType::Int),
        ("nationality", DataType::Str),
        ("position", DataType::Str),
    ]);
    let mut players = TableBuilder::new("players", players_schema);
    for p in &data.players {
        players
            .push_row(vec![
                Value::str(&p.name),
                Value::str(&p.team),
                Value::Int(p.height_cm),
                Value::str(&p.nationality),
                Value::str(&p.position),
            ])
            .expect("player row matches schema");
    }

    let ttg_schema = Schema::from_pairs(&[("name", DataType::Str), ("game_id", DataType::Int)]);
    let mut team_to_games = TableBuilder::new("team_to_games", ttg_schema);
    let reports_schema =
        Schema::from_pairs(&[("game_id", DataType::Int), ("report", DataType::Text)]);
    let mut reports = TableBuilder::new("game_reports", reports_schema);
    for game in &data.games {
        for team in [&game.home, &game.away] {
            team_to_games
                .push_row(vec![Value::str(team), Value::Int(game.game_id)])
                .expect("team_to_games row matches schema");
        }
        let report = game.render_report(|team| data.city_of(team));
        reports
            .push_row(vec![Value::Int(game.game_id), Value::text(report)])
            .expect("report row matches schema");
    }

    lake.add_table(
        teams.build(),
        "General information about every basketball team: nickname, home city, conference, \
         division and founding year",
    );
    lake.add_table(
        players.build(),
        "General information about every player: name, team, height, nationality and position",
    );
    lake.add_table(
        team_to_games.build(),
        "Which teams participated in which game (two rows per game)",
    );
    lake.add_table(
        reports.build(),
        "Textual game reports of basketball games, containing the final score and important \
         statistics of players and teams that participated in each game",
    );
    lake.add_foreign_key(ForeignKey::new("players", "team", "teams", "name"));
    lake.add_foreign_key(ForeignKey::new("team_to_games", "name", "teams", "name"));
    lake.add_foreign_key(ForeignKey::new(
        "team_to_games",
        "game_id",
        "game_reports",
        "game_id",
    ));
    lake
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesura_modal::TextQaModel;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_rotowire(&RotowireConfig::small());
        let b = generate_rotowire(&RotowireConfig::small());
        assert_eq!(a.games, b.games);
        assert_eq!(a.teams, b.teams);
        assert_eq!(a.players, b.players);
    }

    #[test]
    fn lake_contains_all_four_sources() {
        let config = RotowireConfig::small();
        let data = generate_rotowire(&config);
        let catalog = data.lake.catalog();
        assert_eq!(catalog.table("teams").unwrap().num_rows(), config.num_teams);
        assert_eq!(
            catalog.table("players").unwrap().num_rows(),
            config.num_teams * config.players_per_team
        );
        assert_eq!(
            catalog.table("team_to_games").unwrap().num_rows(),
            config.num_games * 2
        );
        assert_eq!(
            catalog.table("game_reports").unwrap().num_rows(),
            config.num_games
        );
    }

    #[test]
    fn reports_never_describe_ties_and_mention_both_teams() {
        let data = generate_rotowire(&RotowireConfig::small());
        for game in &data.games {
            assert_ne!(game.home_points, game.away_points);
            let report = game.render_report(|t| data.city_of(t));
            assert!(report.contains(&game.home));
            assert!(report.contains(&game.away));
            assert!(report.contains("defeated"));
        }
    }

    #[test]
    fn text_qa_can_recover_the_ground_truth_from_generated_reports() {
        let data = generate_rotowire(&RotowireConfig::small());
        let model = TextQaModel::new();
        for game in data.games.iter().take(5) {
            let report = game.render_report(|t| data.city_of(t));
            for team in [&game.home, &game.away] {
                let question = format!("How many points did {team} score?");
                let answer = model.answer(&report, &question).unwrap();
                assert_eq!(
                    answer,
                    Value::Int(game.points_of(team).unwrap()),
                    "wrong extraction for {team} in game {}",
                    game.game_id
                );
            }
            let winner_question = format!("Did {} win?", game.winner());
            assert_eq!(
                model.answer(&report, &winner_question).unwrap(),
                Value::str("yes")
            );
        }
    }

    #[test]
    fn ground_truth_helpers_are_consistent() {
        let data = generate_rotowire(&RotowireConfig::small());
        let team = &data.teams[0].name;
        let max_points = data.max_points_of(team);
        let played = data.games.iter().any(|g| g.points_of(team).is_some());
        assert_eq!(max_points.is_some(), played);
        let total_losses: i64 = data.teams.iter().map(|t| data.losses_of(&t.name)).sum();
        assert_eq!(total_losses, data.games.len() as i64);
    }

    #[test]
    fn foreign_keys_describe_the_join_paths_of_figure4() {
        let data = generate_rotowire(&RotowireConfig::small());
        let summary = data.lake.catalog().prompt_summary();
        assert!(summary.contains("team_to_games.name -> teams.name"));
        assert!(summary.contains("team_to_games.game_id -> game_reports.game_id"));
    }
}
