//! Durable, versioned on-disk cache tier.
//!
//! This crate implements [`CacheStore`], a crash-safe key-value store that
//! sits *below* the in-memory cache shards of the perception cache
//! (`caesura-modal`) and the validated plan cache (`caesura-llm`). The design
//! is a classic append-only segment log:
//!
//! - Writes append fixed-framed records (`checksum | key_len | val_len |
//!   tombstone | key | value`) to the active segment file; deletes append a
//!   tombstone record. Nothing is ever updated in place.
//! - Reads are served from an in-memory index (`key -> value`) rebuilt by
//!   scanning the segments on [`CacheStore::open`]. The index is the
//!   authoritative read path; the log exists only for durability.
//! - On open, each segment is replayed up to its *valid prefix*: the scan
//!   stops at the first truncated or checksum-corrupt record, so a crash (or
//!   bit rot) costs at most the damaged tail — a cold start for those keys,
//!   never a panic and never a wrong answer. The active segment is truncated
//!   back to its valid prefix before new appends.
//! - When the dead-byte count (overwritten or tombstoned records) exceeds
//!   both a floor and the live-byte count, the store compacts: live entries
//!   are rewritten into fresh segments, synced, and the old segments deleted.
//!   Disk usage is therefore bounded by `O(live bytes)`.
//!
//! Every segment begins with a magic header that encodes the on-disk format
//! version; segments written by an unknown format are skipped wholesale
//! (again: cold start, not a crash). Callers additionally namespace their
//! keys with backend identity and schema fingerprints — see the cache
//! integrations — so a store written under one model configuration can never
//! answer for another.
//!
//! A `LOCK` file guarded by an OS advisory lock ([`std::fs::File::try_lock`])
//! makes concurrent opens of one directory fail fast with
//! [`StoreError::Locked`] instead of interleaving segment writes. The lock is
//! released when the store (or its process) dies, so there are no stale-lock
//! recovery paths.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File, OpenOptions, TryLockError};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Magic bytes opening every segment file. The trailing `1` is the on-disk
/// format version; bump it when the record framing changes so old segments
/// are skipped (cold start) instead of misparsed.
const SEGMENT_MAGIC: &[u8; 8] = b"CSTORE\x001";

/// Fixed bytes per record before the key and value payloads:
/// `u32` checksum + `u32` key_len + `u32` val_len + `u8` tombstone flag.
const RECORD_HEADER: usize = 13;

/// Upper bound accepted for a single key or value length. Corruption in a
/// length field must not trigger a multi-gigabyte allocation; anything this
/// large is treated as a damaged record.
const MAX_PART_LEN: u32 = 256 * 1024 * 1024;

/// Errors returned by [`CacheStore`].
#[derive(Debug)]
pub enum StoreError {
    /// Another handle (usually another process) holds the directory lock.
    Locked {
        /// The store directory that is already locked.
        dir: PathBuf,
    },
    /// An I/O error, with the path that produced it.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Locked { dir } => write!(
                f,
                "cache store directory '{}' is locked by another process",
                dir.display()
            ),
            StoreError::Io { path, source } => {
                write!(f, "cache store I/O error at '{}': {source}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Locked { .. } => None,
            StoreError::Io { source, .. } => Some(source),
        }
    }
}

impl StoreError {
    fn io(path: &Path, source: io::Error) -> Self {
        StoreError::Io {
            path: path.to_path_buf(),
            source,
        }
    }
}

/// Convenience alias for store results.
pub type StoreResult<T> = Result<T, StoreError>;

/// Tuning knobs for [`CacheStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOptions {
    /// Roll the active segment once it grows past this many bytes.
    pub segment_bytes: u64,
    /// Never compact while fewer than this many dead bytes have accumulated
    /// (avoids rewriting a tiny store over and over).
    pub compact_min_bytes: u64,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            segment_bytes: 4 * 1024 * 1024,
            compact_min_bytes: 1024 * 1024,
        }
    }
}

/// Point-in-time counters describing a store's contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Number of segment files on disk.
    pub segments: usize,
    /// Number of live keys in the index.
    pub live_records: usize,
    /// Bytes occupied by live records.
    pub live_bytes: u64,
    /// Bytes occupied by overwritten / tombstoned records awaiting compaction.
    pub dead_bytes: u64,
    /// Bytes dropped during the last open because of truncated or corrupt
    /// record tails (valid-prefix recovery).
    pub corrupt_bytes_dropped: u64,
    /// Number of compactions performed since open.
    pub compactions: u64,
}

struct IndexEntry {
    value: Box<[u8]>,
    record_bytes: u64,
}

struct Inner {
    index: HashMap<Box<[u8]>, IndexEntry>,
    /// Segment ids currently on disk, ascending; the last one is active.
    segments: Vec<u64>,
    active: File,
    active_len: u64,
    live_bytes: u64,
    dead_bytes: u64,
    corrupt_bytes_dropped: u64,
    compactions: u64,
}

/// A crash-safe on-disk key-value store (see the crate docs for the design).
///
/// All operations are internally synchronized; share a store between threads
/// with `Arc<CacheStore>`.
pub struct CacheStore {
    dir: PathBuf,
    options: StoreOptions,
    inner: Mutex<Inner>,
    /// Held open for the store's lifetime; the OS releases the advisory lock
    /// when this handle (or the process) dies.
    _lock: File,
}

impl fmt::Debug for CacheStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CacheStore")
            .field("dir", &self.dir)
            .field("options", &self.options)
            .finish_non_exhaustive()
    }
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:06}.log"))
}

fn parse_segment_id(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    rest.parse().ok()
}

/// FNV-1a over the record's framed bytes (lengths, tombstone flag, key,
/// value), truncated to 32 bits. Matches the hash family used by the
/// in-memory cache shards.
fn record_checksum(key: &[u8], value: &[u8], tombstone: bool) -> u32 {
    let mut hash: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100000001b3);
        }
    };
    eat(&(key.len() as u32).to_le_bytes());
    eat(&(value.len() as u32).to_le_bytes());
    eat(&[u8::from(tombstone)]);
    eat(key);
    eat(value);
    (hash ^ (hash >> 32)) as u32
}

fn encode_record(key: &[u8], value: &[u8], tombstone: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER + key.len() + value.len());
    out.extend_from_slice(&record_checksum(key, value, tombstone).to_le_bytes());
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.push(u8::from(tombstone));
    out.extend_from_slice(key);
    out.extend_from_slice(value);
    out
}

/// Result of scanning one segment's bytes: records applied to the index plus
/// how far the valid prefix reached.
struct ScanOutcome {
    valid_len: u64,
    record_bytes: u64,
}

impl CacheStore {
    /// Open (creating if needed) the store rooted at `dir` with default
    /// [`StoreOptions`].
    pub fn open(dir: impl AsRef<Path>) -> StoreResult<CacheStore> {
        CacheStore::open_with(dir, StoreOptions::default())
    }

    /// Open (creating if needed) the store rooted at `dir`.
    ///
    /// Fails with [`StoreError::Locked`] when another live handle — in this
    /// process or another — already has the directory open.
    pub fn open_with(dir: impl AsRef<Path>, options: StoreOptions) -> StoreResult<CacheStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| StoreError::io(&dir, e))?;

        let lock_path = dir.join("LOCK");
        let lock = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(&lock_path)
            .map_err(|e| StoreError::io(&lock_path, e))?;
        match lock.try_lock() {
            Ok(()) => {}
            Err(TryLockError::WouldBlock) => return Err(StoreError::Locked { dir }),
            Err(TryLockError::Error(e)) => return Err(StoreError::io(&lock_path, e)),
        }

        let mut segments: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&dir).map_err(|e| StoreError::io(&dir, e))? {
            let entry = entry.map_err(|e| StoreError::io(&dir, e))?;
            if let Some(id) = entry.file_name().to_str().and_then(parse_segment_id) {
                segments.push(id);
            }
        }
        segments.sort_unstable();

        let mut index: HashMap<Box<[u8]>, IndexEntry> = HashMap::new();
        let mut record_bytes_total: u64 = 0;
        let mut dead_from_tombstones: u64 = 0;
        let mut corrupt_bytes_dropped: u64 = 0;
        let mut active_valid_len: u64 = 0;
        for (pos, &id) in segments.iter().enumerate() {
            let path = segment_path(&dir, id);
            let mut bytes = Vec::new();
            File::open(&path)
                .and_then(|mut f| f.read_to_end(&mut bytes))
                .map_err(|e| StoreError::io(&path, e))?;
            let outcome = scan_segment(&bytes, &mut index, &mut dead_from_tombstones);
            corrupt_bytes_dropped += bytes.len() as u64 - outcome.valid_len;
            record_bytes_total += outcome.record_bytes;
            if pos == segments.len() - 1 {
                active_valid_len = outcome.valid_len.max(SEGMENT_MAGIC.len() as u64);
            }
        }

        if segments.is_empty() {
            segments.push(1);
        }
        let active_id = *segments.last().expect("at least one segment");
        let active_path = segment_path(&dir, active_id);
        let active = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&active_path)
            .map_err(|e| StoreError::io(&active_path, e))?;
        let current_len = active
            .metadata()
            .map_err(|e| StoreError::io(&active_path, e))?
            .len();
        if current_len < SEGMENT_MAGIC.len() as u64 {
            // Brand-new (or header-truncated) active segment: start it fresh.
            active
                .set_len(0)
                .and_then(|()| (&active).write_all(SEGMENT_MAGIC))
                .map_err(|e| StoreError::io(&active_path, e))?;
            active_valid_len = SEGMENT_MAGIC.len() as u64;
        } else if current_len > active_valid_len {
            // Drop the damaged tail so new appends continue the valid prefix.
            active
                .set_len(active_valid_len)
                .map_err(|e| StoreError::io(&active_path, e))?;
        }

        let live_bytes: u64 = index.values().map(|e| e.record_bytes).sum();
        // Everything ever written minus what is still live is dead weight:
        // overwritten records plus the tombstone records themselves.
        let dead_bytes = record_bytes_total.saturating_sub(live_bytes) + dead_from_tombstones;

        Ok(CacheStore {
            dir,
            options,
            inner: Mutex::new(Inner {
                index,
                segments,
                active,
                active_len: active_valid_len,
                live_bytes,
                dead_bytes,
                corrupt_bytes_dropped,
                compactions: 0,
            }),
            _lock: lock,
        })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Look up `key`, returning a copy of its value.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let inner = self.inner.lock().expect("store mutex poisoned");
        inner.index.get(key).map(|e| e.value.to_vec())
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &[u8]) -> bool {
        let inner = self.inner.lock().expect("store mutex poisoned");
        inner.index.contains_key(key)
    }

    /// Insert or overwrite `key`, appending the record to the active segment.
    pub fn put(&self, key: &[u8], value: &[u8]) -> StoreResult<()> {
        let record = encode_record(key, value, false);
        let mut inner = self.inner.lock().expect("store mutex poisoned");
        self.append(&mut inner, &record)?;
        let entry = IndexEntry {
            value: value.into(),
            record_bytes: record.len() as u64,
        };
        inner.live_bytes += record.len() as u64;
        if let Some(old) = inner.index.insert(key.into(), entry) {
            inner.live_bytes -= old.record_bytes;
            inner.dead_bytes += old.record_bytes;
        }
        self.maybe_compact(&mut inner)
    }

    /// Remove `key`, appending a tombstone record. Returns whether the key
    /// was present.
    pub fn remove(&self, key: &[u8]) -> StoreResult<bool> {
        let mut inner = self.inner.lock().expect("store mutex poisoned");
        let Some(old) = inner.index.remove(key) else {
            return Ok(false);
        };
        let record = encode_record(key, &[], true);
        self.append(&mut inner, &record)?;
        inner.live_bytes -= old.record_bytes;
        inner.dead_bytes += old.record_bytes + record.len() as u64;
        self.maybe_compact(&mut inner)?;
        Ok(true)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().expect("store mutex poisoned");
        inner.index.len()
    }

    /// Whether the store holds no live keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current counters (segment count, live/dead bytes, recovery drops).
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("store mutex poisoned");
        StoreStats {
            segments: inner.segments.len(),
            live_records: inner.index.len(),
            live_bytes: inner.live_bytes,
            dead_bytes: inner.dead_bytes,
            corrupt_bytes_dropped: inner.corrupt_bytes_dropped,
            compactions: inner.compactions,
        }
    }

    /// Append a framed record, rolling the active segment first if it is
    /// over the size bound.
    fn append(&self, inner: &mut Inner, record: &[u8]) -> StoreResult<()> {
        if inner.active_len >= self.options.segment_bytes {
            let next_id = inner.segments.last().copied().unwrap_or(0) + 1;
            let path = segment_path(&self.dir, next_id);
            let file = OpenOptions::new()
                .create_new(true)
                .read(true)
                .append(true)
                .open(&path)
                .map_err(|e| StoreError::io(&path, e))?;
            (&file)
                .write_all(SEGMENT_MAGIC)
                .map_err(|e| StoreError::io(&path, e))?;
            inner.segments.push(next_id);
            inner.active = file;
            inner.active_len = SEGMENT_MAGIC.len() as u64;
        }
        let path = segment_path(&self.dir, *inner.segments.last().expect("active segment"));
        (&inner.active)
            .write_all(record)
            .map_err(|e| StoreError::io(&path, e))?;
        inner.active_len += record.len() as u64;
        Ok(())
    }

    /// Rewrite live entries into fresh segments and delete the old ones once
    /// dead bytes dominate. Crash-safe ordering: the replacement segments are
    /// fully written and synced *before* any old segment is removed, and
    /// segment ids only grow, so a crash mid-compaction leaves at worst
    /// duplicate records that replay to the same index.
    fn maybe_compact(&self, inner: &mut Inner) -> StoreResult<()> {
        if inner.dead_bytes < self.options.compact_min_bytes || inner.dead_bytes < inner.live_bytes
        {
            return Ok(());
        }
        let old_segments = std::mem::take(&mut inner.segments);
        let mut next_id = old_segments.last().copied().unwrap_or(0) + 1;

        let new_segment = |id: u64| -> StoreResult<(File, PathBuf)> {
            let path = segment_path(&self.dir, id);
            let file = OpenOptions::new()
                .create_new(true)
                .read(true)
                .append(true)
                .open(&path)
                .map_err(|e| StoreError::io(&path, e))?;
            (&file)
                .write_all(SEGMENT_MAGIC)
                .map_err(|e| StoreError::io(&path, e))?;
            Ok((file, path))
        };

        let (mut file, mut path) = new_segment(next_id)?;
        let mut new_segments = vec![next_id];
        let mut written = SEGMENT_MAGIC.len() as u64;
        let mut live_bytes = 0u64;
        for (key, entry) in &mut inner.index {
            if written >= self.options.segment_bytes {
                file.sync_all().map_err(|e| StoreError::io(&path, e))?;
                next_id += 1;
                let (f, p) = new_segment(next_id)?;
                file = f;
                path = p;
                new_segments.push(next_id);
                written = SEGMENT_MAGIC.len() as u64;
            }
            let record = encode_record(key, &entry.value, false);
            (&file)
                .write_all(&record)
                .map_err(|e| StoreError::io(&path, e))?;
            written += record.len() as u64;
            entry.record_bytes = record.len() as u64;
            live_bytes += record.len() as u64;
        }
        file.sync_all().map_err(|e| StoreError::io(&path, e))?;

        for id in old_segments {
            let old_path = segment_path(&self.dir, id);
            fs::remove_file(&old_path).map_err(|e| StoreError::io(&old_path, e))?;
        }

        inner.active = file;
        inner.active_len = written;
        inner.segments = new_segments;
        inner.live_bytes = live_bytes;
        inner.dead_bytes = 0;
        inner.compactions += 1;
        Ok(())
    }
}

/// Replay one segment's bytes into `index`, stopping at the first truncated
/// or corrupt record. Returns how far the valid prefix reached and how many
/// record bytes were applied. A segment whose magic header is missing or
/// from an unknown format version contributes nothing (cold start).
fn scan_segment(
    bytes: &[u8],
    index: &mut HashMap<Box<[u8]>, IndexEntry>,
    dead_from_tombstones: &mut u64,
) -> ScanOutcome {
    if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return ScanOutcome {
            valid_len: 0,
            record_bytes: 0,
        };
    }
    let mut pos = SEGMENT_MAGIC.len();
    let mut record_bytes = 0u64;
    while pos + RECORD_HEADER <= bytes.len() {
        let checksum = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        let key_len = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let val_len = u32::from_le_bytes(bytes[pos + 8..pos + 12].try_into().expect("4 bytes"));
        let tombstone = bytes[pos + 12];
        if key_len > MAX_PART_LEN || val_len > MAX_PART_LEN || tombstone > 1 {
            break;
        }
        let total = RECORD_HEADER + key_len as usize + val_len as usize;
        if pos + total > bytes.len() {
            break;
        }
        let key = &bytes[pos + RECORD_HEADER..pos + RECORD_HEADER + key_len as usize];
        let value = &bytes[pos + RECORD_HEADER + key_len as usize..pos + total];
        if record_checksum(key, value, tombstone == 1) != checksum {
            break;
        }
        if tombstone == 1 {
            index.remove(key);
            *dead_from_tombstones += total as u64;
        } else {
            index.insert(
                key.into(),
                IndexEntry {
                    value: value.into(),
                    record_bytes: total as u64,
                },
            );
            record_bytes += total as u64;
        }
        pos += total;
    }
    ScanOutcome {
        valid_len: pos as u64,
        record_bytes,
    }
}

// ---------------------------------------------------------------------------
// Persistence configuration shared by the cache tiers.
// ---------------------------------------------------------------------------

/// Configuration for the persistent cache tier, read from `CAESURA_CACHE_DIR`
/// (plus the per-tier knobs `CAESURA_DISK_PERCEPTION` / `CAESURA_DISK_PLANS`)
/// or built programmatically.
///
/// With `CAESURA_CACHE_DIR` unset the whole disk tier is off and sessions
/// behave byte-identically to a build without this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistConfig {
    /// Root directory for the on-disk tier. The perception and plan stores
    /// live in `perception/` and `plans/` subdirectories.
    pub dir: PathBuf,
    /// Whether the perception answer cache gets a disk tier.
    pub perception: bool,
    /// Whether the validated plan cache gets a disk tier.
    pub plans: bool,
}

fn env_flag_disabled(name: &str) -> bool {
    match std::env::var(name) {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            v == "0" || v == "off" || v == "false"
        }
        Err(_) => false,
    }
}

impl PersistConfig {
    /// A config persisting both tiers under `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PersistConfig {
            dir: dir.into(),
            perception: true,
            plans: true,
        }
    }

    /// Read `CAESURA_CACHE_DIR` (and the per-tier knobs) from the
    /// environment. Returns `None` — disk tier fully off — when the variable
    /// is unset, empty, or both per-tier knobs are disabled.
    pub fn from_env() -> Option<Self> {
        let dir = std::env::var("CAESURA_CACHE_DIR").ok()?;
        let dir = dir.trim();
        if dir.is_empty() {
            return None;
        }
        let config = PersistConfig {
            dir: PathBuf::from(dir),
            perception: !env_flag_disabled("CAESURA_DISK_PERCEPTION"),
            plans: !env_flag_disabled("CAESURA_DISK_PLANS"),
        };
        config.is_enabled().then_some(config)
    }

    /// Whether at least one tier is enabled.
    pub fn is_enabled(&self) -> bool {
        self.perception || self.plans
    }

    /// Directory of the perception-answer store.
    pub fn perception_dir(&self) -> PathBuf {
        self.dir.join("perception")
    }

    /// Directory of the validated-plan store.
    pub fn plans_dir(&self) -> PathBuf {
        self.dir.join("plans")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let mut dir = std::env::temp_dir();
            dir.push(format!(
                "caesura-store-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).expect("create temp dir");
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn put_get_overwrite_remove() {
        let tmp = TempDir::new("basic");
        let store = CacheStore::open(&tmp.0).expect("open");
        assert!(store.is_empty());
        store.put(b"k1", b"v1").expect("put");
        store.put(b"k2", b"v2").expect("put");
        assert_eq!(store.get(b"k1"), Some(b"v1".to_vec()));
        store.put(b"k1", b"v1b").expect("overwrite");
        assert_eq!(store.get(b"k1"), Some(b"v1b".to_vec()));
        assert!(store.remove(b"k2").expect("remove"));
        assert!(!store.remove(b"k2").expect("remove missing"));
        assert_eq!(store.get(b"k2"), None);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn reopen_recovers_index() {
        let tmp = TempDir::new("reopen");
        {
            let store = CacheStore::open(&tmp.0).expect("open");
            store.put(b"a", b"1").expect("put");
            store.put(b"b", b"2").expect("put");
            store.put(b"a", b"3").expect("overwrite");
            store.remove(b"b").expect("remove");
        }
        let store = CacheStore::open(&tmp.0).expect("reopen");
        assert_eq!(store.get(b"a"), Some(b"3".to_vec()));
        assert_eq!(store.get(b"b"), None);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn second_open_fails_locked() {
        let tmp = TempDir::new("locked");
        let first = CacheStore::open(&tmp.0).expect("open");
        match CacheStore::open(&tmp.0) {
            Err(StoreError::Locked { dir }) => assert_eq!(dir, tmp.0),
            other => panic!("expected Locked, got {other:?}"),
        }
        drop(first);
        CacheStore::open(&tmp.0).expect("reopen after release");
    }

    #[test]
    fn truncated_tail_recovers_valid_prefix() {
        let tmp = TempDir::new("truncate");
        {
            let store = CacheStore::open(&tmp.0).expect("open");
            store.put(b"keep", b"ok").expect("put");
            store.put(b"tail", b"damaged").expect("put");
        }
        let seg = segment_path(&tmp.0, 1);
        let len = fs::metadata(&seg).expect("meta").len();
        let file = OpenOptions::new().write(true).open(&seg).expect("open seg");
        file.set_len(len - 3).expect("truncate");
        drop(file);

        let store = CacheStore::open(&tmp.0).expect("reopen");
        assert_eq!(store.get(b"keep"), Some(b"ok".to_vec()));
        assert_eq!(store.get(b"tail"), None, "damaged record must be dropped");
        assert!(store.stats().corrupt_bytes_dropped > 0);
        // Appending after recovery continues the valid prefix.
        store
            .put(b"tail", b"rewritten")
            .expect("put after recovery");
        drop(store);
        let store = CacheStore::open(&tmp.0).expect("reopen again");
        assert_eq!(store.get(b"tail"), Some(b"rewritten".to_vec()));
    }

    #[test]
    fn bit_flip_drops_damaged_suffix() {
        let tmp = TempDir::new("bitflip");
        {
            let store = CacheStore::open(&tmp.0).expect("open");
            store.put(b"first", b"good").expect("put");
            store.put(b"second", b"flipped").expect("put");
        }
        let seg = segment_path(&tmp.0, 1);
        let mut bytes = fs::read(&seg).expect("read");
        let mid = bytes.len() - 4;
        bytes[mid] ^= 0xff;
        fs::write(&seg, &bytes).expect("write back");

        let store = CacheStore::open(&tmp.0).expect("reopen");
        assert_eq!(store.get(b"first"), Some(b"good".to_vec()));
        assert_eq!(store.get(b"second"), None);
        assert!(store.stats().corrupt_bytes_dropped > 0);
    }

    #[test]
    fn unknown_format_version_is_cold_start() {
        let tmp = TempDir::new("version");
        {
            let store = CacheStore::open(&tmp.0).expect("open");
            store.put(b"k", b"v").expect("put");
        }
        let seg = segment_path(&tmp.0, 1);
        let mut bytes = fs::read(&seg).expect("read");
        bytes[7] = b'9'; // future format version
        fs::write(&seg, &bytes).expect("write back");
        let store = CacheStore::open(&tmp.0).expect("reopen");
        assert_eq!(store.get(b"k"), None, "unknown format must not be parsed");
    }

    #[test]
    fn segments_roll_and_compaction_bounds_disk() {
        let tmp = TempDir::new("compact");
        let options = StoreOptions {
            segment_bytes: 512,
            compact_min_bytes: 1024,
        };
        let store = CacheStore::open_with(&tmp.0, options).expect("open");
        let value = [7u8; 64];
        // Overwrite a small key set many times: dead bytes pile up and must
        // eventually be compacted away.
        for round in 0..64u32 {
            for k in 0..4u32 {
                let key = format!("key-{k}");
                store
                    .put(key.as_bytes(), &value[..32 + ((round as usize) % 32)])
                    .expect("put");
            }
        }
        let stats = store.stats();
        assert!(stats.compactions > 0, "expected at least one compaction");
        assert_eq!(stats.live_records, 4);
        assert!(
            stats.dead_bytes < 2 * 1024,
            "dead bytes unbounded: {stats:?}"
        );
        let on_disk: u64 = fs::read_dir(&tmp.0)
            .expect("read dir")
            .map(|e| e.expect("entry").metadata().expect("meta").len())
            .sum();
        assert!(on_disk < 8 * 1024, "disk usage unbounded: {on_disk}");
        // Contents survive compaction and reopen.
        drop(store);
        let store = CacheStore::open_with(&tmp.0, options).expect("reopen");
        assert_eq!(store.len(), 4);
        for k in 0..4u32 {
            assert!(store.get(format!("key-{k}").as_bytes()).is_some());
        }
    }

    #[test]
    fn persist_config_env_parsing() {
        // Programmatic construction only — env vars are process-global and
        // other tests run in parallel, so from_env is covered by the
        // dedicated integration suite instead.
        let config = PersistConfig::new("/tmp/somewhere");
        assert!(config.is_enabled());
        assert!(config.perception && config.plans);
        assert_eq!(
            config.perception_dir(),
            PathBuf::from("/tmp/somewhere/perception")
        );
        assert_eq!(config.plans_dir(), PathBuf::from("/tmp/somewhere/plans"));
        let off = PersistConfig {
            dir: PathBuf::from("/tmp/x"),
            perception: false,
            plans: false,
        };
        assert!(!off.is_enabled());
    }
}
