//! Mapping-phase decisions: from one logical step (plus the observations of
//! previously executed steps) to a concrete physical operator and arguments.
//!
//! This mirrors what the paper expects the LLM to do in the mapping phase
//! (Figure 3, right): read the step description, look at the *current*
//! intermediate tables (including columns added by previously executed
//! operators — the benefit of interleaved execution, §3.1), and emit an
//! `Operator:` / `Arguments:` answer.

use crate::context::{PromptContext, TableSketch};
use crate::plan::{LogicalStep, OperatorDecision};
use caesura_modal::OperatorKind;

/// Decide the physical operator for a logical step.
pub fn decide(step: &LogicalStep, context: &PromptContext) -> OperatorDecision {
    let description = step.description.clone();
    let lower = description.to_lowercase();
    let quoted = quoted_spans(&description);
    let input_sketch = step
        .inputs
        .first()
        .and_then(|name| context.find_table(name));

    let (operator, arguments, reasoning) = if lower.starts_with("join ") {
        decide_join(&quoted, &lower)
    } else if lower.contains("'image' column")
        || (lower.contains("depicted") && lower.contains("extract"))
    {
        decide_visual_qa(step, &lower)
    } else if lower.contains("'report' column")
        || ((lower.contains("scored")
            || lower.contains("won the game")
            || lower.contains("lost the game"))
            && lower.contains("extract"))
    {
        decide_text_qa(step, &lower, input_sketch)
    } else if lower.starts_with("extract the century")
        || lower.starts_with("extract the year")
        || (lower.starts_with("extract") && (lower.contains("century") || lower.contains("year")))
    {
        decide_python(step, &description)
    } else if lower.starts_with("select only") || lower.starts_with("keep only the rows") {
        decide_selection(step, &quoted, &lower, input_sketch)
    } else if lower.starts_with("group the")
        || lower.starts_with("count the number of rows")
        || lower.starts_with("compute the")
    {
        decide_aggregation(step, &quoted, &lower, input_sketch)
    } else if lower.starts_with("keep only") || lower.starts_with("project") {
        decide_projection(step, &quoted, input_sketch)
    } else if lower.starts_with("plot") || lower.contains("bar plot") || lower.contains("line plot")
    {
        decide_plot(&quoted, &lower)
    } else {
        // Fallback: pass the input through unchanged.
        let table = step
            .inputs
            .first()
            .cloned()
            .unwrap_or_else(|| "result_table".to_string());
        (
            OperatorKind::Sql,
            vec![format!("SELECT * FROM {table}")],
            "The step does not require any specific operator, so a plain SQL projection is used."
                .to_string(),
        )
    };

    OperatorDecision {
        step_number: step.number,
        reasoning,
        operator,
        arguments,
    }
}

/// The spans enclosed in single quotes, in order of appearance.
pub fn quoted_spans(text: &str) -> Vec<String> {
    let mut spans = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find('\'') {
        let after = &rest[start + 1..];
        match after.find('\'') {
            Some(end) => {
                spans.push(after[..end].to_string());
                rest = &after[end + 1..];
            }
            None => break,
        }
    }
    spans
}

fn decide_join(quoted: &[String], lower: &str) -> (OperatorKind, Vec<String>, String) {
    // "Join the 'A' and 'B' tables on the 'k' column" — quoted = [A, B, k]
    // or [A, B, k_left, k_right] when the key columns differ.
    let (left, right) = match (quoted.first(), quoted.get(1)) {
        (Some(l), Some(r)) => (l.clone(), r.clone()),
        _ => ("left_table".to_string(), "right_table".to_string()),
    };
    let (left_key, right_key) = match (quoted.get(2), quoted.get(3)) {
        (Some(k), Some(k2)) => (k.clone(), k2.clone()),
        (Some(k), None) => (k.clone(), k.clone()),
        _ => ("id".to_string(), "id".to_string()),
    };
    let sql =
        format!("SELECT * FROM {left} JOIN {right} ON {left}.{left_key} = {right}.{right_key}");
    let _ = lower;
    (
        OperatorKind::SqlJoin,
        vec![sql],
        format!("The step combines the '{left}' and '{right}' tables, which is a relational join."),
    )
}

fn decide_visual_qa(step: &LogicalStep, lower: &str) -> (OperatorKind, Vec<String>, String) {
    let new_column = step
        .new_columns
        .first()
        .cloned()
        .unwrap_or_else(|| "extracted".to_string());
    // Counting vs existence question.
    let (question, dtype) = if let Some(entity) = between(lower, "the number of ", " depicted") {
        (format!("How many {} are depicted?", entity.trim()), "int")
    } else if let Some(entity) = between(lower, "whether ", " is depicted") {
        (format!("Is {} depicted?", entity.trim()), "str")
    } else if let Some(entity) = between(lower, "whether ", " are depicted") {
        (format!("Are {} depicted?", entity.trim()), "str")
    } else if let Some(entity) = between(lower, "extract what ", " from") {
        (format!("What {}?", entity.trim()), "str")
    } else {
        ("What is depicted?".to_string(), "str")
    };
    (
        OperatorKind::VisualQa,
        vec!["image".to_string(), new_column, question, dtype.to_string()],
        "The step asks about the content of images (IMAGE column), so Visual Question Answering \
         must be used."
            .to_string(),
    )
}

fn decide_text_qa(
    step: &LogicalStep,
    lower: &str,
    input_sketch: Option<&TableSketch>,
) -> (OperatorKind, Vec<String>, String) {
    let new_column = step
        .new_columns
        .first()
        .cloned()
        .unwrap_or_else(|| "extracted".to_string());
    // The subject placeholder: the name-like column of the input table. After
    // a join the column may only exist in qualified form (e.g. 'teams.name'),
    // which the observation-aware sketch tells us.
    let subject_column = subject_column(input_sketch);
    let (question, dtype) = if lower.contains("points") {
        (
            format!("How many points did <{subject_column}> score?"),
            "int",
        )
    } else if lower.contains("rebounds") {
        (
            format!("How many rebounds did <{subject_column}> grab?"),
            "int",
        )
    } else if lower.contains("assists") {
        (
            format!("How many assists did <{subject_column}> dish?"),
            "int",
        )
    } else if lower.contains("specimens") {
        (
            format!("How many specimens did <{subject_column}> collect?"),
            "int",
        )
    } else if lower.contains("readings") {
        (
            format!("How many readings did <{subject_column}> log?"),
            "int",
        )
    } else if lower.contains("samples") {
        (
            format!("How many samples did <{subject_column}> store?"),
            "int",
        )
    } else if lower.contains("won the game") || lower.contains(" won ") {
        (format!("Did <{subject_column}> win?"), "str")
    } else if lower.contains("lost the game") || lower.contains(" lost ") {
        (format!("Did <{subject_column}> lose?"), "str")
    } else {
        (
            format!("How many points did <{subject_column}> score?"),
            "int",
        )
    };
    let text_column = input_sketch
        .and_then(|t| t.text_columns().first().map(|c| c.to_string()))
        .unwrap_or_else(|| "report".to_string());
    (
        OperatorKind::TextQa,
        vec![text_column, new_column, question, dtype.to_string()],
        "The step extracts information from the textual game reports (TEXT column), so Text \
         Question Answering must be used with a per-row question template."
            .to_string(),
    )
}

fn subject_column(input_sketch: Option<&TableSketch>) -> String {
    if let Some(sketch) = input_sketch {
        // Prefer an unqualified 'name' column, then a qualified '<t>.name', then
        // any column ending in 'name'.
        if sketch.columns.iter().any(|c| c.name == "name") {
            return "name".to_string();
        }
        if let Some(column) = sketch.columns.iter().find(|c| c.name.ends_with(".name")) {
            return column.name.clone();
        }
        if let Some(column) = sketch
            .columns
            .iter()
            .find(|c| c.name.to_lowercase().contains("name"))
        {
            return column.name.clone();
        }
    }
    "name".to_string()
}

fn decide_python(step: &LogicalStep, description: &str) -> (OperatorKind, Vec<String>, String) {
    let new_column = step.new_columns.first().cloned().unwrap_or_else(|| {
        if description.to_lowercase().contains("century") {
            "century".to_string()
        } else {
            "year".to_string()
        }
    });
    (
        OperatorKind::PythonUdf,
        vec![description.to_string(), new_column],
        "The step derives a new column from an existing string column, which the Python operator \
         does from a description."
            .to_string(),
    )
}

fn decide_selection(
    _step: &LogicalStep,
    quoted: &[String],
    lower: &str,
    input_sketch: Option<&TableSketch>,
) -> (OperatorKind, Vec<String>, String) {
    // Synthesized phrasing: "Select only the rows of the 'T' table where the
    // '<col>' column <op phrase> '<value>'."  quoted = [T, col, value].
    let (column, value) = match (quoted.get(1), quoted.get(2)) {
        (Some(column), Some(value)) => (column.clone(), value.clone()),
        _ => {
            // Free-form selection ("Select only paintings depicting Madonna and
            // Child"): use a column added by a previous extraction if there is
            // one (visible in the intermediate-table sketch).
            let column = input_sketch
                .and_then(|t| {
                    t.columns
                        .iter()
                        .find(|c| c.name.ends_with("_depicted") || c.name.ends_with("_game"))
                        .map(|c| c.name.clone())
                })
                .unwrap_or_else(|| "condition".to_string());
            (column, "yes".to_string())
        }
    };
    let column = qualify(input_sketch, &column);
    let op = if lower.contains("is at least") {
        ">="
    } else if lower.contains("is greater than") {
        ">"
    } else if lower.contains("is less than") {
        "<"
    } else {
        "="
    };
    let rendered_value = if value.parse::<f64>().is_ok() {
        value.clone()
    } else {
        format!("'{value}'")
    };
    // "contains" phrasing (used by data-misunderstanding plans) maps to LIKE.
    let condition = if lower.contains(" contains ") {
        format!("{column} LIKE '%{value}%'")
    } else {
        format!("{column} {op} {rendered_value}")
    };
    (
        OperatorKind::SqlSelection,
        vec![condition],
        "The step keeps only rows satisfying a condition on an existing column, which is a \
         relational selection."
            .to_string(),
    )
}

fn decide_aggregation(
    step: &LogicalStep,
    quoted: &[String],
    lower: &str,
    input_sketch: Option<&TableSketch>,
) -> (OperatorKind, Vec<String>, String) {
    // Synthesized phrasings:
    //   "Group the 'T' table by 'g' and compute the <agg> of 'c'."       quoted = [T, g, c]
    //   "Group the 'T' table by 'g' and count the number of rows ..."    quoted = [T, g]
    //   "Compute the <agg> of the 'c' column in the 'T' table."          quoted = [c, T]
    //   "Count the number of rows in the 'T' table."                     quoted = [T]
    let grouped = lower.starts_with("group the");
    let table = step
        .inputs
        .first()
        .cloned()
        .or_else(|| {
            if grouped || lower.starts_with("count the number of rows") {
                quoted.first().cloned()
            } else {
                quoted.last().cloned()
            }
        })
        .unwrap_or_else(|| "result_table".to_string());
    let output_column = step
        .new_columns
        .first()
        .cloned()
        .unwrap_or_else(|| "value".to_string());
    let agg = if lower.contains("count the number of rows") {
        "COUNT(*)".to_string()
    } else {
        let func = if lower.contains("maximum") {
            "MAX"
        } else if lower.contains("minimum") {
            "MIN"
        } else if lower.contains("average") {
            "AVG"
        } else if lower.contains("sum") {
            "SUM"
        } else {
            "COUNT"
        };
        // The aggregated column: for grouped steps it is the quoted identifier
        // after the table and group column; for global steps it is the first.
        let target = if grouped {
            quoted.get(2).cloned()
        } else {
            quoted.first().cloned()
        }
        .unwrap_or_else(|| output_column.clone());
        if func == "COUNT" && target == output_column {
            "COUNT(*)".to_string()
        } else {
            format!("{func}({})", qualify(input_sketch, &target))
        }
    };

    let sql = if lower.contains(" by ") && grouped {
        let group_column = quoted.get(1).cloned().unwrap_or_else(|| "name".to_string());
        let group_q = qualify(input_sketch, &group_column);
        let group_alias = group_column
            .rsplit('.')
            .next()
            .unwrap_or(&group_column)
            .to_string();
        format!(
            "SELECT {group_q} AS {group_alias}, {agg} AS {output_column} FROM {table} GROUP BY {group_q}"
        )
    } else {
        format!("SELECT {agg} AS {output_column} FROM {table}")
    };
    (
        OperatorKind::SqlAggregation,
        vec![sql],
        "The step groups rows and computes an aggregate, which is a relational aggregation."
            .to_string(),
    )
}

fn decide_projection(
    step: &LogicalStep,
    quoted: &[String],
    input_sketch: Option<&TableSketch>,
) -> (OperatorKind, Vec<String>, String) {
    // "Keep only the 'a', 'b' columns of the 'T' table." — the last quoted span
    // is the table, the preceding ones are columns.
    let table = quoted
        .last()
        .cloned()
        .or_else(|| step.inputs.first().cloned())
        .unwrap_or_else(|| "result_table".to_string());
    let columns: Vec<String> = if quoted.len() > 1 {
        quoted[..quoted.len() - 1]
            .iter()
            .map(|c| {
                let q = qualify(input_sketch, c);
                let base = c.rsplit('.').next().unwrap_or(c);
                if q == *c {
                    q
                } else {
                    format!("{q} AS {base}")
                }
            })
            .collect()
    } else {
        vec!["*".to_string()]
    };
    let sql = format!("SELECT {} FROM {table}", columns.join(", "));
    (
        OperatorKind::Sql,
        vec![sql],
        "The step only projects columns, which plain SQL handles.".to_string(),
    )
}

fn decide_plot(quoted: &[String], lower: &str) -> (OperatorKind, Vec<String>, String) {
    let kind = if lower.contains("line plot") || lower.contains("line chart") {
        "line"
    } else if lower.contains("scatter") {
        "scatter"
    } else {
        "bar"
    };
    // "Plot the 'T' in a bar plot. The 'x' should be on the X-axis and the 'y'
    // on the Y-axis." — quoted = [T, x, y].
    let x = quoted.get(1).cloned().unwrap_or_else(|| "x".to_string());
    let y = quoted.get(2).cloned().unwrap_or_else(|| "y".to_string());
    (
        OperatorKind::Plot,
        vec![kind.to_string(), x, y],
        "The user asked for a plot of the final result, so the Plot operator is used.".to_string(),
    )
}

/// Qualify a column against the input-table sketch: if the exact name is not a
/// column but a qualified variant (`<t>.<column>`) is, use the qualified name.
fn qualify(input_sketch: Option<&TableSketch>, column: &str) -> String {
    let Some(sketch) = input_sketch else {
        return column.to_string();
    };
    if sketch.columns.iter().any(|c| c.name == column) {
        return column.to_string();
    }
    if let Some(found) = sketch
        .columns
        .iter()
        .find(|c| c.name.ends_with(&format!(".{column}")))
    {
        return found.name.clone();
    }
    column.to_string()
}

fn between<'a>(text: &'a str, start: &str, end: &str) -> Option<&'a str> {
    let pos = text.find(start)? + start.len();
    let rest = &text[pos..];
    let stop = rest.find(end)?;
    Some(&rest[..stop])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ColumnSketch, PromptContext, PromptKind};

    fn context_with_sketch(name: &str, columns: Vec<(&str, &str)>) -> PromptContext {
        PromptContext {
            kind: PromptKind::Mapping,
            query: String::new(),
            tables: vec![],
            intermediate_tables: vec![TableSketch {
                name: name.into(),
                num_rows: 10,
                columns: columns
                    .into_iter()
                    .map(|(n, t)| ColumnSketch {
                        name: n.into(),
                        dtype: t.into(),
                    })
                    .collect(),
                description: String::new(),
                foreign_keys: vec![],
            }],
            relevant_columns: vec![],
            step: None,
            observations: vec![],
            retry_note: None,
            error: None,
        }
    }

    fn empty_context() -> PromptContext {
        PromptContext {
            kind: PromptKind::Mapping,
            query: String::new(),
            tables: vec![],
            intermediate_tables: vec![],
            relevant_columns: vec![],
            step: None,
            observations: vec![],
            retry_note: None,
            error: None,
        }
    }

    #[test]
    fn join_steps_map_to_sql_join() {
        let step = LogicalStep::new(
            1,
            "Join the 'paintings_metadata' and 'painting_images' tables on the 'img_path' column to combine the two tables.",
            vec!["paintings_metadata".into(), "painting_images".into()],
            "joined_table",
            vec![],
        );
        let decision = decide(&step, &empty_context());
        assert_eq!(decision.operator, OperatorKind::SqlJoin);
        assert_eq!(
            decision.arguments[0],
            "SELECT * FROM paintings_metadata JOIN painting_images ON paintings_metadata.img_path = painting_images.img_path"
        );
    }

    #[test]
    fn visual_extraction_maps_to_visual_qa_with_figure4_arguments() {
        let step = LogicalStep::new(
            2,
            "Extract the number of swords depicted in each image from the 'image' column in the 'joined_table' table.",
            vec!["joined_table".into()],
            "joined_table",
            vec!["num_swords".into()],
        );
        let decision = decide(&step, &empty_context());
        assert_eq!(decision.operator, OperatorKind::VisualQa);
        assert_eq!(
            decision.arguments,
            vec![
                "image",
                "num_swords",
                "How many swords are depicted?",
                "int"
            ]
        );
    }

    #[test]
    fn whether_depicted_maps_to_yes_no_question() {
        let step = LogicalStep::new(
            2,
            "Extract whether madonna and child is depicted in each image from the 'image' column in the 'joined_table' table.",
            vec!["joined_table".into()],
            "joined_table",
            vec!["madonna_and_child_depicted".into()],
        );
        let decision = decide(&step, &empty_context());
        assert_eq!(decision.operator, OperatorKind::VisualQa);
        assert_eq!(decision.arguments[2], "Is madonna and child depicted?");
        assert_eq!(decision.arguments[3], "str");
    }

    #[test]
    fn text_extraction_uses_a_question_template_with_the_right_subject_column() {
        let step = LogicalStep::new(
            3,
            "Extract the number of points scored by each team from the 'report' column in the 'final_joined_table' table.",
            vec!["final_joined_table".into()],
            "final_joined_table",
            vec!["points_scored".into()],
        );
        // After the join the name column is only available in qualified form.
        let context = context_with_sketch(
            "final_joined_table",
            vec![
                ("teams.name", "str"),
                ("game_id", "int"),
                ("report", "TEXT"),
            ],
        );
        let decision = decide(&step, &context);
        assert_eq!(decision.operator, OperatorKind::TextQa);
        assert_eq!(decision.arguments[0], "report");
        assert_eq!(decision.arguments[1], "points_scored");
        assert_eq!(
            decision.arguments[2],
            "How many points did <teams.name> score?"
        );
    }

    #[test]
    fn century_extraction_maps_to_python() {
        let step = LogicalStep::new(
            2,
            "Extract the century from the dates in the 'inception' column of the 'joined_table' table.",
            vec!["joined_table".into()],
            "joined_table",
            vec!["century".into()],
        );
        let decision = decide(&step, &empty_context());
        assert_eq!(decision.operator, OperatorKind::PythonUdf);
        assert_eq!(decision.arguments[1], "century");
        assert!(decision.arguments[0].contains("inception"));
    }

    #[test]
    fn selection_builds_a_condition_using_observed_columns() {
        let step = LogicalStep::new(
            4,
            "Select only the rows of the 'joined_table' table where the 'madonna_and_child_depicted' column equals 'yes'.",
            vec!["joined_table".into()],
            "filtered_table",
            vec![],
        );
        let decision = decide(&step, &empty_context());
        assert_eq!(decision.operator, OperatorKind::SqlSelection);
        assert_eq!(decision.arguments[0], "madonna_and_child_depicted = 'yes'");

        // Free-form selection without quoted column falls back to the
        // *_depicted column visible in the intermediate sketch (Figure 2).
        let step = LogicalStep::new(
            4,
            "Select only the paintings depicting Madonna and Child.",
            vec!["joined_table".into()],
            "filtered_table",
            vec![],
        );
        let context = context_with_sketch(
            "joined_table",
            vec![("title", "str"), ("madonna_depicted", "str")],
        );
        let decision = decide(&step, &context);
        assert_eq!(decision.arguments[0], "madonna_depicted = 'yes'");
    }

    #[test]
    fn numeric_selections_do_not_quote_the_value() {
        let step = LogicalStep::new(
            3,
            "Select only the rows of the 'joined_table' table where the 'num_swords' column is at least '2'.",
            vec!["joined_table".into()],
            "filtered_table",
            vec![],
        );
        let decision = decide(&step, &empty_context());
        assert_eq!(decision.arguments[0], "num_swords >= 2");
    }

    #[test]
    fn grouped_aggregation_generates_group_by_sql_with_qualification() {
        let step = LogicalStep::new(
            4,
            "Group the 'final_joined_table' table by 'name' and compute the maximum of 'points_scored'.",
            vec!["final_joined_table".into()],
            "result_table",
            vec!["maximum_points_scored".into()],
        );
        let context = context_with_sketch(
            "final_joined_table",
            vec![("teams.name", "str"), ("points_scored", "int")],
        );
        let decision = decide(&step, &context);
        assert_eq!(decision.operator, OperatorKind::SqlAggregation);
        assert_eq!(
            decision.arguments[0],
            "SELECT teams.name AS name, MAX(points_scored) AS maximum_points_scored FROM final_joined_table GROUP BY teams.name"
        );
    }

    #[test]
    fn count_rows_aggregations() {
        let step = LogicalStep::new(
            2,
            "Count the number of rows in the 'filtered_table' table.",
            vec!["filtered_table".into()],
            "result_table",
            vec!["num_paintings".into()],
        );
        let decision = decide(&step, &empty_context());
        assert_eq!(
            decision.arguments[0],
            "SELECT COUNT(*) AS num_paintings FROM filtered_table"
        );

        let step = LogicalStep::new(
            3,
            "Group the 'filtered_table' table by 'century' and count the number of rows in each group.",
            vec!["filtered_table".into()],
            "result_table",
            vec!["num_paintings".into()],
        );
        let decision = decide(&step, &empty_context());
        assert_eq!(
            decision.arguments[0],
            "SELECT century AS century, COUNT(*) AS num_paintings FROM filtered_table GROUP BY century"
        );
    }

    #[test]
    fn plot_steps_extract_kind_and_axes() {
        let step = LogicalStep::new(
            6,
            "Plot the 'result_table' in a bar plot. The 'century' should be on the X-axis and the 'num_paintings' on the Y-axis.",
            vec!["result_table".into()],
            "plot",
            vec![],
        );
        let decision = decide(&step, &empty_context());
        assert_eq!(decision.operator, OperatorKind::Plot);
        assert_eq!(decision.arguments, vec!["bar", "century", "num_paintings"]);
    }

    #[test]
    fn projection_steps_generate_select_lists() {
        let step = LogicalStep::new(
            2,
            "Keep only the 'title', 'artist' columns of the 'filtered_table' table.",
            vec!["filtered_table".into()],
            "result_table",
            vec![],
        );
        let decision = decide(&step, &empty_context());
        assert_eq!(decision.operator, OperatorKind::Sql);
        assert_eq!(
            decision.arguments[0],
            "SELECT title, artist FROM filtered_table"
        );
    }

    #[test]
    fn unknown_steps_fall_back_to_pass_through_sql() {
        let step = LogicalStep::new(
            1,
            "Keep all rows of the 'teams' table as the result.",
            vec!["teams".into()],
            "result_table",
            vec![],
        );
        let decision = decide(&step, &empty_context());
        assert_eq!(decision.operator, OperatorKind::Sql);
        assert!(decision.arguments[0].contains("FROM"));
    }

    #[test]
    fn quoted_span_extraction() {
        assert_eq!(
            quoted_spans("Join the 'a' and 'b' tables on the 'k' column"),
            vec!["a", "b", "k"]
        );
        assert!(quoted_spans("no quotes here").is_empty());
    }
}
