//! The simulated language model: a deterministic, prompt-driven stand-in for
//! GPT-4 / ChatGPT-3.5.
//!
//! [`SimulatedLlm`] implements [`LlmClient`]: it receives exactly the same
//! prompts a remote model would receive, parses them (see
//! [`PromptContext`]), "reasons" about the query with the intent analyzer and
//! plan synthesizer, and answers in the textual output format the prompt asks
//! for. A [`ModelProfile`] controls how often calibrated mistakes are injected
//! so that the relative behaviour of GPT-4 vs ChatGPT-3.5 reported in the
//! paper (Tables 1 and 2) is reproduced.

use crate::chat::Conversation;
use crate::client::LlmClient;
use crate::context::{PromptContext, PromptKind};
use crate::error::{LlmError, LlmResult};
use crate::intent::{analyze, singular};
use crate::mapping::decide;
use crate::plan::{ErrorAnalysis, LogicalPlan, OperatorDecision};
use crate::profile::{ErrorInjector, MappingCorruption, ModelProfile, PlanCorruption};
use crate::synthesis::synthesize;
use caesura_modal::OperatorKind;

/// The deterministic simulated language model.
#[derive(Debug, Clone)]
pub struct SimulatedLlm {
    injector: ErrorInjector,
    name: String,
}

impl SimulatedLlm {
    /// Create a simulated model with the given profile and run seed.
    pub fn new(profile: ModelProfile, seed: u64) -> Self {
        SimulatedLlm {
            injector: ErrorInjector::new(profile, seed),
            name: profile.name().to_string(),
        }
    }

    /// A GPT-4-like model with the default seed.
    pub fn gpt4() -> Self {
        SimulatedLlm::new(ModelProfile::Gpt4, 42)
    }

    /// A ChatGPT-3.5-like model with the default seed.
    pub fn chatgpt35() -> Self {
        SimulatedLlm::new(ModelProfile::ChatGpt35, 42)
    }

    /// The profile this model simulates.
    pub fn profile(&self) -> ModelProfile {
        self.injector.profile()
    }

    fn respond_planning(&self, context: &PromptContext) -> String {
        let intent = analyze(&context.query, &context.tables);
        let multimodal = intent.is_multimodal();
        let mut plan = synthesize(&intent, &context.tables);
        if is_fieldwork(context) {
            // The fieldwork benchmark grades *expected* outcomes per query, so
            // its mistakes are scripted by adversarial query markers instead of
            // drawn from the calibrated profile rates.
            if let Some(corruption) = fieldwork_plan_corruption(&context.query) {
                plan = corrupt_plan(plan, corruption);
            }
        } else if let Some(corruption) = self.injector.plan_corruption(&context.query, multimodal) {
            plan = corrupt_plan(plan, corruption);
        }
        plan.render()
    }

    fn respond_mapping(&self, context: &PromptContext) -> LlmResult<String> {
        let step = context
            .step
            .clone()
            .ok_or_else(|| LlmError::MalformedPrompt {
                message: "the mapping prompt does not contain a step to map".into(),
            })?;
        let mut decision = decide(&step, context);
        let multimodal_step = decision.operator.is_multimodal();
        if is_fieldwork(context) {
            decision = fieldwork_mapping_corruption(&context.query, &step, decision);
        } else if let Some(corruption) =
            self.injector
                .mapping_corruption(&context.query, step.number, multimodal_step)
        {
            let retrying = context.retry_note.is_some();
            decision = corrupt_decision(decision, corruption, retrying);
        }
        Ok(decision.render(&step.description))
    }

    fn respond_discovery(&self, context: &PromptContext) -> String {
        let query = context.query.to_lowercase();
        let query_words: Vec<String> = query
            .split(|c: char| !c.is_alphanumeric())
            .filter(|w| !w.is_empty())
            .map(singular)
            .collect();
        let needs_dates = query.contains("century")
            || query.contains("year")
            || query.contains("earliest")
            || query.contains("latest");
        let needs_images = query.contains("depict")
            || query.contains("shown")
            || query.contains("image")
            || query.contains("photo");
        let needs_text = query.contains("points")
            || query.contains("score")
            || query.contains("win")
            || query.contains("won")
            || query.contains("lose")
            || query.contains("lost")
            || query.contains("rebound")
            || query.contains("assist")
            || query.contains("specimen")
            || query.contains("reading")
            || query.contains("sample")
            || query.contains("collected")
            || query.contains("logged")
            || query.contains("stored");
        let grouped_by_entity = query.contains("each team")
            || query.contains("every team")
            || query.contains("each player")
            || query.contains("each artist")
            || query.contains("each station")
            || query.contains("every station");

        let mut lines = Vec::new();
        for table in &context.tables {
            for column in &table.columns {
                let name = column.name.to_lowercase();
                let mentioned = query_words.iter().any(|w| *w == singular(&name));
                let date_like = needs_dates
                    && (name.contains("inception")
                        || name.contains("date")
                        || name.contains("year")
                        || name.contains("founded"));
                let modality = (needs_images && column.dtype == "IMAGE")
                    || (needs_text && column.dtype == "TEXT");
                let join_key = grouped_by_entity && (name == "name" || name == "game_id");
                if mentioned || date_like || modality || join_key {
                    lines.push(format!("Relevant: {}.{}", table.name, column.name));
                }
            }
        }
        if lines.is_empty() {
            lines.push("Relevant: none".to_string());
        }
        lines.join("\n")
    }

    fn respond_error_analysis(&self, context: &PromptContext) -> String {
        let error = context.error.clone().unwrap_or_default();
        let message = error.message.to_lowercase();
        let mut analysis = ErrorAnalysis {
            causes: format!("The execution failed with: {}", error.message),
            fix: String::new(),
            plan_flawed: false,
            alternative_plan: false,
            different_tool: false,
            update_arguments: false,
        };
        if message.contains("unknown table") {
            analysis.plan_flawed = true;
            analysis.alternative_plan = true;
            analysis.fix =
                "The plan references a table that does not exist; the plan must be rewritten using only existing tables.".into();
        } else if message.contains("unknown column")
            || message.contains("ambiguous column")
            || message.contains("not found")
            || message.contains("no such")
        {
            analysis.update_arguments = true;
            analysis.fix =
                "The operator referenced a column that does not exist in its input; the arguments should use one of the available columns.".into();
        } else if message.contains("image column")
            || message.contains("text column")
            || message.contains("cannot answer")
            || message.contains("no supported transformation")
        {
            analysis.different_tool = true;
            analysis.update_arguments = true;
            analysis.fix =
                "The chosen operator cannot process this input; a different operator (or different arguments) should be selected for the step.".into();
        } else if message.contains("cannot be combined")
            || message.contains("must appear in the group by")
            || message.contains("invalid aggregate")
        {
            analysis.update_arguments = true;
            analysis.fix = "The SQL arguments are invalid and should be corrected.".into();
        } else {
            analysis.update_arguments = true;
            analysis.fix = "Retry the step with corrected arguments.".into();
        }
        analysis.render()
    }
}

impl LlmClient for SimulatedLlm {
    fn complete(&self, conversation: &Conversation) -> LlmResult<String> {
        let context = PromptContext::parse(conversation);
        match context.kind {
            PromptKind::Planning => Ok(self.respond_planning(&context)),
            PromptKind::Mapping => self.respond_mapping(&context),
            PromptKind::Discovery => Ok(self.respond_discovery(&context)),
            PromptKind::ErrorAnalysis => Ok(self.respond_error_analysis(&context)),
            PromptKind::Unknown => Err(LlmError::ModelFailure {
                model: self.name.clone(),
                message: "the prompt does not belong to any CAESURA phase".into(),
            }),
        }
    }

    /// Serve a batch in one dispatch. The simulated model answers each
    /// prompt independently (its error injection keys on prompt content, not
    /// call order), so batching changes neither the answers nor their order.
    fn complete_batch(&self, conversations: &[Conversation]) -> Vec<LlmResult<String>> {
        conversations.iter().map(|c| self.complete(c)).collect()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Whether the prompt belongs to the fieldwork lake. The fieldwork benchmark
/// needs *deterministic* per-query outcomes (its adversarial tier grades
/// expected error categories), so the profile-rate injector is bypassed and
/// mistakes are scripted by query markers instead.
fn is_fieldwork(context: &PromptContext) -> bool {
    context.tables.iter().any(|t| t.name == "expedition_logs")
}

/// Scripted planning mistakes of the fieldwork adversarial tier.
///
/// * "photo archive" — the model misreads the photo column as relational
///   metadata (Data Misunderstanding: the VisualQA step becomes a title
///   lookup and TextQA steps are dropped).
/// * "catalog code" — the model hallucinates a column that exists in no table
///   (Impossible Actions).
fn fieldwork_plan_corruption(query: &str) -> Option<PlanCorruption> {
    let lower = query.to_lowercase();
    if lower.contains("photo archive") {
        Some(PlanCorruption::DataMisunderstanding)
    } else if lower.contains("catalog code") {
        Some(PlanCorruption::ImpossibleColumn)
    } else {
        None
    }
}

/// Scripted mapping mistakes of the fieldwork adversarial tier.
///
/// * "ledger" — the model answers the TextQA step with plain SQL (Wrong
///   Tool).
/// * "field guide" — the model asks the TextQA operator about a statistic
///   that no expedition log mentions (Wrong Arguments: every per-row answer
///   comes back NULL and the aggregate diverges from the reference).
fn fieldwork_mapping_corruption(
    query: &str,
    step: &crate::plan::LogicalStep,
    mut decision: OperatorDecision,
) -> OperatorDecision {
    let lower = query.to_lowercase();
    let report_step = step.description.to_lowercase().contains("'report' column");
    if lower.contains("ledger") && report_step {
        return corrupt_decision(decision, MappingCorruption::WrongTool, false);
    }
    if lower.contains("field guide") && report_step && decision.arguments.len() >= 3 {
        decision.arguments[2] = decision.arguments[2]
            .replace("specimens", "pebbles")
            .replace("readings", "pebbles")
            .replace("samples", "pebbles");
    }
    decision
}

/// Apply a plan-level corruption (the calibrated planning mistakes of Table 2).
fn corrupt_plan(mut plan: LogicalPlan, corruption: PlanCorruption) -> LogicalPlan {
    match corruption {
        PlanCorruption::DataMisunderstanding => {
            // Use metadata columns instead of looking at images / reading reports
            // (the dominant ChatGPT-3.5 mistake reported in §4.3).
            let mut steps = Vec::new();
            for mut step in plan.steps {
                let lower = step.description.to_lowercase();
                if lower.contains("'image' column") {
                    let entity = extract_entity(&lower).unwrap_or_else(|| "the subject".into());
                    let input = step
                        .inputs
                        .first()
                        .cloned()
                        .unwrap_or_else(|| "joined_table".to_string());
                    step.description = format!(
                        "Select only the rows of the '{input}' table where the 'title' column contains '{entity}'."
                    );
                    step.new_columns = Vec::new();
                    step.output = input.clone();
                    steps.push(step);
                } else if lower.contains("'report' column") {
                    // Drop the text extraction entirely: the model believes the
                    // relational tables already contain the statistic.
                    continue;
                } else {
                    steps.push(step);
                }
            }
            plan.steps = steps;
        }
        PlanCorruption::MissingJoin => {
            if let Some(pos) = plan
                .steps
                .iter()
                .position(|s| s.description.to_lowercase().starts_with("join"))
            {
                plan.steps.remove(pos);
            }
        }
        PlanCorruption::ImpossibleColumn => {
            // Reference a column that does not exist in any table.
            if let Some(step) = plan.steps.iter_mut().find(|s| {
                s.description.starts_with("Select only") || s.description.starts_with("Group the")
            }) {
                step.description = step
                    .description
                    .replacen('\'', "'nonexistent_", 2)
                    .replacen("'nonexistent_", "'", 1);
            } else if let Some(step) = plan.steps.first_mut() {
                step.description
                    .push_str(" Use the 'category_info' column for this.");
            }
        }
    }
    // Renumber after removals.
    for (i, step) in plan.steps.iter_mut().enumerate() {
        step.number = i + 1;
    }
    plan
}

fn extract_entity(lower_description: &str) -> Option<String> {
    let slice = |start: &str, end: &str| -> Option<String> {
        let pos = lower_description.find(start)? + start.len();
        let rest = &lower_description[pos..];
        rest.find(end).map(|stop| rest[..stop].trim().to_string())
    };
    slice("the number of ", " depicted").or_else(|| slice("whether ", " is depicted"))
}

/// Apply a mapping-level corruption (the Wrong Arguments / Wrong Tool mistakes
/// of Table 2). `retrying` is true when the prompt carries an error note from a
/// previous failed attempt; recoverable typos are not re-applied in that case.
fn corrupt_decision(
    decision: OperatorDecision,
    corruption: MappingCorruption,
    retrying: bool,
) -> OperatorDecision {
    match corruption {
        MappingCorruption::RecoverableTypo if retrying => decision,
        MappingCorruption::RecoverableTypo | MappingCorruption::WrongArguments => {
            corrupt_arguments(decision)
        }
        MappingCorruption::WrongTool => {
            let input = "result_table";
            OperatorDecision {
                step_number: decision.step_number,
                reasoning: "The information can probably be found in the existing columns, so plain SQL suffices.".into(),
                operator: OperatorKind::Sql,
                arguments: vec![format!("SELECT * FROM {input}")],
            }
        }
    }
}

fn corrupt_arguments(mut decision: OperatorDecision) -> OperatorDecision {
    match decision.operator {
        OperatorKind::VisualQa => {
            if decision.arguments.len() >= 3 {
                decision.arguments[2] = "How many objects are depicted?".to_string();
            }
        }
        OperatorKind::TextQa => {
            if decision.arguments.len() >= 3 {
                decision.arguments[2] = "How many goals did <name> kick?".to_string();
            }
        }
        OperatorKind::PythonUdf => {
            if let Some(first) = decision.arguments.first_mut() {
                *first = "Render the values as roman numerals".to_string();
            }
        }
        OperatorKind::Plot => {
            if decision.arguments.len() >= 3 {
                decision.arguments[2] = "missing_column".to_string();
            }
        }
        OperatorKind::SqlSelection => {
            if let Some(first) = decision.arguments.first_mut() {
                *first = format!("wrong_{first}");
            }
        }
        _ => {
            if let Some(first) = decision.arguments.first_mut() {
                *first = first.replacen("SELECT ", "SELECT missing_column, ", 1);
            }
        }
    }
    decision
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::LogicalStep;
    use crate::prompt::{PromptBuilder, RelevantColumn};
    use caesura_engine::{Catalog, DataType, ForeignKey, Schema, TableBuilder};

    fn artwork_catalog() -> Catalog {
        let mut catalog = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("title", DataType::Str),
            ("artist", DataType::Str),
            ("inception", DataType::Str),
            ("movement", DataType::Str),
            ("genre", DataType::Str),
            ("img_path", DataType::Str),
        ]);
        let mut b = TableBuilder::new("paintings_metadata", schema);
        b.push_values([
            "Madonna",
            "Giovanni Alberti",
            "1889",
            "Baroque",
            "religious art",
            "img/1.png",
        ])
        .unwrap();
        catalog.register(b.build());
        let schema = Schema::from_pairs(&[("img_path", DataType::Str), ("image", DataType::Image)]);
        catalog.register(TableBuilder::new("painting_images", schema).build());
        catalog.add_foreign_key(ForeignKey::new(
            "paintings_metadata",
            "img_path",
            "painting_images",
            "img_path",
        ));
        catalog
    }

    #[test]
    fn planning_round_trip_produces_a_parseable_multimodal_plan() {
        let llm = SimulatedLlm::gpt4();
        let builder = PromptBuilder::default();
        let prompt = builder.planning_prompt(
            &artwork_catalog(),
            "Plot the number of paintings depicting Madonna and Child for each century!",
            &[RelevantColumn {
                table: "paintings_metadata".into(),
                column: "inception".into(),
                examples: vec!["1889".into()],
            }],
        );
        let response = llm.complete(&prompt).unwrap();
        let plan = LogicalPlan::parse(&response).unwrap();
        assert!(plan.steps.len() >= 5);
        assert!(response.contains("Join"));
        assert!(response.contains("Plot"));
    }

    #[test]
    fn mapping_round_trip_produces_a_parseable_decision() {
        let llm = SimulatedLlm::gpt4();
        let builder = PromptBuilder::default();
        let step = LogicalStep::new(
            1,
            "Join the 'paintings_metadata' and 'painting_images' tables on the 'img_path' column to combine the two tables.",
            vec!["paintings_metadata".into(), "painting_images".into()],
            "joined_table",
            vec![],
        );
        let prompt = builder.mapping_prompt(
            &artwork_catalog(),
            &Catalog::new(),
            "Plot the number of paintings depicting Madonna and Child for each century!",
            &step,
            &[],
            &[],
            None,
        );
        let response = llm.complete(&prompt).unwrap();
        let decision = OperatorDecision::parse(&response).unwrap();
        assert_eq!(decision.operator, OperatorKind::SqlJoin);
        assert!(decision.arguments[0].contains("JOIN painting_images"));
    }

    #[test]
    fn discovery_marks_inception_and_image_columns_for_the_figure1_query() {
        let llm = SimulatedLlm::gpt4();
        let builder = PromptBuilder::default();
        let prompt = builder.discovery_prompt(
            &artwork_catalog(),
            "Plot the number of paintings depicting Madonna and Child for each century!",
        );
        let response = llm.complete(&prompt).unwrap();
        assert!(response.contains("paintings_metadata.inception"));
        assert!(response.contains("painting_images.image"));
    }

    #[test]
    fn error_analysis_requests_argument_updates_for_unknown_columns() {
        let llm = SimulatedLlm::gpt4();
        let builder = PromptBuilder::default();
        let prompt = builder.error_prompt(
            "a query",
            "Step 1: ...",
            "Step 2: Select rows",
            "Operator: SQL Selection, Arguments: (dog_depicted = 'yes')",
            "unknown column 'dog_depicted'; available columns are [title, image]",
        );
        let response = llm.complete(&prompt).unwrap();
        let analysis = ErrorAnalysis::parse(&response).unwrap();
        assert!(analysis.update_arguments);
        assert!(!analysis.should_replan());
    }

    #[test]
    fn error_analysis_replans_for_unknown_tables() {
        let llm = SimulatedLlm::gpt4();
        let builder = PromptBuilder::default();
        let prompt = builder.error_prompt(
            "a query",
            "Step 1: ...",
            "Step 1: Join tables",
            "Operator: SQL Join",
            "unknown table 'paintings'; available tables are [paintings_metadata]",
        );
        let response = llm.complete(&prompt).unwrap();
        let analysis = ErrorAnalysis::parse(&response).unwrap();
        assert!(analysis.should_replan());
    }

    #[test]
    fn chatgpt35_data_misunderstanding_rewrites_image_steps_to_title_lookups() {
        let plan = LogicalPlan {
            thought: String::new(),
            steps: vec![
                LogicalStep::new(
                    1,
                    "Join the 'paintings_metadata' and 'painting_images' tables on the 'img_path' column.",
                    vec!["paintings_metadata".into(), "painting_images".into()],
                    "joined_table",
                    vec![],
                ),
                LogicalStep::new(
                    2,
                    "Extract whether madonna and child is depicted in each image from the 'image' column in the 'joined_table' table.",
                    vec!["joined_table".into()],
                    "joined_table",
                    vec!["madonna_and_child_depicted".into()],
                ),
            ],
        };
        let corrupted = corrupt_plan(plan, PlanCorruption::DataMisunderstanding);
        assert_eq!(corrupted.steps.len(), 2);
        assert!(corrupted.steps[1]
            .description
            .contains("'title' column contains"));
        assert!(corrupted.steps[1].new_columns.is_empty());
    }

    #[test]
    fn missing_join_corruption_drops_the_join_step() {
        let plan = LogicalPlan {
            thought: String::new(),
            steps: vec![
                LogicalStep::new(
                    1,
                    "Join the 'a' and 'b' tables on the 'k' column.",
                    vec![],
                    "j",
                    vec![],
                ),
                LogicalStep::new(
                    2,
                    "Count the number of rows in the 'j' table.",
                    vec![],
                    "r",
                    vec![],
                ),
            ],
        };
        let corrupted = corrupt_plan(plan, PlanCorruption::MissingJoin);
        assert_eq!(corrupted.steps.len(), 1);
        assert_eq!(corrupted.steps[0].number, 1);
        assert!(corrupted.steps[0].description.starts_with("Count"));
    }

    #[test]
    fn wrong_tool_corruption_replaces_multimodal_operators_with_sql() {
        let decision = OperatorDecision {
            step_number: 2,
            reasoning: String::new(),
            operator: OperatorKind::VisualQa,
            arguments: vec![
                "image".into(),
                "num_swords".into(),
                "How many swords are depicted?".into(),
                "int".into(),
            ],
        };
        let corrupted = corrupt_decision(decision, MappingCorruption::WrongTool, false);
        assert_eq!(corrupted.operator, OperatorKind::Sql);
    }

    #[test]
    fn recoverable_typos_disappear_on_retry() {
        let decision = OperatorDecision {
            step_number: 2,
            reasoning: String::new(),
            operator: OperatorKind::SqlSelection,
            arguments: vec!["madonna_depicted = 'yes'".into()],
        };
        let corrupted =
            corrupt_decision(decision.clone(), MappingCorruption::RecoverableTypo, false);
        assert!(corrupted.arguments[0].starts_with("wrong_"));
        let fixed = corrupt_decision(decision.clone(), MappingCorruption::RecoverableTypo, true);
        assert_eq!(fixed, decision);
        // Hard wrong-arguments mistakes persist across retries.
        let still_wrong = corrupt_decision(decision, MappingCorruption::WrongArguments, true);
        assert!(still_wrong.arguments[0].starts_with("wrong_"));
    }

    #[test]
    fn unknown_prompts_are_rejected() {
        let llm = SimulatedLlm::gpt4();
        let convo = Conversation::new()
            .with(crate::chat::ChatMessage::system("You are a poet."))
            .with(crate::chat::ChatMessage::human("Write a haiku."));
        assert!(llm.complete(&convo).is_err());
    }
}
