//! Logical-plan synthesis: from an analyzed [`QueryIntent`] to the step-wise
//! textual plan the planning phase returns.
//!
//! The synthesizer mirrors what the paper expects GPT-4 to do in the planning
//! phase: figure out which tables must be joined (via the declared foreign
//! keys), which information must be extracted from images / text / dates, in
//! which order filters and aggregations apply, and whether a plot step is
//! needed. The output is a [`LogicalPlan`] whose step descriptions use the
//! same phrasing as the examples in Figure 4 of the paper.

use crate::context::TableSketch;
use crate::intent::{AggKind, AttributeRef, FilterOp, OutputKind, QueryIntent};
use crate::plan::{LogicalPlan, LogicalStep};
use std::collections::BTreeSet;

/// Synthesize a logical plan for an intent over the given table sketches.
pub fn synthesize(intent: &QueryIntent, tables: &[TableSketch]) -> LogicalPlan {
    Synthesizer {
        intent,
        tables,
        steps: Vec::new(),
        current: intent.main_table.clone(),
        extracted: BTreeSet::new(),
    }
    .run()
}

struct Synthesizer<'a> {
    intent: &'a QueryIntent,
    tables: &'a [TableSketch],
    steps: Vec<LogicalStep>,
    /// Name of the current working table.
    current: String,
    /// Column names that have already been materialized by extraction steps.
    extracted: BTreeSet<String>,
}

impl<'a> Synthesizer<'a> {
    fn run(mut self) -> LogicalPlan {
        let thought = self.thought();

        // 1. Joins to reach every modality / table the query needs.
        self.add_joins();

        // 2. Derivations (Python) and extractions (VisualQA / TextQA).
        self.add_extractions();

        // 3. Filters.
        self.add_filters();

        // 4. Aggregation.
        self.add_aggregation();

        // 5. Projection for "List ..." queries without aggregation.
        self.add_projection();

        // 6. Plot.
        self.add_plot();

        if self.steps.is_empty() {
            // Degenerate query: just show the main table.
            let table = self.current.clone();
            self.push_step(
                format!("Keep all rows of the '{table}' table as the result."),
                vec![table],
                "result_table",
                vec![],
            );
        }

        LogicalPlan {
            thought,
            steps: self.steps,
        }
    }

    fn thought(&self) -> String {
        let mut needs = Vec::new();
        if self.intent.all_attributes().iter().any(|a| {
            matches!(
                a,
                AttributeRef::ImageCount { .. } | AttributeRef::ImageDepicts { .. }
            )
        }) {
            needs.push("look at the images");
        }
        if self.intent.all_attributes().iter().any(|a| {
            matches!(
                a,
                AttributeRef::TextStat { .. } | AttributeRef::TextOutcome { .. }
            )
        }) {
            needs.push("read the game reports");
        }
        if self.intent.all_attributes().iter().any(|a| a.is_derived()) {
            needs.push("derive a new column from the dates");
        }
        if self.intent.aggregate.is_some() {
            needs.push("aggregate the results");
        }
        if self.intent.output == OutputKind::Plot {
            needs.push("plot the final table");
        }
        if needs.is_empty() {
            "The request can be answered directly from the relational tables.".to_string()
        } else {
            format!("To answer the request I need to {}.", needs.join(", "))
        }
    }

    fn push_step(
        &mut self,
        description: String,
        inputs: Vec<String>,
        output: &str,
        new_columns: Vec<String>,
    ) {
        let number = self.steps.len() + 1;
        self.steps.push(LogicalStep::new(
            number,
            description,
            inputs,
            output,
            new_columns,
        ));
        self.current = output.to_string();
    }

    fn find_table(&self, name: &str) -> Option<&TableSketch> {
        self.tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// The modality tables the query needs besides the main table.
    fn needed_tables(&self) -> Vec<String> {
        let mut needed = Vec::new();
        let attrs = self.intent.all_attributes();
        let needs_images = attrs.iter().any(|a| {
            matches!(
                a,
                AttributeRef::ImageCount { .. } | AttributeRef::ImageDepicts { .. }
            )
        });
        let needs_text = attrs.iter().any(|a| {
            matches!(
                a,
                AttributeRef::TextStat { .. } | AttributeRef::TextOutcome { .. }
            )
        });
        if needs_images {
            if let Some(t) = self.tables.iter().find(|t| !t.image_columns().is_empty()) {
                needed.push(t.name.clone());
            }
        }
        if needs_text {
            if let Some(t) = self.tables.iter().find(|t| !t.text_columns().is_empty()) {
                needed.push(t.name.clone());
            }
        }
        // Columns referenced from other relational tables also require a join
        // (e.g. grouping players by a column of the teams table).
        for attr in attrs {
            if let AttributeRef::Column { table, .. }
            | AttributeRef::DerivedCentury { table, .. }
            | AttributeRef::DerivedYear { table, .. } = attr
            {
                if !table.eq_ignore_ascii_case(&self.intent.main_table) && !needed.contains(table) {
                    // Only join if a foreign-key path exists; otherwise assume
                    // the column is reachable in the main table.
                    if !self.join_path(&self.intent.main_table, table).is_empty() {
                        needed.push(table.clone());
                    }
                }
            }
        }
        needed
    }

    /// Breadth-first search over the declared foreign keys from `from` to `to`,
    /// returning the join edges `(left_table, left_col, right_table, right_col)`.
    fn join_path(&self, from: &str, to: &str) -> Vec<(String, String, String, String)> {
        if from.eq_ignore_ascii_case(to) {
            return Vec::new();
        }
        // Collect all foreign-key edges (both directions).
        let mut edges: Vec<(String, String, String, String)> = Vec::new();
        for table in self.tables {
            for fk in &table.foreign_keys {
                edges.push((
                    fk.from_table.clone(),
                    fk.from_column.clone(),
                    fk.to_table.clone(),
                    fk.to_column.clone(),
                ));
            }
        }
        // Also add shared-column edges between a relational table and a
        // modality table (e.g. img_path), in case no foreign keys are declared.
        for a in self.tables {
            for b in self.tables {
                if a.name >= b.name {
                    continue;
                }
                for column in &a.columns {
                    if column.dtype == "IMAGE" || column.dtype == "TEXT" {
                        continue;
                    }
                    if b.has_column(&column.name) {
                        edges.push((
                            a.name.clone(),
                            column.name.clone(),
                            b.name.clone(),
                            column.name.clone(),
                        ));
                    }
                }
            }
        }
        // BFS.
        let mut queue = vec![(from.to_string(), Vec::new())];
        let mut visited = BTreeSet::new();
        visited.insert(from.to_lowercase());
        while let Some((node, path)) = queue.pop() {
            for (a, ac, b, bc) in &edges {
                let next = if a.eq_ignore_ascii_case(&node) {
                    Some((b.clone(), a.clone(), ac.clone(), b.clone(), bc.clone()))
                } else if b.eq_ignore_ascii_case(&node) {
                    Some((a.clone(), b.clone(), bc.clone(), a.clone(), ac.clone()))
                } else {
                    None
                };
                if let Some((next_table, lt, lc, rt, rc)) = next {
                    if visited.contains(&next_table.to_lowercase()) {
                        continue;
                    }
                    visited.insert(next_table.to_lowercase());
                    let mut next_path = path.clone();
                    next_path.push((lt, lc, rt, rc));
                    if next_table.eq_ignore_ascii_case(to) {
                        return next_path;
                    }
                    queue.insert(0, (next_table, next_path));
                }
            }
        }
        Vec::new()
    }

    fn add_joins(&mut self) {
        let needed = self.needed_tables();
        let mut join_count = 0usize;
        for target in needed {
            let start = if join_count == 0 {
                self.intent.main_table.clone()
            } else {
                // Subsequent joins start from the table already reached; reuse
                // the path computation from the main table and skip edges that
                // were already joined in.
                self.intent.main_table.clone()
            };
            let path = self.join_path(&start, &target);
            for (left, left_col, right, right_col) in path {
                // Skip edges whose right side was already joined in.
                let already = self
                    .steps
                    .iter()
                    .any(|s| s.inputs.iter().any(|i| i.eq_ignore_ascii_case(&right)));
                if already || right.eq_ignore_ascii_case(&self.current) {
                    continue;
                }
                join_count += 1;
                let left_table = if join_count == 1 {
                    left.clone()
                } else {
                    self.current.clone()
                };
                let output = if join_count == 1 {
                    "joined_table".to_string()
                } else {
                    "final_joined_table".to_string()
                };
                let key_phrase = if left_col == right_col {
                    format!("on the '{left_col}' column")
                } else {
                    format!("on the '{left_col}' and '{right_col}' columns")
                };
                self.push_step(
                    format!(
                        "Join the '{left_table}' and '{right}' tables {key_phrase} to combine the two tables."
                    ),
                    vec![left_table.clone(), right.clone()],
                    &output,
                    vec![],
                );
            }
        }
    }

    /// All attributes that need a materialization step, in a stable order.
    fn attributes_to_materialize(&self) -> Vec<AttributeRef> {
        let mut out: Vec<AttributeRef> = Vec::new();
        let mut push = |attr: &AttributeRef| {
            if (attr.is_derived() || attr.is_multimodal()) && !out.contains(attr) {
                out.push(attr.clone());
            }
        };
        if let Some(group) = &self.intent.group_by {
            push(group);
        }
        if let Some(agg) = &self.intent.aggregate {
            push(&agg.target);
        }
        for filter in &self.intent.filters {
            push(&filter.attribute);
        }
        for projection in &self.intent.projection {
            push(projection);
        }
        out
    }

    fn add_extractions(&mut self) {
        for attr in self.attributes_to_materialize() {
            let column = attr.column_name();
            if self.extracted.contains(&column) {
                continue;
            }
            let current = self.current.clone();
            match &attr {
                AttributeRef::DerivedCentury { column: source, .. } => {
                    self.push_step(
                        format!(
                            "Extract the century from the dates in the '{source}' column of the '{current}' table."
                        ),
                        vec![current.clone()],
                        &current,
                        vec!["century".to_string()],
                    );
                }
                AttributeRef::DerivedYear { column: source, .. } => {
                    self.push_step(
                        format!(
                            "Extract the year from the dates in the '{source}' column of the '{current}' table."
                        ),
                        vec![current.clone()],
                        &current,
                        vec!["year".to_string()],
                    );
                }
                AttributeRef::ImageCount { entity } => {
                    self.push_step(
                        format!(
                            "Extract the number of {entity} depicted in each image from the 'image' column in the '{current}' table."
                        ),
                        vec![current.clone()],
                        &current,
                        vec![column.clone()],
                    );
                }
                AttributeRef::ImageDepicts { entity } => {
                    self.push_step(
                        format!(
                            "Extract whether {entity} is depicted in each image from the 'image' column in the '{current}' table."
                        ),
                        vec![current.clone()],
                        &current,
                        vec![column.clone()],
                    );
                }
                AttributeRef::TextStat { stat } => {
                    let phrase = text_stat_phrase(stat);
                    self.push_step(
                        format!(
                            "Extract the number of {stat} {phrase} from the 'report' column in the '{current}' table."
                        ),
                        vec![current.clone()],
                        &current,
                        vec![column.clone()],
                    );
                }
                AttributeRef::TextOutcome { win } => {
                    let verb = if *win { "won" } else { "lost" };
                    self.push_step(
                        format!(
                            "Extract whether each team {verb} the game from the 'report' column in the '{current}' table."
                        ),
                        vec![current.clone()],
                        &current,
                        vec![column.clone()],
                    );
                }
                AttributeRef::Column { .. } | AttributeRef::RowCount => {}
            }
            self.extracted.insert(column);
        }
    }

    fn add_filters(&mut self) {
        // Filters from the intent, plus an implicit filter when the aggregate
        // counts rows that satisfy a depicted/outcome condition.
        let mut filters = self.intent.filters.clone();
        if let Some(agg) = &self.intent.aggregate {
            if agg.func == AggKind::Count {
                match &agg.target {
                    AttributeRef::ImageDepicts { .. } | AttributeRef::TextOutcome { .. } => {
                        let already = filters.iter().any(|f| f.attribute == agg.target);
                        if !already {
                            filters.push(crate::intent::FilterIntent {
                                attribute: agg.target.clone(),
                                op: FilterOp::Eq,
                                value: "yes".to_string(),
                            });
                        }
                    }
                    _ => {}
                }
            }
        }

        for filter in filters {
            let column = filter.attribute.column_name();
            let current = self.current.clone();
            let op_phrase = match filter.op {
                FilterOp::Eq => "equals",
                FilterOp::Gt => "is greater than",
                FilterOp::GtEq => "is at least",
                FilterOp::Lt => "is less than",
            };
            self.push_step(
                format!(
                    "Select only the rows of the '{current}' table where the '{column}' column {op_phrase} '{}'.",
                    filter.value
                ),
                vec![current.clone()],
                "filtered_table",
                vec![],
            );
        }
    }

    fn add_aggregation(&mut self) {
        let Some(agg) = &self.intent.aggregate else {
            return;
        };
        let current = self.current.clone();
        let group_column = self.intent.group_by.as_ref().map(|g| g.column_name());

        // Determine the aggregated column and the output column name.
        let (agg_func, target_column) = match (&agg.func, &agg.target) {
            (AggKind::Count, AttributeRef::RowCount)
            | (AggKind::Count, AttributeRef::ImageDepicts { .. })
            | (AggKind::Count, AttributeRef::TextOutcome { .. }) => (AggKind::Count, None),
            (func, target) => (*func, Some(target.column_name())),
        };
        let output_column = match (&agg_func, &target_column) {
            (AggKind::Count, None) => self.count_alias(),
            (func, Some(column)) => format!("{}_{}", func.english().replace(' ', "_"), column),
            (_, None) => self.count_alias(),
        };

        let description = match (&group_column, &target_column, agg_func) {
            (Some(group), None, AggKind::Count) => format!(
                "Group the '{current}' table by '{group}' and count the number of rows in each group."
            ),
            (Some(group), Some(target), func) => format!(
                "Group the '{current}' table by '{group}' and compute the {} of '{target}'.",
                func.english()
            ),
            (None, None, _) => {
                format!("Count the number of rows in the '{current}' table.")
            }
            (Some(group), None, _) => format!(
                "Group the '{current}' table by '{group}' and count the number of rows in each group."
            ),
            (None, Some(target), func) => format!(
                "Compute the {} of the '{target}' column in the '{current}' table.",
                func.english()
            ),
        };
        self.push_step(
            description,
            vec![current],
            "result_table",
            vec![output_column],
        );
    }

    fn count_alias(&self) -> String {
        // "num_paintings" / "num_teams" / generically "num_rows".
        let main = self
            .find_table(&self.intent.main_table)
            .map(|t| t.name.clone())
            .unwrap_or_else(|| self.intent.main_table.clone());
        let stem = main
            .split('_')
            .next()
            .unwrap_or(&main)
            .trim_end_matches('s')
            .to_string();
        if stem.is_empty() {
            "num_rows".to_string()
        } else {
            format!("num_{stem}s")
        }
    }

    fn add_projection(&mut self) {
        if self.intent.projection.is_empty() || self.intent.aggregate.is_some() {
            return;
        }
        let current = self.current.clone();
        let columns: Vec<String> = self
            .intent
            .projection
            .iter()
            .map(AttributeRef::column_name)
            .collect();
        let quoted: Vec<String> = columns.iter().map(|c| format!("'{c}'")).collect();
        self.push_step(
            format!(
                "Keep only the {} columns of the '{current}' table.",
                quoted.join(", ")
            ),
            vec![current.clone()],
            "result_table",
            vec![],
        );
    }

    fn add_plot(&mut self) {
        if self.intent.output != OutputKind::Plot {
            return;
        }
        let current = self.current.clone();
        let x = self
            .intent
            .group_by
            .as_ref()
            .map(AttributeRef::column_name)
            .unwrap_or_else(|| "category".to_string());
        // The Y axis is the column the aggregation step produced (its last
        // declared new column), or the first numeric-looking projection.
        let y = self
            .steps
            .iter()
            .rev()
            .find_map(|s| s.new_columns.last().cloned())
            .unwrap_or_else(|| "value".to_string());
        self.push_step(
            format!(
                "Plot the '{current}' in a bar plot. The '{x}' should be on the X-axis and the '{y}' on the Y-axis."
            ),
            vec![current.clone()],
            "plot",
            vec![],
        );
    }
}

/// The per-statistic subject phrase of a TextQA extraction step. The rotowire
/// stats keep their historical "scored by each team" phrasing byte-for-byte
/// (plan hashes and cached plans depend on it); the fieldwork stats describe
/// expedition logs instead of game reports.
fn text_stat_phrase(stat: &str) -> &'static str {
    match stat {
        "specimens" => "collected by each station",
        "readings" => "logged by each station",
        "samples" => "stored by each station",
        _ => "scored by each team",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ColumnSketch, ForeignKeySketch, TableSketch};
    use crate::intent::analyze;

    fn artwork_tables() -> Vec<TableSketch> {
        vec![
            TableSketch {
                name: "paintings_metadata".into(),
                num_rows: 150,
                columns: [
                    "title",
                    "artist",
                    "inception",
                    "movement",
                    "genre",
                    "img_path",
                ]
                .iter()
                .map(|n| ColumnSketch {
                    name: n.to_string(),
                    dtype: "str".into(),
                })
                .collect(),
                description: String::new(),
                foreign_keys: vec![ForeignKeySketch {
                    from_table: "paintings_metadata".into(),
                    from_column: "img_path".into(),
                    to_table: "painting_images".into(),
                    to_column: "img_path".into(),
                }],
            },
            TableSketch {
                name: "painting_images".into(),
                num_rows: 150,
                columns: vec![
                    ColumnSketch {
                        name: "img_path".into(),
                        dtype: "str".into(),
                    },
                    ColumnSketch {
                        name: "image".into(),
                        dtype: "IMAGE".into(),
                    },
                ],
                description: String::new(),
                foreign_keys: vec![],
            },
        ]
    }

    fn rotowire_tables() -> Vec<TableSketch> {
        let mk =
            |name: &str, cols: Vec<(&str, &str)>, fks: Vec<(&str, &str, &str, &str)>| TableSketch {
                name: name.into(),
                num_rows: 10,
                columns: cols
                    .into_iter()
                    .map(|(n, t)| ColumnSketch {
                        name: n.into(),
                        dtype: t.into(),
                    })
                    .collect(),
                description: String::new(),
                foreign_keys: fks
                    .into_iter()
                    .map(|(ft, fc, tt, tc)| ForeignKeySketch {
                        from_table: ft.into(),
                        from_column: fc.into(),
                        to_table: tt.into(),
                        to_column: tc.into(),
                    })
                    .collect(),
            };
        vec![
            mk(
                "teams",
                vec![
                    ("name", "str"),
                    ("city", "str"),
                    ("conference", "str"),
                    ("division", "str"),
                    ("founded", "int"),
                ],
                vec![("team_to_games", "name", "teams", "name")],
            ),
            mk(
                "players",
                vec![
                    ("name", "str"),
                    ("team", "str"),
                    ("height_cm", "int"),
                    ("nationality", "str"),
                    ("position", "str"),
                ],
                vec![],
            ),
            mk(
                "team_to_games",
                vec![("name", "str"), ("game_id", "int")],
                vec![
                    ("team_to_games", "name", "teams", "name"),
                    ("team_to_games", "game_id", "game_reports", "game_id"),
                ],
            ),
            mk(
                "game_reports",
                vec![("game_id", "int"), ("report", "TEXT")],
                vec![("team_to_games", "game_id", "game_reports", "game_id")],
            ),
        ]
    }

    fn plan_for(query: &str, tables: &[TableSketch]) -> LogicalPlan {
        let intent = analyze(query, tables);
        synthesize(&intent, tables)
    }

    #[test]
    fn figure1_query_produces_the_expected_pipeline() {
        let plan = plan_for(
            "Plot the number of paintings depicting Madonna and Child for each century!",
            &artwork_tables(),
        );
        let text = plan.render();
        // Join → century → madonna extraction → selection → aggregation → plot.
        assert!(text.contains("Join the 'paintings_metadata' and 'painting_images' tables"));
        assert!(text.contains("Extract the century"));
        assert!(text.contains("whether madonna and child is depicted"));
        assert!(text.contains("Select only the rows"));
        assert!(text.contains("count the number of rows"));
        assert!(text.contains("Plot the"));
        assert!(text.contains("'century' should be on the X-axis"));
        assert!(plan.steps.len() >= 5);
    }

    #[test]
    fn figure4_query2_matches_the_paper_plan_shape() {
        let plan = plan_for(
            "Plot the maximum number of swords depicted on the paintings of each century.",
            &artwork_tables(),
        );
        let descriptions: Vec<&str> = plan.steps.iter().map(|s| s.description.as_str()).collect();
        assert!(descriptions[0].contains("Join"));
        assert!(descriptions.iter().any(|d| d.contains("century")));
        assert!(descriptions.iter().any(|d| d.contains("number of sword")));
        assert!(descriptions
            .iter()
            .any(|d| d.contains("Group the") && d.contains("maximum")));
        assert!(descriptions.last().unwrap().contains("Plot"));
        // No selection step: swords are aggregated, not filtered.
        assert!(!descriptions.iter().any(|d| d.contains("Select only")));
    }

    #[test]
    fn figure4_query1_joins_through_team_to_games() {
        let plan = plan_for(
            "For every team, what is the highest number of points they scored in a game?",
            &rotowire_tables(),
        );
        let text = plan.render();
        assert!(text.contains("Join the 'teams' and 'team_to_games' tables"));
        assert!(text.contains("'game_reports'"));
        assert!(text.contains("Extract the number of points"));
        assert!(text.contains("maximum"));
        assert!(!text.contains("Plot"));
        // Two joins are required to reach the reports.
        let join_steps = plan
            .steps
            .iter()
            .filter(|s| s.description.starts_with("Join"))
            .count();
        assert_eq!(join_steps, 2);
    }

    #[test]
    fn relational_queries_skip_joins_and_multimodal_steps() {
        let plan = plan_for("How many paintings are in the museum?", &artwork_tables());
        let text = plan.render();
        assert!(!text.contains("Join"));
        assert!(!text.contains("image"));
        assert!(text.contains("Count the number of rows"));

        let plan = plan_for(
            "For each conference, how many teams are there?",
            &rotowire_tables(),
        );
        let text = plan.render();
        assert!(!text.contains("Join"));
        assert!(text.contains("Group the 'teams' table by 'conference'"));
    }

    #[test]
    fn list_queries_project_without_aggregation() {
        let plan = plan_for(
            "List the title and artist of all paintings of the Renaissance movement.",
            &artwork_tables(),
        );
        let text = plan.render();
        assert!(text.contains("Select only the rows"));
        assert!(text.contains("Keep only the"));
        assert!(!text.contains("Group the"));
    }

    #[test]
    fn games_lost_query_extracts_outcome_and_counts() {
        let plan = plan_for("How many games did each team lose?", &rotowire_tables());
        let text = plan.render();
        assert!(text.contains("lost the game"));
        assert!(text.contains("Select only the rows"));
        assert!(text.contains("count the number of rows"));
    }

    #[test]
    fn plot_step_references_the_aggregated_column() {
        let plan = plan_for(
            "Plot the average height of the players for each position.",
            &rotowire_tables(),
        );
        let last = plan.steps.last().unwrap();
        assert!(last
            .description
            .contains("'position' should be on the X-axis"));
        assert!(last.description.contains("average_height_cm"));
    }

    #[test]
    fn step_numbers_are_sequential_and_outputs_chain() {
        let plan = plan_for(
            "Plot the number of paintings depicting Madonna and Child for each century!",
            &artwork_tables(),
        );
        for (i, step) in plan.steps.iter().enumerate() {
            assert_eq!(step.number, i + 1);
            if i > 0 {
                assert!(
                    step.inputs.contains(&plan.steps[i - 1].output)
                        || step.inputs.iter().any(|input| self_or_base(input)),
                    "step {} does not consume the previous output",
                    step.number
                );
            }
        }
        fn self_or_base(_input: &str) -> bool {
            true // inputs may also reference base tables (joins)
        }
    }
}
