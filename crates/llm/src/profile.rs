//! Model profiles: calibrated error behaviour of the simulated GPT-4 and
//! ChatGPT-3.5 backends.
//!
//! The paper reports (Table 1 / Table 2) that GPT-4 translates ~94% of queries
//! into correct logical plans while ChatGPT-3.5 only manages ~65%, with the
//! smaller model's dominant failure mode being *data misunderstanding* — it
//! "often tried to extract what is depicted in the image based on the title or
//! the genre column" (§4.3). The profiles below reproduce those failure modes
//! by deterministically injecting them into otherwise-correct plans. All
//! decisions are keyed by a hash of (seed, query, error kind), so a given run
//! seed always produces the same Table 1 / Table 2.

/// Which language model the simulated backend imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelProfile {
    /// The GPT-4-like profile: strong reasoning, rare argument slips.
    Gpt4,
    /// The ChatGPT-3.5-like profile: frequent data misunderstanding, missing
    /// steps, and impossible actions.
    ChatGpt35,
}

impl ModelProfile {
    /// Model name reported in traces and result tables.
    pub fn name(&self) -> &'static str {
        match self {
            ModelProfile::Gpt4 => "gpt-4-sim",
            ModelProfile::ChatGpt35 => "chatgpt-3.5-sim",
        }
    }

    /// Error rates of the profile.
    pub fn rates(&self) -> ErrorRates {
        match self {
            ModelProfile::Gpt4 => ErrorRates {
                data_misunderstanding: 0.04,
                missing_step: 0.0,
                impossible_action: 0.04,
                wrong_arguments: 0.07,
                wrong_tool: 0.0,
                recoverable_typo: 0.10,
            },
            ModelProfile::ChatGpt35 => ErrorRates {
                data_misunderstanding: 0.38,
                missing_step: 0.10,
                impossible_action: 0.12,
                wrong_arguments: 0.10,
                wrong_tool: 0.04,
                recoverable_typo: 0.05,
            },
        }
    }
}

/// Per-category error-injection probabilities of a profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorRates {
    /// Probability of misunderstanding multi-modal data (using metadata columns
    /// instead of the images / reports) on a multi-modal query.
    pub data_misunderstanding: f64,
    /// Probability of dropping a required join step.
    pub missing_step: f64,
    /// Probability of referencing a non-existent column in the logical plan.
    pub impossible_action: f64,
    /// Probability of choosing wrong operator arguments in the mapping phase
    /// (persists across retries — an unrecoverable mistake).
    pub wrong_arguments: f64,
    /// Probability of choosing the wrong physical operator for a step.
    pub wrong_tool: f64,
    /// Probability of a *recoverable* argument typo: the first attempt fails,
    /// but after the error-handling prompt the model corrects itself (§3.2).
    pub recoverable_typo: f64,
}

/// Corruptions applied to a logical plan during the planning phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanCorruption {
    /// Replace multi-modal extraction steps by metadata-based lookups.
    DataMisunderstanding,
    /// Drop the first join step.
    MissingJoin,
    /// Reference a non-existent column in a selection / aggregation step.
    ImpossibleColumn,
}

/// Corruptions applied to an operator decision during the mapping phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingCorruption {
    /// Corrupt an argument (column name / question) — persists across retries.
    WrongArguments,
    /// Choose a plain SQL operator for a multi-modal step.
    WrongTool,
    /// Corrupt an argument, but only on the first attempt (fixed after the
    /// error-analysis prompt).
    RecoverableTypo,
}

/// Deterministic error-injection decisions for one model + run seed.
#[derive(Debug, Clone, Copy)]
pub struct ErrorInjector {
    profile: ModelProfile,
    seed: u64,
}

impl ErrorInjector {
    /// Create an injector.
    pub fn new(profile: ModelProfile, seed: u64) -> Self {
        ErrorInjector { profile, seed }
    }

    /// The profile this injector simulates.
    pub fn profile(&self) -> ModelProfile {
        self.profile
    }

    /// Which plan-level corruptions apply to this query. At most one is
    /// returned, mirroring the paper's per-query error categorization.
    pub fn plan_corruption(&self, query: &str, multimodal: bool) -> Option<PlanCorruption> {
        let rates = self.profile.rates();
        if multimodal && self.roll(query, "data-misunderstanding") < rates.data_misunderstanding {
            return Some(PlanCorruption::DataMisunderstanding);
        }
        if self.roll(query, "missing-step") < rates.missing_step {
            return Some(PlanCorruption::MissingJoin);
        }
        if self.roll(query, "impossible-action") < rates.impossible_action {
            return Some(PlanCorruption::ImpossibleColumn);
        }
        None
    }

    /// Which mapping-level corruption applies to a step of this query.
    pub fn mapping_corruption(
        &self,
        query: &str,
        step_number: usize,
        multimodal_step: bool,
    ) -> Option<MappingCorruption> {
        let rates = self.profile.rates();
        // Only one step per query is eligible for mapping errors, chosen by hash,
        // so error counts stay per-query like in Table 2.
        let eligible_step = 1 + (self.hash(query, "eligible-step") % 4) as usize;
        if step_number != eligible_step {
            return None;
        }
        if multimodal_step && self.roll(query, "wrong-tool") < rates.wrong_tool {
            return Some(MappingCorruption::WrongTool);
        }
        if self.roll(query, "wrong-arguments") < rates.wrong_arguments {
            return Some(MappingCorruption::WrongArguments);
        }
        if self.roll(query, "recoverable-typo") < rates.recoverable_typo {
            return Some(MappingCorruption::RecoverableTypo);
        }
        None
    }

    /// A deterministic uniform draw in `[0, 1)` for a (query, tag) pair.
    fn roll(&self, query: &str, tag: &str) -> f64 {
        (self.hash(query, tag) >> 11) as f64 / (1u64 << 53) as f64
    }

    fn hash(&self, query: &str, tag: &str) -> u64 {
        let mut hash: u64 = 0xcbf29ce484222325 ^ self.seed.wrapping_mul(0x9e3779b97f4a7c15);
        for byte in query.bytes().chain(tag.bytes()) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100000001b3);
        }
        // Final avalanche.
        hash ^= hash >> 33;
        hash = hash.wrapping_mul(0xff51afd7ed558ccd);
        hash ^= hash >> 33;
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_names_and_ordered_error_rates() {
        assert_eq!(ModelProfile::Gpt4.name(), "gpt-4-sim");
        assert_eq!(ModelProfile::ChatGpt35.name(), "chatgpt-3.5-sim");
        let gpt4 = ModelProfile::Gpt4.rates();
        let gpt35 = ModelProfile::ChatGpt35.rates();
        assert!(gpt35.data_misunderstanding > gpt4.data_misunderstanding);
        assert!(gpt35.missing_step > gpt4.missing_step);
        assert!(gpt35.impossible_action > gpt4.impossible_action);
    }

    #[test]
    fn injection_decisions_are_deterministic() {
        let injector = ErrorInjector::new(ModelProfile::ChatGpt35, 42);
        let a = injector.plan_corruption("Plot the swords per century", true);
        let b = injector.plan_corruption("Plot the swords per century", true);
        assert_eq!(a, b);
        let a = injector.mapping_corruption("some query", 2, true);
        let b = injector.mapping_corruption("some query", 2, true);
        assert_eq!(a, b);
    }

    #[test]
    fn chatgpt35_misunderstands_multimodal_queries_much_more_often() {
        let weak = ErrorInjector::new(ModelProfile::ChatGpt35, 1);
        let strong = ErrorInjector::new(ModelProfile::Gpt4, 1);
        let queries: Vec<String> = (0..200)
            .map(|i| format!("Plot the number of objects depicted in painting set {i}"))
            .collect();
        let weak_errors = queries
            .iter()
            .filter(|q| {
                matches!(
                    weak.plan_corruption(q, true),
                    Some(PlanCorruption::DataMisunderstanding)
                )
            })
            .count();
        let strong_errors = queries
            .iter()
            .filter(|q| {
                matches!(
                    strong.plan_corruption(q, true),
                    Some(PlanCorruption::DataMisunderstanding)
                )
            })
            .count();
        assert!(
            weak_errors > strong_errors * 3,
            "{weak_errors} vs {strong_errors}"
        );
    }

    #[test]
    fn relational_queries_never_get_data_misunderstanding() {
        let injector = ErrorInjector::new(ModelProfile::ChatGpt35, 9);
        for i in 0..100 {
            let query = format!("How many rows are in table {i}?");
            assert_ne!(
                injector.plan_corruption(&query, false),
                Some(PlanCorruption::DataMisunderstanding)
            );
        }
    }

    #[test]
    fn mapping_corruption_only_hits_the_eligible_step() {
        let injector = ErrorInjector::new(ModelProfile::ChatGpt35, 3);
        let query = "Plot the maximum number of swords per century";
        let hits: Vec<usize> = (1..=6)
            .filter(|step| injector.mapping_corruption(query, *step, false).is_some())
            .collect();
        assert!(hits.len() <= 1);
    }
}
