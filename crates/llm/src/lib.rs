//! # caesura-llm
//!
//! The language-model substrate of the CAESURA reproduction.
//!
//! CAESURA treats the LLM as a black box that consumes prompts and produces
//! text; this crate provides both sides of that contract:
//!
//! * the **prompt builders** for the discovery / planning / mapping / error
//!   phases (Figure 3 of the paper),
//! * the **plan grammar** — structured logical plans, operator decisions, and
//!   error analyses, with render/parse functions for the textual output
//!   formats the prompts request,
//! * the [`LlmClient`] abstraction, and
//! * the [`SimulatedLlm`]: a deterministic stand-in for GPT-4 / ChatGPT-3.5
//!   that parses the prompts, analyzes the query ([`intent`]), synthesizes
//!   step-wise plans ([`synthesis`]), maps steps to operators ([`mapping`]),
//!   and injects calibrated mistakes per [`ModelProfile`] so that the paper's
//!   Table 1 / Table 2 behaviour is reproducible without API access.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cancel;
pub mod chat;
pub mod client;
pub mod context;
pub mod error;
pub mod intent;
pub mod mapping;
pub mod perception;
pub mod plan;
pub mod plan_cache;
pub mod profile;
pub mod prompt;
pub mod sim;
pub mod synthesis;

pub use cancel::{CancelStatus, CancelToken};
pub use chat::{ChatMessage, Conversation, Role};
pub use client::{CountingLlm, GatedLlm, LlmClient, LlmUsage, ScriptedLlm};
pub use context::{PromptContext, PromptKind, TableSketch};
pub use error::{LlmError, LlmResult};
pub use intent::{analyze, AggKind, AttributeRef, OutputKind, QueryIntent};
pub use perception::PerceptionLlm;
pub use plan::{ErrorAnalysis, LogicalPlan, LogicalStep, OperatorDecision};
pub use plan_cache::{
    normalize_query, schema_fingerprint, CachedPlan, Literal, PlanCache, PlanCacheConfig,
    PlanCacheStats, PlanInsertOutcome, PlanTier, QueryTemplate,
};
pub use profile::{ErrorInjector, ModelProfile};
pub use prompt::{PromptBuilder, PromptConfig, RelevantColumn};
pub use sim::SimulatedLlm;
pub use synthesis::synthesize;
