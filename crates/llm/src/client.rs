//! The language-model client abstraction.
//!
//! CAESURA is LLM-agnostic: the core planner only depends on the [`LlmClient`]
//! trait. The original prototype plugs GPT-4 / ChatGPT-3.5 in here; this
//! reproduction ships the deterministic [`SimulatedLlm`](crate::sim::SimulatedLlm)
//! plus a [`ScriptedLlm`] used in unit tests.

use crate::cancel::CancelToken;
use crate::chat::Conversation;
use crate::error::{LlmError, LlmResult};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A chat-completion language model.
pub trait LlmClient: Send + Sync {
    /// Complete a conversation, returning the model's text response.
    fn complete(&self, conversation: &Conversation) -> LlmResult<String>;

    /// Complete a batch of independent conversations with one dispatch,
    /// returning one result per conversation, in order.
    ///
    /// The default implementation loops over [`LlmClient::complete`]; remote
    /// backends override it to serve the whole batch in a single round trip
    /// (this is what the perception-operator batching layer in
    /// `caesura-modal` dispatches through — see `modal::batch`).
    fn complete_batch(&self, conversations: &[Conversation]) -> Vec<LlmResult<String>> {
        conversations.iter().map(|c| self.complete(c)).collect()
    }

    /// Complete a conversation under a [`CancelToken`]: return
    /// [`LlmError::Cancelled`] instead of (or as soon as possible during) a
    /// dispatch once the token fires.
    ///
    /// The default implementation checks the token once and then delegates to
    /// [`LlmClient::complete`] — correct for instantaneous in-process models,
    /// where a dispatch never outlives a cancellation check. Transports whose
    /// dispatch blocks (remote APIs, the [`GatedLlm`] test double) override
    /// this to poll the token *while* the dispatch is in flight, which is
    /// what bounds cancellation latency below one full round trip.
    fn complete_cancellable(
        &self,
        conversation: &Conversation,
        cancel: &CancelToken,
    ) -> LlmResult<String> {
        if cancel.is_cancelled() {
            return Err(LlmError::Cancelled);
        }
        self.complete(conversation)
    }

    /// Batch counterpart of [`LlmClient::complete_cancellable`]: one result
    /// per conversation, with [`LlmError::Cancelled`] for every conversation
    /// not served before the token fired.
    ///
    /// The default implementation checks the token once up front (failing the
    /// whole batch) and then delegates to [`LlmClient::complete_batch`].
    fn complete_batch_cancellable(
        &self,
        conversations: &[Conversation],
        cancel: &CancelToken,
    ) -> Vec<LlmResult<String>> {
        if cancel.is_cancelled() {
            return conversations
                .iter()
                .map(|_| Err(LlmError::Cancelled))
                .collect();
        }
        self.complete_batch(conversations)
    }

    /// Human-readable model name (appears in traces and reports).
    fn name(&self) -> &str;
}

/// Usage statistics collected by [`CountingLlm`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LlmUsage {
    /// Number of completed conversations (batched or not).
    pub calls: usize,
    /// Number of physical dispatches: one per [`LlmClient::complete`] call
    /// plus one per [`LlmClient::complete_batch`] call, however many
    /// conversations the batch carried. `calls - batches` conversations rode
    /// along in batches without their own round trip.
    pub batches: usize,
    /// Approximate prompt tokens across all calls.
    pub prompt_tokens: usize,
}

/// A wrapper that counts calls and approximate prompt tokens. The benchmark
/// harness uses this to report how many LLM round trips each query needs.
pub struct CountingLlm<C> {
    inner: C,
    calls: AtomicUsize,
    batches: AtomicUsize,
    prompt_tokens: AtomicUsize,
}

impl<C: LlmClient> CountingLlm<C> {
    /// Wrap a client.
    pub fn new(inner: C) -> Self {
        CountingLlm {
            inner,
            calls: AtomicUsize::new(0),
            batches: AtomicUsize::new(0),
            prompt_tokens: AtomicUsize::new(0),
        }
    }

    /// Usage so far.
    pub fn usage(&self) -> LlmUsage {
        LlmUsage {
            calls: self.calls.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            prompt_tokens: self.prompt_tokens.load(Ordering::Relaxed),
        }
    }

    /// Access the wrapped client.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: LlmClient> LlmClient for CountingLlm<C> {
    fn complete(&self, conversation: &Conversation) -> LlmResult<String> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.prompt_tokens
            .fetch_add(conversation.approx_tokens(), Ordering::Relaxed);
        self.inner.complete(conversation)
    }

    fn complete_batch(&self, conversations: &[Conversation]) -> Vec<LlmResult<String>> {
        self.calls.fetch_add(conversations.len(), Ordering::Relaxed);
        if !conversations.is_empty() {
            self.batches.fetch_add(1, Ordering::Relaxed);
        }
        self.prompt_tokens.fetch_add(
            conversations.iter().map(|c| c.approx_tokens()).sum(),
            Ordering::Relaxed,
        );
        self.inner.complete_batch(conversations)
    }

    fn complete_cancellable(
        &self,
        conversation: &Conversation,
        cancel: &CancelToken,
    ) -> LlmResult<String> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.prompt_tokens
            .fetch_add(conversation.approx_tokens(), Ordering::Relaxed);
        self.inner.complete_cancellable(conversation, cancel)
    }

    fn complete_batch_cancellable(
        &self,
        conversations: &[Conversation],
        cancel: &CancelToken,
    ) -> Vec<LlmResult<String>> {
        self.calls.fetch_add(conversations.len(), Ordering::Relaxed);
        if !conversations.is_empty() {
            self.batches.fetch_add(1, Ordering::Relaxed);
        }
        self.prompt_tokens.fetch_add(
            conversations.iter().map(|c| c.approx_tokens()).sum(),
            Ordering::Relaxed,
        );
        self.inner.complete_batch_cancellable(conversations, cancel)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

impl<C: LlmClient + ?Sized> LlmClient for Arc<C> {
    fn complete(&self, conversation: &Conversation) -> LlmResult<String> {
        (**self).complete(conversation)
    }

    fn complete_batch(&self, conversations: &[Conversation]) -> Vec<LlmResult<String>> {
        (**self).complete_batch(conversations)
    }

    fn complete_cancellable(
        &self,
        conversation: &Conversation,
        cancel: &CancelToken,
    ) -> LlmResult<String> {
        (**self).complete_cancellable(conversation, cancel)
    }

    fn complete_batch_cancellable(
        &self,
        conversations: &[Conversation],
        cancel: &CancelToken,
    ) -> Vec<LlmResult<String>> {
        (**self).complete_batch_cancellable(conversations, cancel)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// A test double that replays a fixed sequence of responses.
pub struct ScriptedLlm {
    responses: parking_lot_free::Mutex<Vec<String>>,
    name: String,
}

/// Minimal mutex shim so the llm crate does not need a locking dependency for
/// one test helper. (The std mutex's poisoning is irrelevant here.)
mod parking_lot_free {
    pub use std::sync::Mutex;
}

impl ScriptedLlm {
    /// Build a scripted model from responses, returned in order.
    pub fn new(responses: Vec<String>) -> Self {
        ScriptedLlm {
            responses: parking_lot_free::Mutex::new(responses),
            name: "scripted".to_string(),
        }
    }
}

impl LlmClient for ScriptedLlm {
    fn complete(&self, _conversation: &Conversation) -> LlmResult<String> {
        let mut responses = self.responses.lock().expect("scripted responses lock");
        if responses.is_empty() {
            return Err(LlmError::ModelFailure {
                model: self.name.clone(),
                message: "the scripted model ran out of responses".into(),
            });
        }
        Ok(responses.remove(0))
    }

    /// Serve a whole batch under one lock acquisition, so concurrent batch
    /// dispatches each drain a contiguous run of scripted responses.
    ///
    /// Caveat: *which* contiguous run a batch drains depends on dispatch
    /// order, so under parallel multi-batch dispatch (e.g. behind
    /// `PerceptionLlm` with several batches and worker threads) responses
    /// are not deterministically assigned to requests. Scripted responses
    /// are positional, not keyed — use a content-keyed test double when a
    /// deterministic (input → answer) mapping matters.
    fn complete_batch(&self, conversations: &[Conversation]) -> Vec<LlmResult<String>> {
        let mut responses = self.responses.lock().expect("scripted responses lock");
        conversations
            .iter()
            .map(|_| {
                if responses.is_empty() {
                    Err(LlmError::ModelFailure {
                        model: self.name.clone(),
                        message: "the scripted model ran out of responses".into(),
                    })
                } else {
                    Ok(responses.remove(0))
                }
            })
            .collect()
    }

    /// Cancellation-aware batch: the token is re-checked before each
    /// conversation, so a cancel that fires mid-batch fails the *remaining*
    /// conversations with [`LlmError::Cancelled`] without consuming their
    /// scripted responses (the script stays aligned for a later retry).
    fn complete_batch_cancellable(
        &self,
        conversations: &[Conversation],
        cancel: &CancelToken,
    ) -> Vec<LlmResult<String>> {
        let mut responses = self.responses.lock().expect("scripted responses lock");
        conversations
            .iter()
            .map(|_| {
                if cancel.is_cancelled() {
                    Err(LlmError::Cancelled)
                } else if responses.is_empty() {
                    Err(LlmError::ModelFailure {
                        model: self.name.clone(),
                        message: "the scripted model ran out of responses".into(),
                    })
                } else {
                    Ok(responses.remove(0))
                }
            })
            .collect()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// How often [`GatedLlm`]'s cancellable dispatch re-checks its
/// [`CancelToken`] while blocked at the gate. This is the bound on
/// mid-dispatch cancellation latency the tests assert.
const GATE_POLL_INTERVAL: Duration = Duration::from_millis(2);

struct Gate {
    entered: Mutex<bool>,
    entered_signal: Condvar,
    released: Mutex<bool>,
    release_signal: Condvar,
}

/// A test double that **holds its first dispatch open** until released,
/// simulating a slow remote round trip.
///
/// Wraps any inner [`LlmClient`]. The first completion (plain or
/// cancellable, single or batch) blocks at a gate; every later completion
/// passes straight through to the inner client. Tests coordinate with the
/// blocked dispatch through [`wait_entered`](GatedLlm::wait_entered) (block
/// until a worker is inside the gate) and [`release`](GatedLlm::release)
/// (open the gate permanently).
///
/// The cancellable entry points poll their [`CancelToken`] every
/// 2 ms while blocked and return [`LlmError::Cancelled`] as soon as it
/// fires — **without** the gate ever being released. This is the double
/// that proves mid-dispatch cancellation returns in bounded time while the
/// transport is still held open; the non-cancellable [`complete`] blocks
/// unconditionally, reproducing the pre-PR-8 "bounded by one full round
/// trip" behaviour.
///
/// [`complete`]: LlmClient::complete
pub struct GatedLlm<C> {
    inner: C,
    armed: AtomicBool,
    gate: Gate,
}

impl<C: LlmClient> GatedLlm<C> {
    /// Wrap a client; the gate arms for the first completion.
    pub fn new(inner: C) -> Self {
        GatedLlm {
            inner,
            armed: AtomicBool::new(true),
            gate: Gate {
                entered: Mutex::new(false),
                entered_signal: Condvar::new(),
                released: Mutex::new(false),
                release_signal: Condvar::new(),
            },
        }
    }

    /// Access the wrapped client.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Block until a dispatch is inside the gate (i.e. a worker thread is
    /// mid-"round trip"). Panics after `timeout` to keep hung tests visible.
    pub fn wait_entered(&self, timeout: Duration) {
        let mut entered = self.gate.entered.lock().expect("gate entered lock");
        while !*entered {
            let (guard, result) = self
                .gate
                .entered_signal
                .wait_timeout(entered, timeout)
                .expect("gate entered lock");
            entered = guard;
            assert!(
                !result.timed_out() || *entered,
                "no dispatch entered the gate within {timeout:?}"
            );
        }
    }

    /// Open the gate permanently: the blocked dispatch (if any) proceeds and
    /// all future dispatches pass through.
    pub fn release(&self) {
        let mut released = self.gate.released.lock().expect("gate released lock");
        *released = true;
        self.gate.release_signal.notify_all();
    }

    /// Pass the gate if this dispatch is the armed first one. `cancel` is
    /// polled while blocked; `None` (the non-cancellable entry points) blocks
    /// until release.
    fn pass_gate(&self, cancel: Option<&CancelToken>) -> LlmResult<()> {
        if !self.armed.swap(false, Ordering::AcqRel) {
            return Ok(());
        }
        {
            let mut entered = self.gate.entered.lock().expect("gate entered lock");
            *entered = true;
            self.gate.entered_signal.notify_all();
        }
        let mut released = self.gate.released.lock().expect("gate released lock");
        while !*released {
            if let Some(token) = cancel {
                if token.is_cancelled() {
                    return Err(LlmError::Cancelled);
                }
                released = self
                    .gate
                    .release_signal
                    .wait_timeout(released, GATE_POLL_INTERVAL)
                    .expect("gate released lock")
                    .0;
            } else {
                released = self
                    .gate
                    .release_signal
                    .wait(released)
                    .expect("gate released lock");
            }
        }
        Ok(())
    }
}

impl<C: LlmClient> LlmClient for GatedLlm<C> {
    fn complete(&self, conversation: &Conversation) -> LlmResult<String> {
        self.pass_gate(None).expect("ungated wait cannot cancel");
        self.inner.complete(conversation)
    }

    fn complete_batch(&self, conversations: &[Conversation]) -> Vec<LlmResult<String>> {
        self.pass_gate(None).expect("ungated wait cannot cancel");
        self.inner.complete_batch(conversations)
    }

    fn complete_cancellable(
        &self,
        conversation: &Conversation,
        cancel: &CancelToken,
    ) -> LlmResult<String> {
        self.pass_gate(Some(cancel))?;
        self.inner.complete_cancellable(conversation, cancel)
    }

    fn complete_batch_cancellable(
        &self,
        conversations: &[Conversation],
        cancel: &CancelToken,
    ) -> Vec<LlmResult<String>> {
        if let Err(err) = self.pass_gate(Some(cancel)) {
            return conversations.iter().map(|_| Err(err.clone())).collect();
        }
        self.inner.complete_batch_cancellable(conversations, cancel)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chat::ChatMessage;

    #[test]
    fn scripted_llm_replays_in_order_then_fails() {
        let llm = ScriptedLlm::new(vec!["first".into(), "second".into()]);
        let convo = Conversation::new().with(ChatMessage::human("hi"));
        assert_eq!(llm.complete(&convo).unwrap(), "first");
        assert_eq!(llm.complete(&convo).unwrap(), "second");
        assert!(llm.complete(&convo).is_err());
    }

    #[test]
    fn counting_llm_tracks_calls_and_tokens() {
        let llm = CountingLlm::new(ScriptedLlm::new(vec!["a".into(), "b".into()]));
        let convo = Conversation::new().with(ChatMessage::human("one two three"));
        llm.complete(&convo).unwrap();
        llm.complete(&convo).unwrap();
        let usage = llm.usage();
        assert_eq!(usage.calls, 2);
        assert_eq!(usage.batches, 2);
        assert_eq!(usage.prompt_tokens, 6);
    }

    #[test]
    fn batch_completion_counts_one_dispatch_for_many_calls() {
        let llm = CountingLlm::new(ScriptedLlm::new(vec!["a".into(), "b".into(), "c".into()]));
        let convo = Conversation::new().with(ChatMessage::human("one two"));
        let batch = vec![convo.clone(), convo.clone(), convo.clone()];
        let results = llm.complete_batch(&batch);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_deref().unwrap(), "a");
        assert_eq!(results[2].as_deref().unwrap(), "c");
        let usage = llm.usage();
        assert_eq!(usage.calls, 3);
        assert_eq!(usage.batches, 1);
        assert_eq!(usage.prompt_tokens, 6);
    }

    #[test]
    fn scripted_batch_reports_exhaustion_per_conversation() {
        let llm = ScriptedLlm::new(vec!["only".into()]);
        let convo = Conversation::new();
        let results = llm.complete_batch(&[convo.clone(), convo.clone()]);
        assert_eq!(results[0].as_deref().unwrap(), "only");
        assert!(results[1].is_err());
    }

    #[test]
    fn default_complete_batch_loops_over_complete() {
        struct Echo;
        impl LlmClient for Echo {
            fn complete(&self, conversation: &Conversation) -> LlmResult<String> {
                Ok(conversation.human_text())
            }
            fn name(&self) -> &str {
                "echo"
            }
        }
        let convos = vec![
            Conversation::new().with(ChatMessage::human("x")),
            Conversation::new().with(ChatMessage::human("y")),
        ];
        let results = Echo.complete_batch(&convos);
        assert_eq!(results[0].as_deref().unwrap(), "x");
        assert_eq!(results[1].as_deref().unwrap(), "y");
    }

    #[test]
    fn arc_wrapping_preserves_client_behaviour() {
        let llm: Arc<dyn LlmClient> = Arc::new(ScriptedLlm::new(vec!["x".into()]));
        let convo = Conversation::new();
        assert_eq!(llm.complete(&convo).unwrap(), "x");
        assert_eq!(llm.name(), "scripted");
    }

    #[test]
    fn default_cancellable_methods_check_the_token_up_front() {
        let llm = ScriptedLlm::new(vec!["kept".into()]);
        let convo = Conversation::new();
        let cancel = CancelToken::new();
        cancel.cancel();
        assert_eq!(
            llm.complete_cancellable(&convo, &cancel),
            Err(LlmError::Cancelled)
        );
        let active = CancelToken::new();
        assert_eq!(llm.complete_cancellable(&convo, &active).unwrap(), "kept");
    }

    #[test]
    fn scripted_cancellable_batch_fails_remaining_without_consuming_responses() {
        let llm = ScriptedLlm::new(vec!["a".into(), "b".into()]);
        let convo = Conversation::new();
        let cancel = CancelToken::new();
        cancel.cancel();
        let results = llm.complete_batch_cancellable(&[convo.clone(), convo.clone()], &cancel);
        assert_eq!(results[0], Err(LlmError::Cancelled));
        assert_eq!(results[1], Err(LlmError::Cancelled));
        // The script was not consumed by the cancelled batch.
        let fresh = CancelToken::new();
        let results = llm.complete_batch_cancellable(&[convo.clone(), convo.clone()], &fresh);
        assert_eq!(results[0].as_deref().unwrap(), "a");
        assert_eq!(results[1].as_deref().unwrap(), "b");
    }

    #[test]
    fn counting_llm_counts_cancellable_dispatches_identically() {
        let llm = CountingLlm::new(ScriptedLlm::new(vec!["a".into(), "b".into()]));
        let convo = Conversation::new().with(ChatMessage::human("one two three"));
        let cancel = CancelToken::new();
        llm.complete_cancellable(&convo, &cancel).unwrap();
        llm.complete_batch_cancellable(std::slice::from_ref(&convo), &cancel);
        let usage = llm.usage();
        assert_eq!(usage.calls, 2);
        assert_eq!(usage.batches, 2);
        assert_eq!(usage.prompt_tokens, 6);
    }

    #[test]
    fn gated_llm_cancel_interrupts_a_held_dispatch_in_bounded_time() {
        let llm = Arc::new(GatedLlm::new(ScriptedLlm::new(vec!["late".into()])));
        let cancel = CancelToken::new();
        let worker = {
            let llm = Arc::clone(&llm);
            let cancel = cancel.clone();
            std::thread::spawn(move || {
                let convo = Conversation::new();
                llm.complete_cancellable(&convo, &cancel)
            })
        };
        llm.wait_entered(Duration::from_secs(30));
        let start = std::time::Instant::now();
        cancel.cancel();
        let result = worker.join().expect("dispatch thread");
        // Bounded by the gate's poll interval, not by a release that never
        // came. Generous bound to stay robust on a loaded 1-CPU host.
        assert!(start.elapsed() < Duration::from_secs(10));
        assert_eq!(result, Err(LlmError::Cancelled));
        // The gate was consumed: later dispatches pass straight through.
        assert_eq!(llm.complete(&Conversation::new()).unwrap(), "late");
    }

    #[test]
    fn gated_llm_release_lets_the_held_dispatch_proceed() {
        let llm = Arc::new(GatedLlm::new(ScriptedLlm::new(vec!["served".into()])));
        let worker = {
            let llm = Arc::clone(&llm);
            std::thread::spawn(move || llm.complete(&Conversation::new()))
        };
        llm.wait_entered(Duration::from_secs(30));
        llm.release();
        assert_eq!(worker.join().expect("dispatch thread").unwrap(), "served");
    }

    #[test]
    fn gated_llm_deadline_expiry_interrupts_like_an_explicit_cancel() {
        let llm = Arc::new(GatedLlm::new(ScriptedLlm::new(vec!["late".into()])));
        let cancel =
            CancelToken::with_deadline(std::time::Instant::now() + Duration::from_millis(20));
        let start = std::time::Instant::now();
        let result = {
            let llm = Arc::clone(&llm);
            let cancel = cancel.clone();
            std::thread::spawn(move || {
                llm.complete_batch_cancellable(&[Conversation::new()], &cancel)
            })
            .join()
            .expect("dispatch thread")
        };
        assert!(start.elapsed() < Duration::from_secs(10));
        assert_eq!(result, vec![Err(LlmError::Cancelled)]);
    }
}
