//! The language-model client abstraction.
//!
//! CAESURA is LLM-agnostic: the core planner only depends on the [`LlmClient`]
//! trait. The original prototype plugs GPT-4 / ChatGPT-3.5 in here; this
//! reproduction ships the deterministic [`SimulatedLlm`](crate::sim::SimulatedLlm)
//! plus a [`ScriptedLlm`] used in unit tests.

use crate::chat::Conversation;
use crate::error::{LlmError, LlmResult};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A chat-completion language model.
pub trait LlmClient: Send + Sync {
    /// Complete a conversation, returning the model's text response.
    fn complete(&self, conversation: &Conversation) -> LlmResult<String>;

    /// Complete a batch of independent conversations with one dispatch,
    /// returning one result per conversation, in order.
    ///
    /// The default implementation loops over [`LlmClient::complete`]; remote
    /// backends override it to serve the whole batch in a single round trip
    /// (this is what the perception-operator batching layer in
    /// `caesura-modal` dispatches through — see `modal::batch`).
    fn complete_batch(&self, conversations: &[Conversation]) -> Vec<LlmResult<String>> {
        conversations.iter().map(|c| self.complete(c)).collect()
    }

    /// Human-readable model name (appears in traces and reports).
    fn name(&self) -> &str;
}

/// Usage statistics collected by [`CountingLlm`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LlmUsage {
    /// Number of completed conversations (batched or not).
    pub calls: usize,
    /// Number of physical dispatches: one per [`LlmClient::complete`] call
    /// plus one per [`LlmClient::complete_batch`] call, however many
    /// conversations the batch carried. `calls - batches` conversations rode
    /// along in batches without their own round trip.
    pub batches: usize,
    /// Approximate prompt tokens across all calls.
    pub prompt_tokens: usize,
}

/// A wrapper that counts calls and approximate prompt tokens. The benchmark
/// harness uses this to report how many LLM round trips each query needs.
pub struct CountingLlm<C> {
    inner: C,
    calls: AtomicUsize,
    batches: AtomicUsize,
    prompt_tokens: AtomicUsize,
}

impl<C: LlmClient> CountingLlm<C> {
    /// Wrap a client.
    pub fn new(inner: C) -> Self {
        CountingLlm {
            inner,
            calls: AtomicUsize::new(0),
            batches: AtomicUsize::new(0),
            prompt_tokens: AtomicUsize::new(0),
        }
    }

    /// Usage so far.
    pub fn usage(&self) -> LlmUsage {
        LlmUsage {
            calls: self.calls.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            prompt_tokens: self.prompt_tokens.load(Ordering::Relaxed),
        }
    }

    /// Access the wrapped client.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: LlmClient> LlmClient for CountingLlm<C> {
    fn complete(&self, conversation: &Conversation) -> LlmResult<String> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.prompt_tokens
            .fetch_add(conversation.approx_tokens(), Ordering::Relaxed);
        self.inner.complete(conversation)
    }

    fn complete_batch(&self, conversations: &[Conversation]) -> Vec<LlmResult<String>> {
        self.calls.fetch_add(conversations.len(), Ordering::Relaxed);
        if !conversations.is_empty() {
            self.batches.fetch_add(1, Ordering::Relaxed);
        }
        self.prompt_tokens.fetch_add(
            conversations.iter().map(|c| c.approx_tokens()).sum(),
            Ordering::Relaxed,
        );
        self.inner.complete_batch(conversations)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

impl<C: LlmClient + ?Sized> LlmClient for Arc<C> {
    fn complete(&self, conversation: &Conversation) -> LlmResult<String> {
        (**self).complete(conversation)
    }

    fn complete_batch(&self, conversations: &[Conversation]) -> Vec<LlmResult<String>> {
        (**self).complete_batch(conversations)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// A test double that replays a fixed sequence of responses.
pub struct ScriptedLlm {
    responses: parking_lot_free::Mutex<Vec<String>>,
    name: String,
}

/// Minimal mutex shim so the llm crate does not need a locking dependency for
/// one test helper. (The std mutex's poisoning is irrelevant here.)
mod parking_lot_free {
    pub use std::sync::Mutex;
}

impl ScriptedLlm {
    /// Build a scripted model from responses, returned in order.
    pub fn new(responses: Vec<String>) -> Self {
        ScriptedLlm {
            responses: parking_lot_free::Mutex::new(responses),
            name: "scripted".to_string(),
        }
    }
}

impl LlmClient for ScriptedLlm {
    fn complete(&self, _conversation: &Conversation) -> LlmResult<String> {
        let mut responses = self.responses.lock().expect("scripted responses lock");
        if responses.is_empty() {
            return Err(LlmError::ModelFailure {
                model: self.name.clone(),
                message: "the scripted model ran out of responses".into(),
            });
        }
        Ok(responses.remove(0))
    }

    /// Serve a whole batch under one lock acquisition, so concurrent batch
    /// dispatches each drain a contiguous run of scripted responses.
    ///
    /// Caveat: *which* contiguous run a batch drains depends on dispatch
    /// order, so under parallel multi-batch dispatch (e.g. behind
    /// `PerceptionLlm` with several batches and worker threads) responses
    /// are not deterministically assigned to requests. Scripted responses
    /// are positional, not keyed — use a content-keyed test double when a
    /// deterministic (input → answer) mapping matters.
    fn complete_batch(&self, conversations: &[Conversation]) -> Vec<LlmResult<String>> {
        let mut responses = self.responses.lock().expect("scripted responses lock");
        conversations
            .iter()
            .map(|_| {
                if responses.is_empty() {
                    Err(LlmError::ModelFailure {
                        model: self.name.clone(),
                        message: "the scripted model ran out of responses".into(),
                    })
                } else {
                    Ok(responses.remove(0))
                }
            })
            .collect()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chat::ChatMessage;

    #[test]
    fn scripted_llm_replays_in_order_then_fails() {
        let llm = ScriptedLlm::new(vec!["first".into(), "second".into()]);
        let convo = Conversation::new().with(ChatMessage::human("hi"));
        assert_eq!(llm.complete(&convo).unwrap(), "first");
        assert_eq!(llm.complete(&convo).unwrap(), "second");
        assert!(llm.complete(&convo).is_err());
    }

    #[test]
    fn counting_llm_tracks_calls_and_tokens() {
        let llm = CountingLlm::new(ScriptedLlm::new(vec!["a".into(), "b".into()]));
        let convo = Conversation::new().with(ChatMessage::human("one two three"));
        llm.complete(&convo).unwrap();
        llm.complete(&convo).unwrap();
        let usage = llm.usage();
        assert_eq!(usage.calls, 2);
        assert_eq!(usage.batches, 2);
        assert_eq!(usage.prompt_tokens, 6);
    }

    #[test]
    fn batch_completion_counts_one_dispatch_for_many_calls() {
        let llm = CountingLlm::new(ScriptedLlm::new(vec!["a".into(), "b".into(), "c".into()]));
        let convo = Conversation::new().with(ChatMessage::human("one two"));
        let batch = vec![convo.clone(), convo.clone(), convo.clone()];
        let results = llm.complete_batch(&batch);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_deref().unwrap(), "a");
        assert_eq!(results[2].as_deref().unwrap(), "c");
        let usage = llm.usage();
        assert_eq!(usage.calls, 3);
        assert_eq!(usage.batches, 1);
        assert_eq!(usage.prompt_tokens, 6);
    }

    #[test]
    fn scripted_batch_reports_exhaustion_per_conversation() {
        let llm = ScriptedLlm::new(vec!["only".into()]);
        let convo = Conversation::new();
        let results = llm.complete_batch(&[convo.clone(), convo.clone()]);
        assert_eq!(results[0].as_deref().unwrap(), "only");
        assert!(results[1].is_err());
    }

    #[test]
    fn default_complete_batch_loops_over_complete() {
        struct Echo;
        impl LlmClient for Echo {
            fn complete(&self, conversation: &Conversation) -> LlmResult<String> {
                Ok(conversation.human_text())
            }
            fn name(&self) -> &str {
                "echo"
            }
        }
        let convos = vec![
            Conversation::new().with(ChatMessage::human("x")),
            Conversation::new().with(ChatMessage::human("y")),
        ];
        let results = Echo.complete_batch(&convos);
        assert_eq!(results[0].as_deref().unwrap(), "x");
        assert_eq!(results[1].as_deref().unwrap(), "y");
    }

    #[test]
    fn arc_wrapping_preserves_client_behaviour() {
        let llm: Arc<dyn LlmClient> = Arc::new(ScriptedLlm::new(vec!["x".into()]));
        let convo = Conversation::new();
        assert_eq!(llm.complete(&convo).unwrap(), "x");
        assert_eq!(llm.name(), "scripted");
    }
}
